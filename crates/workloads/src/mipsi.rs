//! mipsi — MIPS-subset instruction interpreter.
//!
//! "mipsi is a simulation framework … its input program [is the annotated
//! static variable]" (Table 1); the paper's input is a bubble sort. The
//! interpreter's fetch-execute loop is specialized on the guest program:
//! multi-way loop unrolling over the static program counter eliminates the
//! fetch (a static load), the decode (static arithmetic and a folded
//! switch), and memoizes calls to the address-translation routine (a
//! static call). The guest's own control flow survives as dynamic branches
//! between unrolled bodies — the "directed graph of unrolled loop bodies"
//! of §2.2.4. An indirect jump (`jr`) exercises internal dynamic-to-static
//! promotion of the target pc.
//!
//! Substrates built for this benchmark: the guest ISA, a two-pass
//! assembler ([`asm`]), the bubble-sort guest program, and a reference
//! interpreter in Rust.

use crate::rng::SplitMix64;
use crate::{Kind, Meta, Workload};
use dyc::{Session, Value};

/// The guest ISA and assembler.
pub mod asm {
    /// Guest opcodes (field `op` of the encoding).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    #[allow(missing_docs)]
    pub enum Op {
        Halt = 0,
        Add = 1,
        Sub = 2,
        Addi = 3,
        Lw = 6,
        Sw = 7,
        Beq = 8,
        Bne = 9,
        Blt = 10,
        Bge = 11,
        J = 12,
        Jr = 13,
        Li = 14,
    }

    /// One assembly item: an instruction or a label definition.
    #[derive(Debug, Clone)]
    pub enum Item {
        /// `op a, b, c` with a numeric `c`.
        I(Op, i64, i64, i64),
        /// `op a, b, @label` — `c` resolves to the label's pc.
        IL(Op, i64, i64, &'static str),
        /// A label definition.
        L(&'static str),
    }

    /// Encode `op a b c` into one guest word.
    pub fn encode(op: Op, a: i64, b: i64, c: i64) -> i64 {
        assert!((0..256).contains(&a) && (0..256).contains(&b) && (0..256).contains(&c));
        (op as i64) * 16_777_216 + a * 65_536 + b * 256 + c
    }

    /// Two-pass assembly with label resolution.
    ///
    /// # Panics
    ///
    /// Panics on an undefined label (programmer error in a fixed guest
    /// program).
    pub fn assemble(items: &[Item]) -> Vec<i64> {
        use std::collections::HashMap;
        let mut labels: HashMap<&str, i64> = HashMap::new();
        let mut pc = 0i64;
        for it in items {
            match it {
                Item::L(name) => {
                    labels.insert(name, pc);
                }
                _ => pc += 1,
            }
        }
        let mut out = Vec::new();
        for it in items {
            match it {
                Item::L(_) => {}
                Item::I(op, a, b, c) => out.push(encode(*op, *a, *b, *c)),
                Item::IL(op, a, b, l) => {
                    let target = *labels
                        .get(l)
                        .unwrap_or_else(|| panic!("undefined label {l}"));
                    out.push(encode(*op, *a, *b, target));
                }
            }
        }
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn encoding_fields_round_trip() {
            let w = encode(Op::Addi, 3, 7, 250);
            assert_eq!(w / 16_777_216, Op::Addi as i64);
            assert_eq!((w / 65_536) % 256, 3);
            assert_eq!((w / 256) % 256, 7);
            assert_eq!(w % 256, 250);
        }

        #[test]
        fn labels_resolve_forward_and_backward() {
            let prog = assemble(&[
                Item::L("top"),
                Item::IL(Op::J, 0, 0, "end"),
                Item::IL(Op::J, 0, 0, "top"),
                Item::L("end"),
                Item::I(Op::Halt, 0, 0, 0),
            ]);
            assert_eq!(prog[0] % 256, 2); // "end" = pc 2
            assert_eq!(prog[1] % 256, 0); // "top" = pc 0
        }

        #[test]
        #[should_panic(expected = "undefined label")]
        fn undefined_label_panics() {
            let _ = assemble(&[Item::IL(Op::J, 0, 0, "nowhere")]);
        }
    }
}

/// The mipsi workload.
#[derive(Debug, Clone)]
pub struct Mipsi {
    /// Number of guest array elements the bubble sort sorts.
    pub n: i64,
    /// Guest step budget.
    pub max_steps: i64,
}

impl Default for Mipsi {
    fn default() -> Self {
        Mipsi {
            n: 14,
            max_steps: 100_000,
        }
    }
}

impl Mipsi {
    /// A tiny configuration for unit tests.
    pub fn tiny() -> Mipsi {
        Mipsi {
            n: 6,
            max_steps: 10_000,
        }
    }

    /// The bubble-sort guest program (the paper's mipsi input).
    pub fn guest_program() -> Vec<i64> {
        use asm::{Item::*, Op::*};
        // r2 = n (preloaded by the harness), r3 = i, r4 = j,
        // r5/r6 = elements, r7 = 1, r8 = n-1, r9 = n-1-i, r10 = j+1,
        // r11 = return address for the final jr.
        asm::assemble(&[
            IL(Li, 11, 0, "fin"),
            I(Li, 3, 0, 0),
            L("outer"),
            I(Li, 7, 0, 1),
            I(Sub, 8, 2, 7),
            IL(Bge, 3, 8, "done"),
            I(Li, 4, 0, 0),
            L("inner"),
            I(Sub, 9, 8, 3),
            IL(Bge, 4, 9, "endinner"),
            I(Lw, 5, 4, 0),
            I(Addi, 10, 4, 1),
            I(Lw, 6, 10, 0),
            IL(Bge, 6, 5, "noswap"),
            I(Sw, 6, 4, 0),
            I(Sw, 5, 10, 0),
            L("noswap"),
            I(Addi, 4, 4, 1),
            IL(J, 0, 0, "inner"),
            L("endinner"),
            I(Addi, 3, 3, 1),
            IL(J, 0, 0, "outer"),
            L("done"),
            I(Jr, 11, 0, 0),
            L("fin"),
            I(Halt, 0, 0, 0),
        ])
    }

    /// The guest data to sort (deterministic).
    pub fn guest_data(&self) -> Vec<i64> {
        let mut rng = SplitMix64::seed_from_u64(0x3147);
        (0..self.n).map(|_| rng.gen_range(0..1000)).collect()
    }

    /// Reference interpreter in plain Rust; returns (steps, final memory).
    pub fn reference(&self) -> (i64, Vec<i64>) {
        let prog = Self::guest_program();
        let mut mem = self.guest_data();
        let mut regs = [0i64; 32];
        regs[2] = self.n;
        let mut pc: i64 = 0;
        let mut steps = 0i64;
        while pc >= 0 && steps < self.max_steps {
            let inst = prog[(pc as usize) % prog.len()];
            let (op, a, b, c) = (
                inst / 16_777_216,
                (inst / 65_536) % 256,
                (inst / 256) % 256,
                inst % 256,
            );
            steps += 1;
            match op {
                0 => pc = -1,
                1 => {
                    regs[a as usize] = regs[b as usize] + regs[c as usize];
                    pc += 1;
                }
                2 => {
                    regs[a as usize] = regs[b as usize] - regs[c as usize];
                    pc += 1;
                }
                3 => {
                    regs[a as usize] = regs[b as usize] + c;
                    pc += 1;
                }
                6 => {
                    regs[a as usize] = mem[(regs[b as usize] + c) as usize];
                    pc += 1;
                }
                7 => {
                    mem[(regs[b as usize] + c) as usize] = regs[a as usize];
                    pc += 1;
                }
                8 => {
                    pc = if regs[a as usize] == regs[b as usize] {
                        c
                    } else {
                        pc + 1
                    }
                }
                9 => {
                    pc = if regs[a as usize] != regs[b as usize] {
                        c
                    } else {
                        pc + 1
                    }
                }
                10 => {
                    pc = if regs[a as usize] < regs[b as usize] {
                        c
                    } else {
                        pc + 1
                    }
                }
                11 => {
                    pc = if regs[a as usize] >= regs[b as usize] {
                        c
                    } else {
                        pc + 1
                    }
                }
                12 => pc = c,
                13 => pc = regs[a as usize],
                14 => {
                    regs[a as usize] = c;
                    pc += 1;
                }
                _ => pc = -1,
            }
        }
        (steps, mem)
    }
}

/// The annotated DyCL source: the interpreter specialized on its input
/// program.
pub const SOURCE: &str = r#"
    /* Address translation, memoized as a static call (§2.2.6). */
    static int xlat(int a, int np) {
        return a % np;
    }

    /* The mipsi fetch-execute loop, specialized on the guest program. */
    int run(int prog[np], int np, int mem[nm], int nm,
            int regs[nr], int nr, int maxsteps) {
        make_static(prog: cache_one_unchecked, np: cache_one_unchecked);
        int pc = 0;
        int steps = 0;
        while (pc >= 0) {
            if (steps >= maxsteps) { return 0 - 1; }
            int inst = prog@[xlat(pc, np)];
            int op = (inst >> 24) & 255;
            int a = (inst >> 16) & 255;
            int b = (inst >> 8) & 255;
            int c = inst & 255;
            steps = steps + 1;
            switch (op) {
                case 0: { pc = 0 - 1; break; }
                case 1: { regs[a] = regs[b] + regs[c]; pc = pc + 1; break; }
                case 2: { regs[a] = regs[b] - regs[c]; pc = pc + 1; break; }
                case 3: { regs[a] = regs[b] + c; pc = pc + 1; break; }
                case 6: { regs[a] = mem[regs[b] + c]; pc = pc + 1; break; }
                case 7: { mem[regs[b] + c] = regs[a]; pc = pc + 1; break; }
                case 8: { if (regs[a] == regs[b]) { pc = c; } else { pc = pc + 1; } break; }
                case 9: { if (regs[a] != regs[b]) { pc = c; } else { pc = pc + 1; } break; }
                case 10: { if (regs[a] < regs[b]) { pc = c; } else { pc = pc + 1; } break; }
                case 11: { if (regs[a] >= regs[b]) { pc = c; } else { pc = pc + 1; } break; }
                case 12: { pc = c; break; }
                case 13: { pc = regs[a]; promote(pc); break; }
                case 14: { regs[a] = c; pc = pc + 1; break; }
                default: { pc = 0 - 1; break; }
            }
        }
        return steps;
    }
"#;

impl Workload for Mipsi {
    fn meta(&self) -> Meta {
        Meta {
            name: "mipsi",
            kind: Kind::Application,
            description: "MIPS R3000 simulator",
            static_vars: "its input program",
            static_values: "bubble sort",
            region_func: "run",
            break_even_unit: "interpreted instructions",
            units_per_invocation: self.reference().0 as u64,
        }
    }

    fn source(&self) -> String {
        SOURCE.to_string()
    }

    fn setup_region(&self, sess: &mut Session) -> Vec<Value> {
        let prog = Self::guest_program();
        let data = self.guest_data();
        let p = sess.alloc(prog.len());
        sess.mem().write_ints(p, &prog);
        let m = sess.alloc(data.len());
        sess.mem().write_ints(m, &data);
        let regs = sess.alloc(32);
        sess.mem().write_int(regs + 2, self.n); // r2 = n
        vec![
            Value::I(p),
            Value::I(prog.len() as i64),
            Value::I(m),
            Value::I(data.len() as i64),
            Value::I(regs),
            Value::I(32),
            Value::I(self.max_steps),
        ]
    }

    fn reset(&self, sess: &mut Session, args: &[Value]) {
        // The guest sorts its memory and mutates registers: restore both.
        let m = args[2].as_i();
        sess.mem().write_ints(m, &self.guest_data());
        let regs = args[4].as_i();
        sess.mem().write_ints(regs, &[0; 32]);
        sess.mem().write_int(regs + 2, self.n);
    }

    fn setup_main(&self, sess: &mut Session) -> Option<Vec<Value>> {
        Some(self.setup_region(sess))
    }

    fn main_region_invocations(&self) -> u64 {
        1
    }

    fn check_region(&self, result: Option<Value>, sess: &mut Session) -> bool {
        let (steps, sorted) = self.reference();
        if result != Some(Value::I(steps)) {
            return false;
        }
        // Guest memory is the second allocation, after the program.
        let m = Self::guest_program().len() as i64;
        sess.mem().read_ints(m, sorted.len()) == sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyc::Compiler;

    #[test]
    fn reference_interpreter_sorts() {
        let w = Mipsi::tiny();
        let (steps, mem) = w.reference();
        assert!(steps > 0 && steps < w.max_steps);
        let mut sorted = w.guest_data();
        sorted.sort_unstable();
        assert_eq!(mem, sorted);
    }

    #[test]
    fn interpreter_agrees_with_reference_in_both_builds() {
        let w = Mipsi::tiny();
        let p = Compiler::new().compile(&w.source()).unwrap();
        for mut sess in [p.static_session(), p.dynamic_session()] {
            let args = w.setup_region(&mut sess);
            let out = sess.run("run", &args).unwrap();
            assert!(w.check_region(out, &mut sess));
        }
    }

    #[test]
    fn specialization_eliminates_fetch_and_decode() {
        let w = Mipsi::tiny();
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut d = p.dynamic_session();
        let args = w.setup_region(&mut d);
        d.run("run", &args).unwrap();
        let rt = d.rt_stats().unwrap();
        assert!(
            rt.multi_way_unroll,
            "guest control flow means multi-way unrolling"
        );
        assert!(rt.static_loads > 0, "instruction fetches are static loads");
        assert!(rt.static_calls > 0, "xlat calls are memoized");
        assert_eq!(rt.internal_promotions, 1, "the jr target promotes");
        assert!(rt.branches_folded > 0, "the decode switch folds");
        let gen = d.generated_functions();
        let code = d.disassemble_matching("run$spec");
        // No trace of decoding in the residual code: no divisions.
        assert!(!code.contains("div   r"), "decode folded away:\n{code}");
        assert!(gen.len() >= 2, "entry + promoted continuation");
    }

    #[test]
    fn reused_guest_program_hits_the_cache() {
        let w = Mipsi::tiny();
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut d = p.dynamic_session();
        let args = w.setup_region(&mut d);
        d.run("run", &args).unwrap();
        let spec_before = d.rt_stats().unwrap().specializations;
        w.reset(&mut d, &args);
        d.run("run", &args).unwrap();
        assert_eq!(d.rt_stats().unwrap().specializations, spec_before);
    }
}
