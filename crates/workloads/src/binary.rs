//! binary — binary search over a static array (kernel).
//!
//! Annotated static variables: "the input array and its contents" with 16
//! integers (Table 1). Complete *multi-way* loop unrolling turns the
//! search loop into a comparison tree: the probe comparisons are dynamic
//! (the key is a run-time value) but the bounds `lo`/`hi` are static, so
//! each branch side continues with a different static store — the unrolled
//! bodies form a dag, the signature multi-way case of §2.2.4.

use crate::{Kind, Meta, Workload};
use dyc::{Session, Value};

/// The binary-search workload.
#[derive(Debug, Clone)]
pub struct BinarySearch {
    /// Array contents (sorted).
    pub array: Vec<i64>,
    /// Key probed during region timing.
    pub probe_key: i64,
}

impl Default for BinarySearch {
    fn default() -> Self {
        // 16 integers, as in Table 1.
        BinarySearch {
            array: (0..16).map(|i| i * i + 3).collect(),
            probe_key: 52,
        }
    }
}

/// The annotated DyCL source.
pub const SOURCE: &str = r#"
    int bsearch(int a[n], int n, int key) {
        make_static(a: cache_one_unchecked, n: cache_one_unchecked);
        int lo = 0;
        int hi = n - 1;
        while (lo <= hi) {
            int mid = (lo + hi) / 2;
            int v = a@[mid];
            if (v == key) { return mid; }
            if (v < key) { lo = mid + 1; } else { hi = mid - 1; }
        }
        return -1;
    }
"#;

impl Workload for BinarySearch {
    fn meta(&self) -> Meta {
        Meta {
            name: "binary",
            kind: Kind::Kernel,
            description: "binary search over an array",
            static_vars: "the input array and its contents",
            static_values: "16 integers",
            region_func: "bsearch",
            break_even_unit: "searches",
            units_per_invocation: 1,
        }
    }

    fn source(&self) -> String {
        SOURCE.to_string()
    }

    fn setup_region(&self, sess: &mut Session) -> Vec<Value> {
        let a = sess.alloc(self.array.len());
        sess.mem().write_ints(a, &self.array);
        vec![
            Value::I(a),
            Value::I(self.array.len() as i64),
            Value::I(self.probe_key),
        ]
    }

    fn check_region(&self, result: Option<Value>, _sess: &mut Session) -> bool {
        let expect = self
            .array
            .binary_search(&self.probe_key)
            .map(|i| i as i64)
            .unwrap_or(-1);
        result == Some(Value::I(expect))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyc::Compiler;

    #[test]
    fn every_key_found_and_missing_keys_rejected() {
        let w = BinarySearch::default();
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut d = p.dynamic_session();
        let args = w.setup_region(&mut d);
        for (i, v) in w.array.iter().enumerate() {
            let out = d.run("bsearch", &[args[0], args[1], Value::I(*v)]).unwrap();
            assert_eq!(out, Some(Value::I(i as i64)), "key {v}");
        }
        for missing in [-5i64, 5, 1000] {
            let out = d
                .run("bsearch", &[args[0], args[1], Value::I(missing)])
                .unwrap();
            assert_eq!(out, Some(Value::I(-1)), "key {missing}");
        }
        let rt = d.rt_stats().unwrap();
        assert!(rt.multi_way_unroll, "binary search unrolls multi-way");
        assert_eq!(rt.specializations, 1, "one tree serves every key");
        // The comparison tree probes every element exactly once, so all 16
        // array loads happen at specialization time.
        assert_eq!(rt.static_loads as usize, w.array.len());
    }

    #[test]
    fn static_and_dynamic_agree() {
        let w = BinarySearch::default();
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut s = p.static_session();
        let mut d = p.dynamic_session();
        let sa = w.setup_region(&mut s);
        let da = w.setup_region(&mut d);
        for key in -2..60 {
            let sv = s.run("bsearch", &[sa[0], sa[1], Value::I(key)]).unwrap();
            let dv = d.run("bsearch", &[da[0], da[1], Value::I(key)]).unwrap();
            assert_eq!(sv, dv, "key {key}");
        }
    }
}
