//! query — database entry predicate test (kernel).
//!
//! Specialized on "a query" of 7 comparisons (Table 1). The loop over the
//! query's fields unrolls single-way; the comparison operators and
//! comparison values are static loads, and the operator dispatch switch
//! folds away, leaving a straight chain of compare-and-branch pairs — the
//! hand-written matcher a programmer would produce for that exact query.

use crate::rng::SplitMix64;
use crate::{Kind, Meta, Workload};
use dyc::{Session, Value};

/// Comparison operator codes used in the query encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum QOp {
    Eq = 0,
    Ne = 1,
    Lt = 2,
    Gt = 3,
    Le = 4,
    Ge = 5,
    Any = 6,
}

/// The query workload.
#[derive(Debug, Clone)]
pub struct Query {
    /// (operator, value) per field — 7 comparisons as in the paper.
    pub predicate: Vec<(QOp, i64)>,
    /// Number of records tested per region invocation.
    pub n_records: usize,
}

impl Default for Query {
    fn default() -> Self {
        Query {
            predicate: vec![
                (QOp::Ge, 10),
                (QOp::Lt, 90),
                (QOp::Ne, 42),
                (QOp::Eq, 7),
                (QOp::Le, 55),
                (QOp::Gt, 0),
                (QOp::Ge, 1),
            ],
            n_records: 64,
        }
    }
}

impl Query {
    /// Deterministic records; roughly a third match the default query.
    pub fn records(&self) -> Vec<Vec<i64>> {
        let mut rng = SplitMix64::seed_from_u64(0x9e4);
        (0..self.n_records)
            .map(|_| {
                if rng.gen_f64() < 0.3 {
                    // A matching record for the default predicate.
                    vec![15, 50, 1, 7, 30, 5, 2]
                } else {
                    (0..self.predicate.len())
                        .map(|_| rng.gen_range(0..100))
                        .collect()
                }
            })
            .collect()
    }

    /// Reference matcher in plain Rust.
    pub fn matches(&self, rec: &[i64]) -> bool {
        self.predicate
            .iter()
            .zip(rec)
            .all(|((op, val), f)| match op {
                QOp::Eq => f == val,
                QOp::Ne => f != val,
                QOp::Lt => f < val,
                QOp::Gt => f > val,
                QOp::Le => f <= val,
                QOp::Ge => f >= val,
                QOp::Any => true,
            })
    }
}

/// The annotated DyCL source.
pub const SOURCE: &str = r#"
    /* Test one record against the static query. */
    int match(int rec[nf], int qop[nf], int qval[nf], int nf) {
        make_static(qop: cache_one_unchecked, qval: cache_one_unchecked,
                    nf: cache_one_unchecked);
        int i = 0;
        while (i < nf) {
            int op = qop@[i];
            int val = qval@[i];
            int f = rec[i];
            int ok = 0;
            switch (op) {
                case 0: { ok = f == val; break; }
                case 1: { ok = f != val; break; }
                case 2: { ok = f < val; break; }
                case 3: { ok = f > val; break; }
                case 4: { ok = f <= val; break; }
                case 5: { ok = f >= val; break; }
                default: { ok = 1; }
            }
            if (ok == 0) { return 0; }
            i = i + 1;
        }
        return 1;
    }
"#;

impl Workload for Query {
    fn meta(&self) -> Meta {
        Meta {
            name: "query",
            kind: Kind::Kernel,
            description: "tests database entry for match",
            static_vars: "a query",
            static_values: "7 comparisons",
            region_func: "match",
            break_even_unit: "database entry comparisons",
            units_per_invocation: 1,
        }
    }

    fn source(&self) -> String {
        SOURCE.to_string()
    }

    fn setup_region(&self, sess: &mut Session) -> Vec<Value> {
        let nf = self.predicate.len();
        let rec = &self.records()[0];
        let rb = sess.alloc(nf);
        sess.mem().write_ints(rb, rec);
        let ops: Vec<i64> = self.predicate.iter().map(|(o, _)| *o as i64).collect();
        let vals: Vec<i64> = self.predicate.iter().map(|(_, v)| *v).collect();
        let ob = sess.alloc(nf);
        sess.mem().write_ints(ob, &ops);
        let vb = sess.alloc(nf);
        sess.mem().write_ints(vb, &vals);
        vec![
            Value::I(rb),
            Value::I(ob),
            Value::I(vb),
            Value::I(nf as i64),
        ]
    }

    fn check_region(&self, result: Option<Value>, _sess: &mut Session) -> bool {
        let expect = i64::from(self.matches(&self.records()[0]));
        result == Some(Value::I(expect))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyc::Compiler;

    #[test]
    fn matcher_agrees_with_reference_over_all_records() {
        let w = Query::default();
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut d = p.dynamic_session();
        let mut s = p.static_session();
        let da = w.setup_region(&mut d);
        let sa = w.setup_region(&mut s);
        let rb = da[0].as_i();
        for rec in w.records() {
            d.mem().write_ints(rb, &rec);
            s.mem().write_ints(sa[0].as_i(), &rec);
            let dv = d.run("match", &da).unwrap();
            let sv = s.run("match", &sa).unwrap();
            assert_eq!(dv, sv);
            assert_eq!(dv, Some(Value::I(i64::from(w.matches(&rec)))), "{rec:?}");
        }
    }

    #[test]
    fn query_folds_into_a_comparison_chain() {
        let w = Query::default();
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut d = p.dynamic_session();
        let args = w.setup_region(&mut d);
        d.run("match", &args).unwrap();
        let rt = d.rt_stats().unwrap();
        assert_eq!(rt.static_loads, 14, "7 ops + 7 values");
        assert!(rt.loops_unrolled >= 1);
        assert!(!rt.multi_way_unroll, "query unrolls single-way");
        assert!(
            rt.branches_folded >= 7,
            "the operator switch folds per field"
        );
        let code = d.disassemble_matching("match$spec");
        // Straight chain: per field, the predicate compare plus the
        // early-exit test — no loop arithmetic, no switch dispatch.
        assert_eq!(code.matches("icmp").count(), 14, "{code}");
    }
}
