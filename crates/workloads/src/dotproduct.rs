//! dotproduct — dot product with one static vector (kernel).
//!
//! "the contents of one of the vectors: a 100-integer array with 90%
//! zeroes" (Table 1). Complete unrolling plus static loads expose every
//! element of the static vector; zero propagation and dead-assignment
//! elimination erase 90% of the work, and the remaining power-of-two
//! coefficients strength-reduce to shifts (§4.4.1 names static loads and
//! dynamic strength reduction as only applying once the loop is fully
//! unrolled). §4.2 notes denser vectors produce ordinary speedups and an
//! all-nonzero vector can even lose — reproduced by
//! [`DotProduct::with_density`].

use crate::rng::SplitMix64;
use crate::{Kind, Meta, Workload};
use dyc::{Session, Value};

/// The dotproduct workload.
#[derive(Debug, Clone)]
pub struct DotProduct {
    /// Vector length (paper: 100).
    pub n: i64,
    /// Fraction of zero elements in the static vector (paper: 0.9).
    pub zero_fraction: f64,
}

impl Default for DotProduct {
    fn default() -> Self {
        DotProduct {
            n: 100,
            zero_fraction: 0.9,
        }
    }
}

impl DotProduct {
    /// A variant with a different zero density (for the §4.2 density
    /// sweep).
    pub fn with_density(zero_fraction: f64) -> DotProduct {
        DotProduct {
            n: 100,
            zero_fraction,
        }
    }

    /// The static vector: `zero_fraction` zeros; nonzero entries are a mix
    /// of powers of two (strength-reduction candidates) and other values.
    pub fn static_vector(&self) -> Vec<i64> {
        let zeros = (self.n as f64 * self.zero_fraction).round() as usize;
        let nonzeros = self.n as usize - zeros;
        let mut v: Vec<i64> = Vec::with_capacity(self.n as usize);
        v.extend(std::iter::repeat_n(0, zeros));
        for i in 0..nonzeros {
            v.push(match i % 4 {
                0 => 4,
                1 => 8,
                2 => 1,
                _ => 3,
            });
        }
        let mut rng = SplitMix64::seed_from_u64(0xd07);
        rng.shuffle(&mut v);
        v
    }

    /// The dynamic vector.
    pub fn dynamic_vector(&self) -> Vec<i64> {
        let mut rng = SplitMix64::seed_from_u64(0xd08);
        (0..self.n).map(|_| rng.gen_range(-50..50)).collect()
    }
}

/// The annotated DyCL source.
pub const SOURCE: &str = r#"
    int dotp(int a[n], int b[n], int n) {
        make_static(a: cache_one_unchecked, n: cache_one_unchecked);
        int sum = 0;
        int i = 0;
        while (i < n) {
            sum = sum + a@[i] * b[i];
            i = i + 1;
        }
        return sum;
    }
"#;

impl Workload for DotProduct {
    fn meta(&self) -> Meta {
        Meta {
            name: "dotproduct",
            kind: Kind::Kernel,
            description: "dot-product of two vectors",
            static_vars: "the contents of one of the vectors",
            static_values: "a 100-integer array with 90% zeroes",
            region_func: "dotp",
            break_even_unit: "dot products",
            units_per_invocation: 1,
        }
    }

    fn source(&self) -> String {
        SOURCE.to_string()
    }

    fn setup_region(&self, sess: &mut Session) -> Vec<Value> {
        let a = self.static_vector();
        let b = self.dynamic_vector();
        let ab = sess.alloc(a.len());
        sess.mem().write_ints(ab, &a);
        let bb = sess.alloc(b.len());
        sess.mem().write_ints(bb, &b);
        vec![Value::I(ab), Value::I(bb), Value::I(self.n)]
    }

    fn check_region(&self, result: Option<Value>, _sess: &mut Session) -> bool {
        let expect: i64 = self
            .static_vector()
            .iter()
            .zip(&self.dynamic_vector())
            .map(|(x, y)| x * y)
            .sum();
        result == Some(Value::I(expect))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyc::Compiler;

    #[test]
    fn sparse_vector_folds_ninety_percent_away() {
        let w = DotProduct::default();
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut d = p.dynamic_session();
        let args = w.setup_region(&mut d);
        let out = d.run("dotp", &args).unwrap();
        assert!(w.check_region(out, &mut d));
        let rt = d.rt_stats().unwrap();
        assert_eq!(rt.static_loads, 100);
        assert!(rt.zero_copy_folds >= 90, "zero elements fold");
        assert!(rt.dae_removed >= 90, "their b-loads die");
        assert!(
            rt.strength_reductions >= 4,
            "power-of-two coefficients shift"
        );
        let code = d.disassemble_matching("dotp$spec");
        let loads = code.matches("ldi").count();
        assert_eq!(loads, 10, "only nonzero elements load b:\n{code}");
    }

    #[test]
    fn static_and_dynamic_agree_across_densities() {
        for frac in [0.0, 0.5, 0.9, 1.0] {
            let w = DotProduct::with_density(frac);
            let p = Compiler::new().compile(&w.source()).unwrap();
            let mut s = p.static_session();
            let mut d = p.dynamic_session();
            let sa = w.setup_region(&mut s);
            let da = w.setup_region(&mut d);
            let sv = s.run("dotp", &sa).unwrap();
            let dv = d.run("dotp", &da).unwrap();
            assert_eq!(sv, dv, "density {frac}");
        }
    }
}
