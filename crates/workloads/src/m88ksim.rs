//! m88ksim — Motorola 88000 simulator (SPEC95).
//!
//! The dynamically compiled region is `ckbrkpts`, the breakpoint-check
//! routine run once per simulated instruction, specialized on the
//! breakpoint table. With the SPEC input there are no breakpoints, so the
//! specialized region collapses to an immediate "no" — the paper reports
//! just 6 instructions generated. The loop over the table unrolls
//! single-way with static loads of the table entries; the
//! `cache-one-unchecked` policy matters because the region is entered "for
//! each simulated instruction" (§4.4.3). The 5-breakpoint variant of §4.2
//! is [`M88ksim::with_breakpoints`].
//!
//! Substrate built for this benchmark: a miniature 88k-style guest ISA and
//! a guest program (an arithmetic checksum loop) that the whole-program
//! driver simulates.

use crate::{Kind, Meta, Workload};
use dyc::{Session, Value};

/// Capacity of the simulator's breakpoint table (the structure `ckbrkpts`
/// scans on every simulated instruction, whether or not any breakpoints
/// are set).
pub const BP_CAPACITY: usize = 8;

/// The m88ksim workload.
#[derive(Debug, Clone)]
pub struct M88ksim {
    /// Breakpoint addresses; the SPEC input has none.
    pub breakpoints: Vec<i64>,
    /// Program counter used for region timing.
    pub probe_pc: i64,
    /// Simulated steps in the whole-program run.
    pub max_steps: i64,
}

impl Default for M88ksim {
    fn default() -> Self {
        M88ksim {
            breakpoints: vec![],
            probe_pc: 17,
            max_steps: 20_000,
        }
    }
}

impl M88ksim {
    /// The §4.2 variant "our experiments with 5 breakpoints yielded 98
    /// generated instructions at a cost of only 66 cycles per instruction".
    pub fn with_breakpoints(n: usize) -> M88ksim {
        M88ksim {
            breakpoints: (0..n as i64).map(|i| 1000 + 7 * i).collect(),
            ..M88ksim::default()
        }
    }

    /// A small configuration for unit tests.
    pub fn tiny() -> M88ksim {
        M88ksim {
            max_steps: 500,
            ..M88ksim::default()
        }
    }

    /// The breakpoint table contents: parallel valid/address arrays of
    /// fixed capacity.
    pub fn tables(&self) -> (Vec<i64>, Vec<i64>) {
        let mut valid = vec![0i64; BP_CAPACITY];
        let mut addrs = vec![0i64; BP_CAPACITY];
        for (i, bp) in self.breakpoints.iter().enumerate().take(BP_CAPACITY) {
            valid[i] = 1;
            addrs[i] = *bp;
        }
        (valid, addrs)
    }

    /// The guest program for the whole-program driver, encoded 4 words per
    /// instruction: `[op, a, b, c]`.
    ///
    /// Opcodes: 0 li, 1 add, 2 sub, 3 mul, 4 addi, 5 blt, 6 j, 7 halt.
    pub fn guest_program() -> Vec<i64> {
        // r1 = checksum, r2 = i, r3 = limit, r4 = tmp
        #[rustfmt::skip]
        let prog: Vec<[i64; 4]> = vec![
            [0, 1, 0, 0],    // 0: li   r1, 0
            [0, 2, 0, 0],    // 1: li   r2, 0
            [0, 3, 0, 200],  // 2: li   r3, 200
            [3, 4, 2, 2],    // 3: mul  r4, r2, r2
            [1, 1, 1, 4],    // 4: add  r1, r1, r4
            [4, 1, 1, 3],    // 5: addi r1, r1, 3
            [4, 2, 2, 1],    // 6: addi r2, r2, 1
            [5, 2, 3, 3],    // 7: blt  r2, r3, 3
            [0, 2, 0, 0],    // 8: li   r2, 0  (restart to fill steps)
            [6, 0, 0, 3],    // 9: j    3
        ];
        prog.into_iter().flatten().collect()
    }
}

/// The annotated DyCL source.
pub const SOURCE: &str = r#"
    /* Breakpoint check: scan the fixed-capacity table the simulator keeps,
       specialized on its (usually empty) contents. */
    int ckbrkpts(int valid[cap], int addrs[cap], int cap, int pc) {
        make_static(valid: cache_one_unchecked, addrs: cache_one_unchecked,
                    cap: cache_one_unchecked);
        int i = 0;
        while (i < cap) {
            if (valid@[i]) {
                if (addrs@[i] == pc) { return 1; }
            }
            i = i + 1;
        }
        return 0;
    }

    /* One simulated 88k pipeline step: fetch, decode, execute, plus the
       per-instruction bookkeeping the real simulator does (statistics,
       condition flags, a small iTLB lookup). */
    int m88k_main(int prog4[npw], int np, int npw,
                  int regs[nr], int nr,
                  int valid[cap], int addrs[cap], int cap,
                  int stats[nstat], int nstat, int tlb[ntlb], int ntlb,
                  int maxsteps) {
        int pc = 0;
        int steps = 0;
        int hits = 0;
        int flags = 0;
        while (steps < maxsteps) {
            if (pc < 0) { return regs[1] + hits + flags % 2; }
            if (pc >= np) { return regs[1] + hits + flags % 2; }
            hits = hits + ckbrkpts(valid, addrs, cap, pc);
            /* iTLB lookup (4-entry fully associative scan). */
            int page = pc >> 4;
            int mapped = 0;
            for (int e = 0; e < ntlb; ++e) {
                if (tlb[e] == page) { mapped = 1; }
            }
            if (mapped == 0) { tlb[page & (ntlb - 1)] = page; }
            int base = pc * 4;
            int op = prog4[base];
            int a = prog4[base + 1];
            int b = prog4[base + 2];
            int c = prog4[base + 3];
            /* Per-class statistics and cycle accounting. */
            stats[op] = stats[op] + 1;
            stats[nstat - 1] = stats[nstat - 1] + 1 + (op == 3) * 2;
            switch (op) {
                case 0: { regs[a] = c; pc = pc + 1; break; }
                case 1: { regs[a] = regs[b] + regs[c]; pc = pc + 1; break; }
                case 2: { regs[a] = regs[b] - regs[c]; pc = pc + 1; break; }
                case 3: { regs[a] = regs[b] * regs[c]; pc = pc + 1; break; }
                case 4: { regs[a] = regs[b] + c; pc = pc + 1; break; }
                case 5: { if (regs[a] < regs[b]) { pc = c; } else { pc = pc + 1; } break; }
                case 6: { pc = c; break; }
                default: { pc = -1; break; }
            }
            /* Condition flags on the written register. */
            int wr = regs[a];
            flags = (wr == 0) + (wr < 0) * 2;
            steps = steps + 1;
        }
        return regs[1] + hits + flags % 2;
    }
"#;

impl Workload for M88ksim {
    fn meta(&self) -> Meta {
        Meta {
            name: "m88ksim",
            kind: Kind::Application,
            description: "Motorola 88000 simulator",
            static_vars: "an array of breakpoints",
            static_values: if self.breakpoints.is_empty() {
                "no breakpoints"
            } else {
                "5 breakpoints"
            },
            region_func: "ckbrkpts",
            break_even_unit: "breakpoint checks",
            units_per_invocation: 1,
        }
    }

    fn source(&self) -> String {
        SOURCE.to_string()
    }

    fn setup_region(&self, sess: &mut Session) -> Vec<Value> {
        let (valid, addrs) = self.tables();
        let vb = sess.alloc(BP_CAPACITY);
        sess.mem().write_ints(vb, &valid);
        let ab = sess.alloc(BP_CAPACITY);
        sess.mem().write_ints(ab, &addrs);
        vec![
            Value::I(vb),
            Value::I(ab),
            Value::I(BP_CAPACITY as i64),
            Value::I(self.probe_pc),
        ]
    }

    fn setup_main(&self, sess: &mut Session) -> Option<Vec<Value>> {
        let prog = Self::guest_program();
        let np = (prog.len() / 4) as i64;
        let p = sess.alloc(prog.len());
        sess.mem().write_ints(p, &prog);
        let regs = sess.alloc(8);
        let (valid, addrs) = self.tables();
        let vb = sess.alloc(BP_CAPACITY);
        sess.mem().write_ints(vb, &valid);
        let ab = sess.alloc(BP_CAPACITY);
        sess.mem().write_ints(ab, &addrs);
        let stats = sess.alloc(16);
        let tlb = sess.alloc(4);
        Some(vec![
            Value::I(p),
            Value::I(np),
            Value::I(prog.len() as i64),
            Value::I(regs),
            Value::I(8),
            Value::I(vb),
            Value::I(ab),
            Value::I(BP_CAPACITY as i64),
            Value::I(stats),
            Value::I(16),
            Value::I(tlb),
            Value::I(4),
            Value::I(self.max_steps),
        ])
    }

    fn main_region_invocations(&self) -> u64 {
        self.max_steps as u64
    }

    fn check_region(&self, result: Option<Value>, _sess: &mut Session) -> bool {
        let expect = i64::from(self.breakpoints.contains(&self.probe_pc));
        result == Some(Value::I(expect))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyc::Compiler;

    #[test]
    fn empty_table_generates_almost_no_code() {
        let w = M88ksim::default();
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut d = p.dynamic_session();
        let args = w.setup_region(&mut d);
        let out = d.run("ckbrkpts", &args).unwrap();
        assert_eq!(out, Some(Value::I(0)));
        let rt = d.rt_stats().unwrap();
        // The paper reports 6 generated instructions for the empty table.
        assert!(rt.instrs_generated <= 6, "got {}", rt.instrs_generated);
    }

    #[test]
    fn five_breakpoints_unroll_with_static_loads() {
        let w = M88ksim::with_breakpoints(5);
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut d = p.dynamic_session();
        let args = w.setup_region(&mut d);
        // probe_pc == 17 is not a breakpoint.
        assert_eq!(d.run("ckbrkpts", &args).unwrap(), Some(Value::I(0)));
        // A pc that is one.
        let hit = d
            .run("ckbrkpts", &[args[0], args[1], args[2], Value::I(1007)])
            .unwrap();
        assert_eq!(hit, Some(Value::I(1)));
        let rt = d.rt_stats().unwrap();
        // 8 valid-flag loads plus 5 address loads for the set entries.
        assert_eq!(rt.static_loads, 13, "table entries load at compile time");
        assert!(rt.loops_unrolled >= 1);
        assert!(!rt.multi_way_unroll, "m88ksim unrolls single-way");
        assert_eq!(
            rt.specializations, 1,
            "unchecked cache reuses the one version"
        );
    }

    #[test]
    fn whole_program_agrees_between_builds() {
        let w = M88ksim::tiny();
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut s = p.static_session();
        let mut d = p.dynamic_session();
        let sa = w.setup_main(&mut s).unwrap();
        let da = w.setup_main(&mut d).unwrap();
        let sv = s.run("m88k_main", &sa).unwrap();
        let dv = d.run("m88k_main", &da).unwrap();
        assert_eq!(sv, dv);
        assert!(sv.unwrap().as_i() > 0);
    }
}
