//! dinero — trace-driven cache simulator.
//!
//! "dinero (version III) is a cache simulator that can simulate caches of
//! widely varying configurations" (§3.1). Its main loop is specialized on
//! the cache configuration parameters; the paper's input is "8kB I/D,
//! direct-mapped, 32B blocks". Dynamic compilation folds the configuration
//! into the loop: the block/set/tag extraction becomes immediate shifts and
//! masks (dynamic strength reduction of the `%`/`/` by the power-of-two
//! set count), the associativity search loop unrolls single-way, and the
//! configuration loads are static loads.
//!
//! Substrate built for this benchmark: a synthetic address-trace generator
//! with instruction-fetch locality and data working sets.

use crate::rng::SplitMix64;
use crate::{Kind, Meta, Workload};
use dyc::{Session, Value};

/// Reference kinds in the trace.
const IFETCH: i64 = 0;
const DREAD: i64 = 1;
const DWRITE: i64 = 2;

/// The dinero workload.
#[derive(Debug, Clone)]
pub struct Dinero {
    /// log2(block size in bytes); paper: 32B → 5.
    pub block_bits: i64,
    /// Number of cache lines per cache (size / block); 8kB/32B = 256.
    pub nlines: i64,
    /// Associativity; paper: direct-mapped → 1.
    pub assoc: i64,
    /// Write-allocate policy flag.
    pub write_allocate: i64,
    /// Trace length (references per region invocation).
    pub trace_len: usize,
}

impl Default for Dinero {
    fn default() -> Self {
        Dinero {
            block_bits: 5,
            nlines: 256,
            assoc: 1,
            write_allocate: 1,
            trace_len: 4096,
        }
    }
}

impl Dinero {
    /// A tiny configuration for unit tests.
    pub fn tiny() -> Dinero {
        Dinero {
            trace_len: 256,
            ..Dinero::default()
        }
    }

    /// Generate the synthetic trace: (address, kind) pairs with
    /// instruction locality (sequential runs + jumps) and a data working
    /// set with reuse.
    pub fn trace(&self) -> (Vec<i64>, Vec<i64>) {
        let mut rng = SplitMix64::seed_from_u64(0xd1e0);
        let mut addrs = Vec::with_capacity(self.trace_len);
        let mut kinds = Vec::with_capacity(self.trace_len);
        let mut pc: i64 = 0x1000;
        for _ in 0..self.trace_len {
            let r: f64 = rng.gen_f64();
            if r < 0.6 {
                // Instruction fetch: mostly sequential, occasional jump.
                if rng.gen_f64() < 0.1 {
                    pc = 0x1000 + rng.gen_range(0..64i64) * 256;
                } else {
                    pc += 4;
                }
                addrs.push(pc);
                kinds.push(IFETCH);
            } else {
                // Data access within a working set, 70/30 read/write.
                let a = 0x8_0000 + rng.gen_range(0..2048i64) * 8;
                addrs.push(a);
                kinds.push(if rng.gen_f64() < 0.7 { DREAD } else { DWRITE });
            }
        }
        (addrs, kinds)
    }

    /// Reference simulation in plain Rust.
    pub fn reference_misses(&self, addrs: &[i64], kinds: &[i64]) -> i64 {
        let nsets = self.nlines / self.assoc;
        let mut itags = vec![-1i64; self.nlines as usize];
        let mut dtags = vec![-1i64; self.nlines as usize];
        let mut misses = 0;
        for (a, k) in addrs.iter().zip(kinds) {
            let block = a >> self.block_bits;
            let set = block % nsets;
            let tag = block / nsets;
            let tags = if *k == IFETCH { &mut itags } else { &mut dtags };
            let mut hit = false;
            for way in 0..self.assoc {
                if tags[(set * self.assoc + way) as usize] == tag {
                    hit = true;
                }
            }
            if !hit {
                misses += 1;
                if !(*k == DWRITE && self.write_allocate == 0) {
                    tags[(set * self.assoc) as usize] = tag;
                }
            }
        }
        misses
    }
}

/// The annotated DyCL source.
pub const SOURCE: &str = r#"
    /* dinero main loop, specialized on the cache configuration. */
    int mainloop(int addrs[n], int kinds[n], int n,
                 int cfg[4],
                 int itags[nlines], int dtags[nlines], int nlines) {
        make_static(cfg: cache_one_unchecked, nlines: cache_one_unchecked);
        int block_bits = cfg@[0];
        int assoc = cfg@[1];
        int walloc = cfg@[2];
        int nsets = nlines / assoc;
        int misses = 0;
        int i = 0;
        while (i < n) {
            int addr = addrs[i];
            int kind = kinds[i];
            int block = addr >> block_bits;
            int set = block % nsets;
            int tag = block / nsets;
            int hit = 0;
            int way = 0;
            while (way < assoc) {
                int t = 0;
                if (kind == 0) { t = itags[set * assoc + way]; }
                else { t = dtags[set * assoc + way]; }
                hit = hit + (t == tag);
                way = way + 1;
            }
            if (hit == 0) {
                misses = misses + 1;
                if (kind == 2 && walloc == 0) {
                    misses = misses + 0;
                } else {
                    if (kind == 0) { itags[set * assoc] = tag; }
                    else { dtags[set * assoc] = tag; }
                }
            }
            i = i + 1;
        }
        return misses;
    }

    /* Whole program: pre-scan the trace (address histogram checksum),
       simulate, then summarize. */
    int dinero_main(int addrs[n], int kinds[n], int n,
                    int cfg[4],
                    int itags[nlines], int dtags[nlines], int nlines,
                    int hist[nbuckets], int nbuckets) {
        int checksum = 0;
        for (int i = 0; i < n; ++i) {
            int b = (addrs[i] / 64) % nbuckets;
            hist[b] = hist[b] + 1;
            checksum = checksum + (addrs[i] ^ kinds[i]);
        }
        int misses = mainloop(addrs, kinds, n, cfg, itags, dtags, nlines);
        int peak = 0;
        for (int b = 0; b < nbuckets; ++b) {
            if (hist[b] > peak) { peak = hist[b]; }
        }
        return misses * 1000 + (checksum + peak) % 1000;
    }
"#;

impl Workload for Dinero {
    fn meta(&self) -> Meta {
        Meta {
            name: "dinero",
            kind: Kind::Application,
            description: "cache simulator",
            static_vars: "cache configuration parameters",
            static_values: "8kB I/D, direct-mapped, 32B blocks",
            region_func: "mainloop",
            break_even_unit: "memory references",
            units_per_invocation: self.trace_len as u64,
        }
    }

    fn source(&self) -> String {
        SOURCE.to_string()
    }

    fn setup_region(&self, sess: &mut Session) -> Vec<Value> {
        let (addrs, kinds) = self.trace();
        let a = sess.alloc(addrs.len());
        sess.mem().write_ints(a, &addrs);
        let k = sess.alloc(kinds.len());
        sess.mem().write_ints(k, &kinds);
        let cfg = sess.alloc(4);
        sess.mem()
            .write_ints(cfg, &[self.block_bits, self.assoc, self.write_allocate, 0]);
        let itags = sess.alloc(self.nlines as usize);
        let dtags = sess.alloc(self.nlines as usize);
        sess.mem()
            .write_ints(itags, &vec![-1; self.nlines as usize]);
        sess.mem()
            .write_ints(dtags, &vec![-1; self.nlines as usize]);
        vec![
            Value::I(a),
            Value::I(k),
            Value::I(addrs.len() as i64),
            Value::I(cfg),
            Value::I(itags),
            Value::I(dtags),
            Value::I(self.nlines),
        ]
    }

    fn reset(&self, sess: &mut Session, args: &[Value]) {
        // Tag arrays mutate during simulation; restore them.
        let itags = args[4].as_i();
        let dtags = args[5].as_i();
        sess.mem()
            .write_ints(itags, &vec![-1; self.nlines as usize]);
        sess.mem()
            .write_ints(dtags, &vec![-1; self.nlines as usize]);
    }

    fn setup_main(&self, sess: &mut Session) -> Option<Vec<Value>> {
        let mut args = self.setup_region(sess);
        let nbuckets = 64;
        let hist = sess.alloc(nbuckets as usize);
        args.push(Value::I(hist));
        args.push(Value::I(nbuckets));
        Some(args)
    }

    fn main_region_invocations(&self) -> u64 {
        1
    }

    fn check_region(&self, result: Option<Value>, _sess: &mut Session) -> bool {
        let (addrs, kinds) = self.trace();
        result == Some(Value::I(self.reference_misses(&addrs, &kinds)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyc::Compiler;

    #[test]
    fn trace_is_deterministic_and_mixed() {
        let w = Dinero::tiny();
        let (a1, k1) = w.trace();
        let (a2, k2) = w.trace();
        assert_eq!(a1, a2);
        assert_eq!(k1, k2);
        assert!(k1.contains(&IFETCH) && k1.contains(&DREAD));
    }

    #[test]
    fn simulator_matches_reference_in_both_builds() {
        let w = Dinero::tiny();
        let p = Compiler::new().compile(&w.source()).unwrap();
        for mut sess in [p.static_session(), p.dynamic_session()] {
            let args = w.setup_region(&mut sess);
            let out = sess.run("mainloop", &args).unwrap();
            assert!(w.check_region(out, &mut sess));
        }
    }

    #[test]
    fn configuration_folds_into_the_code() {
        let w = Dinero::tiny();
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut d = p.dynamic_session();
        let args = w.setup_region(&mut d);
        d.run("mainloop", &args).unwrap();
        let rt = d.rt_stats().unwrap();
        assert!(rt.static_loads >= 3, "cfg loads execute at compile time");
        assert!(rt.strength_reductions >= 1, "% and / by nsets reduce");
        assert!(rt.loops_unrolled >= 1, "way loop unrolls");
        assert!(!rt.multi_way_unroll, "dinero unrolls single-way");
        let gen = d.generated_functions();
        let code = d.disassemble(&gen[0]).unwrap();
        assert!(!code.contains("div   r"), "tag extraction reduced:\n{code}");
        assert!(!code.contains("rem   r"), "set extraction reduced:\n{code}");
        // Unchecked dispatch on later invocations.
        let before = d.stats().dispatch_cycles;
        d.run("mainloop", &args).unwrap();
        assert_eq!(d.stats().dispatch_cycles - before, 10);
    }
}
