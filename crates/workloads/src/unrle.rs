//! unrle — run-length decompressor (extension workload).
//!
//! §3.1 of the paper: "a decompression program and a version of grep could
//! become profitable to compile dynamically if DyC supported fast cache
//! lookups over a small range of values (e.g., integers between 0 and
//! 255). For such cases, the lookup could be implemented as a simple array
//! indexing, in place of DyC's current general-purpose hash-table lookup."
//!
//! This workload exercises exactly that scenario with the `cache_indexed`
//! policy extension: the per-byte decode step is specialized on the
//! control byte (256 possible values), and each dispatch is an array
//! index + indirect jump instead of a hash lookup. Specializing on the
//! control byte also completely unrolls the run-emission loop for that
//! byte's run length. Not part of the paper's Table 1 suite — it is the
//! paper's future-work case, reproduced.

use crate::rng::SplitMix64;
use crate::{Kind, Meta, Workload};
use dyc::{Session, Value};

/// The unrle workload.
#[derive(Debug, Clone)]
pub struct Unrle {
    /// Number of control tokens in the encoded stream.
    pub tokens: usize,
    /// Distinct run lengths in the stream (distinct specializations).
    pub distinct_runs: usize,
}

impl Default for Unrle {
    fn default() -> Self {
        Unrle {
            tokens: 512,
            distinct_runs: 24,
        }
    }
}

impl Unrle {
    /// The encoded stream: literals (< 128) and run headers (128 + length
    /// followed by the value to repeat).
    pub fn encoded(&self) -> Vec<i64> {
        let mut rng = SplitMix64::seed_from_u64(0x41e);
        let mut out = Vec::new();
        for _ in 0..self.tokens {
            if rng.gen_f64() < 0.5 {
                out.push(rng.gen_range(0..128)); // literal byte
            } else {
                let run = 1 + rng.gen_range(0..self.distinct_runs as i64);
                out.push(128 + run); // run header
                out.push(rng.gen_range(0..128)); // value to repeat
            }
        }
        out
    }

    /// Reference decoder in plain Rust.
    pub fn reference(&self) -> Vec<i64> {
        let enc = self.encoded();
        let mut out = Vec::new();
        let mut i = 0;
        while i < enc.len() {
            let b = enc[i];
            if b < 128 {
                out.push(b);
                i += 1;
            } else {
                let n = b - 128;
                let v = enc[i + 1];
                out.extend(std::iter::repeat_n(v, n as usize));
                i += 2;
            }
        }
        out
    }

    /// Worst-case decoded size.
    pub fn out_capacity(&self) -> usize {
        self.tokens * (self.distinct_runs + 1)
    }
}

/// The annotated DyCL source. The per-token step is specialized on the
/// control byte with the array-indexed policy.
pub const SOURCE: &str = r#"
    /* Emit the output of one control byte; specialized per byte value. */
    int emit_token(int b, int val, int out[cap], int cap, int pos) {
        make_static(b: cache_indexed);
        if (b < 128) {
            out[pos] = b;
            return pos + 1;
        }
        int n = b - 128;
        int i = 0;
        while (i < n) {
            out[pos + i] = val;
            i = i + 1;
        }
        return pos + n;
    }

    /* Decode a whole stream. */
    int decode(int enc[nin], int nin, int out[cap], int cap) {
        int pos = 0;
        int i = 0;
        while (i < nin) {
            int b = enc[i];
            if (b < 128) {
                pos = emit_token(b, 0, out, cap, pos);
                i = i + 1;
            } else {
                pos = emit_token(b, enc[i + 1], out, cap, pos);
                i = i + 2;
            }
        }
        return pos;
    }
"#;

impl Workload for Unrle {
    fn meta(&self) -> Meta {
        Meta {
            name: "unrle",
            kind: Kind::Kernel,
            description: "run-length decompressor (§3.1 indexed-dispatch extension)",
            static_vars: "the control byte",
            static_values: "bytes 0..255",
            region_func: "decode",
            break_even_unit: "decoded tokens",
            units_per_invocation: self.tokens as u64,
        }
    }

    fn source(&self) -> String {
        SOURCE.to_string()
    }

    fn setup_region(&self, sess: &mut Session) -> Vec<Value> {
        let enc = self.encoded();
        let e = sess.alloc(enc.len());
        sess.mem().write_ints(e, &enc);
        let cap = self.out_capacity();
        let o = sess.alloc(cap);
        vec![
            Value::I(e),
            Value::I(enc.len() as i64),
            Value::I(o),
            Value::I(cap as i64),
        ]
    }

    fn check_region(&self, result: Option<Value>, sess: &mut Session) -> bool {
        let expect = self.reference();
        if result != Some(Value::I(expect.len() as i64)) {
            return false;
        }
        let o = self.encoded().len() as i64;
        sess.mem().read_ints(o, expect.len()) == expect
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyc::{Compiler, OptConfig};

    #[test]
    fn decoder_is_correct_in_both_builds() {
        let w = Unrle {
            tokens: 64,
            distinct_runs: 8,
        };
        let p = Compiler::new().compile(&w.source()).unwrap();
        for mut sess in [p.static_session(), p.dynamic_session()] {
            let args = w.setup_region(&mut sess);
            let out = sess.run("decode", &args).unwrap();
            assert!(w.check_region(out, &mut sess));
        }
    }

    #[test]
    fn dispatches_are_array_indexed() {
        let w = Unrle {
            tokens: 64,
            distinct_runs: 8,
        };
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut d = p.dynamic_session();
        let args = w.setup_region(&mut d);
        d.run("decode", &args).unwrap();
        let rt = d.rt_stats().unwrap();
        assert!(
            rt.dispatch_indexed > 0,
            "indexed policy must serve the dispatches"
        );
        assert_eq!(rt.dispatch_hashed, 0, "no in-range key should hash");
        // One specialization per distinct control byte.
        let enc = w.encoded();
        let mut distinct: Vec<i64> = Vec::new();
        let mut i = 0;
        while i < enc.len() {
            let b = enc[i];
            if !distinct.contains(&b) {
                distinct.push(b);
            }
            i += if b < 128 { 1 } else { 2 };
        }
        assert_eq!(rt.specializations as usize, distinct.len());
    }

    #[test]
    fn runs_unroll_per_control_byte() {
        let w = Unrle {
            tokens: 16,
            distinct_runs: 6,
        };
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut d = p.dynamic_session();
        let args = w.setup_region(&mut d);
        d.run("decode", &args).unwrap();
        // Run-emitting specializations are straight stores, no loop.
        let code = d.disassemble_matching("emit_token$spec");
        assert!(code.contains("sti"), "stores remain:\n{code}");
        let rt = d.rt_stats().unwrap();
        assert!(rt.loops_unrolled > 0, "run loops unroll");
    }

    #[test]
    fn indexed_dispatch_is_cheaper_than_hashed() {
        let w = Unrle {
            tokens: 128,
            distinct_runs: 8,
        };
        // Indexed policy (the annotated source).
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut idx = p.dynamic_session();
        let args = w.setup_region(&mut idx);
        idx.run("decode", &args).unwrap();
        let (_, steady_idx) = idx.run_measured("decode", &args).unwrap();

        // Same program with the default hashed policy.
        let hashed_src = w.source().replace("b: cache_indexed", "b");
        let p2 = Compiler::new().compile(&hashed_src).unwrap();
        let mut hsh = p2.dynamic_session();
        let args2 = w.setup_region(&mut hsh);
        hsh.run("decode", &args2).unwrap();
        let (_, steady_hsh) = hsh.run_measured("decode", &args2).unwrap();

        assert!(
            steady_idx.dispatch_cycles * 3 < steady_hsh.dispatch_cycles,
            "indexed {} vs hashed {} dispatch cycles",
            steady_idx.dispatch_cycles,
            steady_hsh.dispatch_cycles
        );
        assert!(steady_idx.run_cycles() < steady_hsh.run_cycles());
    }

    #[test]
    fn out_of_range_keys_fall_back_safely() {
        // A region keyed on a value outside 0..255 still works (hashed
        // overflow path).
        let src = "int f(int k, int d) { make_static(k: cache_indexed); return k + d; }";
        let p = Compiler::new().compile(src).unwrap();
        let mut d = p.dynamic_session();
        assert_eq!(
            d.run("f", &[Value::I(100_000), Value::I(1)]).unwrap(),
            Some(Value::I(100_001))
        );
        assert_eq!(
            d.run("f", &[Value::I(-3), Value::I(1)]).unwrap(),
            Some(Value::I(-2))
        );
        assert_eq!(
            d.run("f", &[Value::I(7), Value::I(1)]).unwrap(),
            Some(Value::I(8))
        );
        let rt = d.rt_stats().unwrap();
        assert_eq!(rt.dispatch_indexed, 1);
        assert_eq!(rt.dispatch_hashed, 2);
    }

    #[test]
    fn multi_key_sites_degrade_to_cache_all() {
        let cfg = OptConfig::all();
        let src = "int f(int a, int b, int d) { make_static(a: cache_indexed, b: cache_indexed); return a + b + d; }";
        let p = Compiler::with_config(cfg).compile(src).unwrap();
        let mut d = p.dynamic_session();
        d.run("f", &[Value::I(1), Value::I(2), Value::I(3)])
            .unwrap();
        let rt = d.rt_stats().unwrap();
        assert_eq!(rt.dispatch_indexed, 0);
        assert_eq!(rt.dispatch_hashed, 1, "two keys cannot index a byte table");
    }
}
