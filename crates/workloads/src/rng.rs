//! A tiny deterministic PRNG for input generation.
//!
//! The workloads' inputs are deterministic by design (DESIGN.md §8): every
//! generator seeds its own stream, so runs are reproducible bit-for-bit.
//! That only needs a fast, well-mixed 64-bit generator — SplitMix64
//! (Steele, Lea & Flood, *Fast Splittable Pseudorandom Number Generators*)
//! — not an external crate. This module replaces the former `rand`
//! dependency so the workspace builds without registry access.

use std::ops::Range;

/// SplitMix64: one 64-bit state word, period 2^64, passes BigCrush.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

/// Range types [`SplitMix64::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Out;
    /// Draw one value uniformly from the (half-open) range.
    fn sample(self, rng: &mut SplitMix64) -> Self::Out;
}

impl SplitMix64 {
    /// Seed the generator (named after the `rand` method it replaces).
    pub fn seed_from_u64(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)` (53 significant bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from a half-open range (`i64` or `f64`).
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Out {
        range.sample(self)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            slice.swap(i, j);
        }
    }
}

impl SampleRange for Range<i64> {
    type Out = i64;
    fn sample(self, rng: &mut SplitMix64) -> i64 {
        let span = (self.end - self.start) as u64;
        assert!(span > 0, "empty range");
        // Modulo bias is negligible for the small spans the generators use
        // (all well under 2^32), and determinism is what matters here.
        self.start + (rng.next_u64() % span) as i64
    }
}

impl SampleRange for Range<f64> {
    type Out = f64;
    fn sample(self, rng: &mut SplitMix64) -> f64 {
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_splitmix_values() {
        // Reference outputs for seed 1234567 from the published algorithm.
        let mut r = SplitMix64::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..9);
            assert!((-5..9).contains(&v));
            let f = r.gen_range(2.0..3.5);
            assert!((2.0..3.5).contains(&f));
            let u = r.gen_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::seed_from_u64(99);
        let mut v: Vec<i64> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 99 must actually permute");
    }
}
