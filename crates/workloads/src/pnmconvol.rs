//! pnmconvol — image convolution (netpbm).
//!
//! The paper's running example (Figure 2): `do_convol` convolves an image
//! with a convolution matrix that is invariant across pixels, so the inner
//! loops over the matrix are specialized to its contents. The paper's
//! input is an 11×11 matrix with 9% ones and 83% zeroes; complete loop
//! unrolling plus static loads expose every weight, zero propagation
//! deletes the work for the zero weights, copy propagation handles the
//! ones, and dead-assignment elimination removes the then-dead image
//! loads — without it "the amount of generated code exceeded the size of
//! the L1 cache by a factor of 2.7, causing slowdowns" (§4.4.4).
//!
//! **Substitution note (DESIGN.md §2):** our VM emits ~4–5× fewer
//! instructions per unrolled iteration than Multiflow emitted Alpha
//! instructions, so with an 11×11 matrix the un-DAE'd code would still fit
//! in the 8KB I-cache and the paper's headline effect would vanish. The
//! default matrix is therefore scaled to 45×45 (same 9%/83% density),
//! preserving the generated-code-to-I-cache ratio that drives the
//! benchmark's behavior. [`Pnmconvol::paper_size`] builds the literal
//! 11×11 configuration.

use crate::rng::SplitMix64;
use crate::{Kind, Meta, Workload};
use dyc::{Session, Value};

/// The pnmconvol workload.
#[derive(Debug, Clone)]
pub struct Pnmconvol {
    /// Convolution matrix side length.
    pub csize: i64,
    /// Image rows.
    pub irows: i64,
    /// Image columns.
    pub icols: i64,
}

impl Default for Pnmconvol {
    fn default() -> Self {
        Pnmconvol {
            csize: 45,
            irows: 12,
            icols: 12,
        }
    }
}

impl Pnmconvol {
    /// The paper's literal 11×11 matrix (see module docs for why the
    /// default is scaled).
    pub fn paper_size() -> Pnmconvol {
        Pnmconvol {
            csize: 11,
            irows: 16,
            icols: 16,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> Pnmconvol {
        Pnmconvol {
            csize: 5,
            irows: 4,
            icols: 4,
        }
    }

    /// The convolution matrix: 9% ones, 83% zeroes, the rest 0.5
    /// (deterministic placement).
    pub fn matrix(&self) -> Vec<f64> {
        let cells = (self.csize * self.csize) as usize;
        let ones = (cells as f64 * 0.09).round() as usize;
        let zeros = (cells as f64 * 0.83).round() as usize;
        let mut m: Vec<f64> = Vec::with_capacity(cells);
        m.extend(std::iter::repeat_n(1.0, ones));
        m.extend(std::iter::repeat_n(0.0, zeros));
        m.extend(std::iter::repeat_n(
            0.5,
            cells - ones.min(cells) - zeros.min(cells),
        ));
        m.truncate(cells);
        let mut rng = SplitMix64::seed_from_u64(0x009b_3c11);
        rng.shuffle(&mut m);
        m
    }

    /// The input image (padded; see `setup_region`).
    pub fn image(&self) -> Vec<f64> {
        let mut rng = SplitMix64::seed_from_u64(0x009b_3c22);
        let pad_rows = (self.irows + self.csize) as usize;
        (0..pad_rows * self.icols as usize + self.csize as usize)
            .map(|_| rng.gen_range(0.0..1.0))
            .collect()
    }

    /// Reference convolution in plain Rust (for result checking).
    pub fn reference(&self, image: &[f64], matrix: &[f64]) -> Vec<f64> {
        let (irows, icols, c) = (
            self.irows as usize,
            self.icols as usize,
            self.csize as usize,
        );
        let mut out = vec![0.0f64; irows * icols];
        for ir in 0..irows {
            for ic in 0..icols {
                let mut sum = 0.0;
                for cr in 0..c {
                    for cc in 0..c {
                        // Matches the flattened VM arithmetic: the image
                        // base is offset by half a matrix in each
                        // dimension, so [-half..+half] accesses resolve to
                        // (ir+cr)*icols + (ic+cc) in the padded buffer.
                        sum += image[(ir + cr) * icols + ic + cc] * matrix[cr * c + cc];
                    }
                }
                out[ir * icols + ic] = sum;
            }
        }
        out
    }
}

/// The annotated DyCL source, following the paper's Figure 2.
pub const SOURCE: &str = r#"
    /* Convolve image with cmatrix into outbuf (paper Figure 2). */
    void do_convol(float image[][icols], int irows, int icols,
                   float cmatrix[][ccols], int crows, int ccols,
                   float outbuf[][icols]) {
        int crow, ccol;
        make_static(cmatrix, crows, ccols, crow, ccol);
        int crowso2 = crows / 2;
        int ccolso2 = ccols / 2;
        for (int irow = 0; irow < irows; ++irow) {
            int rowbase = irow - crowso2;
            for (int icol = 0; icol < icols; ++icol) {
                int colbase = icol - ccolso2;
                float sum = 0.0;
                for (crow = 0; crow < crows; ++crow) {
                    for (ccol = 0; ccol < ccols; ++ccol) {
                        float weight = cmatrix@[crow]@[ccol];
                        float x = image[rowbase + crow][colbase + ccol];
                        float weighted_x = x * weight;
                        sum = sum + weighted_x;
                    }
                }
                outbuf[irow][icol] = sum;
            }
        }
    }

    /* Whole program: convolve, then the rest of the pnmconvol pipeline —
       clamp, min/max contrast scan, and quantization (several passes over
       the image, as the real netpbm tool does around the convolution). */
    float pnm_main(float image[][icols], int irows, int icols,
                   float cmatrix[][ccols], int crows, int ccols,
                   float outbuf[][icols]) {
        do_convol(image, irows, icols, cmatrix, crows, ccols, outbuf);
        float lo = 1000000.0;
        float hi = -1000000.0;
        for (int r = 0; r < irows; ++r) {
            for (int c = 0; c < icols; ++c) {
                float v = outbuf[r][c];
                if (v < 0.0) { v = 0.0; }
                if (v > 255.0) { v = 255.0; }
                outbuf[r][c] = v;
                if (v < lo) { lo = v; }
                if (v > hi) { hi = v; }
            }
        }
        float range = hi - lo;
        if (range <= 0.0) { range = 1.0; }
        float acc = 0.0;
        for (int pass = 0; pass < 3; ++pass) {
            for (int r = 0; r < irows; ++r) {
                for (int c = 0; c < icols; ++c) {
                    float v = (outbuf[r][c] - lo) / range;
                    float q = (float) ((int) (v * 255.0));
                    acc = acc + q / 255.0 + (float) pass * 0.0;
                }
            }
        }
        return acc;
    }
"#;

impl Workload for Pnmconvol {
    fn meta(&self) -> Meta {
        Meta {
            name: "pnmconvol",
            kind: Kind::Application,
            description: "image convolution",
            static_vars: "convolution matrix",
            static_values: "45x45 (scaled from 11x11) with 9% ones, 83% zeroes",
            region_func: "do_convol",
            break_even_unit: "pixels",
            units_per_invocation: (self.irows * self.icols) as u64,
        }
    }

    fn source(&self) -> String {
        SOURCE.to_string()
    }

    fn setup_region(&self, sess: &mut Session) -> Vec<Value> {
        let img = self.image();
        let mat = self.matrix();
        let half = self.csize / 2;
        let buf = sess.alloc(img.len());
        sess.mem().write_floats(buf, &img);
        // Offset the image base so border accesses stay in the padding.
        let image_base = buf + half * self.icols + half;
        let cmat = sess.alloc(mat.len());
        sess.mem().write_floats(cmat, &mat);
        let outbuf = sess.alloc((self.irows * self.icols) as usize);
        vec![
            Value::I(image_base),
            Value::I(self.irows),
            Value::I(self.icols),
            Value::I(cmat),
            Value::I(self.csize),
            Value::I(self.csize),
            Value::I(outbuf),
        ]
    }

    fn setup_main(&self, sess: &mut Session) -> Option<Vec<Value>> {
        Some(self.setup_region(sess))
    }

    fn main_region_invocations(&self) -> u64 {
        1
    }

    fn check_region(&self, _result: Option<Value>, sess: &mut Session) -> bool {
        let img = self.image();
        let mat = self.matrix();
        let expect = self.reference(&img, &mat);
        // outbuf is the third allocation; recompute its base.
        let outbuf = (img.len() + mat.len()) as i64;
        let got = sess.mem().read_floats(outbuf, expect.len());
        got.iter().zip(&expect).all(|(a, b)| (a - b).abs() < 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;
    use dyc::Compiler;

    #[test]
    fn matrix_has_paper_density() {
        let w = Pnmconvol::default();
        let m = w.matrix();
        let ones = m.iter().filter(|v| **v == 1.0).count();
        let zeros = m.iter().filter(|v| **v == 0.0).count();
        let total = m.len();
        assert!((ones as f64 / total as f64 - 0.09).abs() < 0.01);
        assert!((zeros as f64 / total as f64 - 0.83).abs() < 0.01);
    }

    #[test]
    fn static_and_dynamic_convolutions_agree() {
        let w = Pnmconvol::tiny();
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut s = p.static_session();
        let mut d = p.dynamic_session();
        let sa = w.setup_region(&mut s);
        let da = w.setup_region(&mut d);
        s.run("do_convol", &sa).unwrap();
        d.run("do_convol", &da).unwrap();
        assert!(w.check_region(None, &mut s), "static result wrong");
        assert!(w.check_region(None, &mut d), "dynamic result wrong");
    }

    #[test]
    fn dynamic_region_uses_the_paper_optimizations() {
        let w = Pnmconvol::tiny();
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut d = p.dynamic_session();
        let args = w.setup_region(&mut d);
        d.run("do_convol", &args).unwrap();
        let rt = d.rt_stats().unwrap();
        assert!(rt.loops_unrolled >= 2, "conv loops unroll");
        assert!(!rt.multi_way_unroll, "pnmconvol unrolls single-way");
        assert!(rt.static_loads as i64 >= w.csize * w.csize);
        assert!(rt.zero_copy_folds > 0);
        assert!(rt.dae_removed > 0, "zero weights kill image loads");
    }
}
