//! romberg — numerical integration by iteration (kernel).
//!
//! Specialized on the iteration bound (6, Table 1). With the bound static,
//! every refinement loop unrolls completely, the number of new sample
//! points per level (`1 << (i-1)`) folds, and the Richardson-extrapolation
//! table indexing becomes immediate offsets. The integrand calls (`sin` of
//! a dynamic point) remain at run time, so the speedup is modest — the
//! paper reports 1.3.

use crate::{Kind, Meta, Workload};
use dyc::{Session, Value};

/// The romberg workload.
#[derive(Debug, Clone)]
pub struct Romberg {
    /// Iteration bound (table size); the paper's input is 6.
    pub m: i64,
    /// Integration bounds used for region timing.
    pub a: f64,
    /// Upper bound.
    pub b: f64,
}

impl Default for Romberg {
    fn default() -> Self {
        Romberg {
            m: 6,
            a: 0.0,
            b: 1.5,
        }
    }
}

impl Romberg {
    /// Reference Romberg integration of sin on [a, b] in plain Rust
    /// (mirrors the DyCL source exactly).
    pub fn reference(&self, a: f64, b: f64) -> f64 {
        let m = self.m as usize;
        let mm = m;
        let mut r = vec![0.0f64; m * mm];
        let mut h = b - a;
        r[0] = (a.sin() + b.sin()) * h / 2.0;
        for i in 1..m {
            h /= 2.0;
            let mut s = 0.0;
            let np = 1i64 << (i - 1);
            for k in 1..=np {
                s += (a + (2 * k - 1) as f64 * h).sin();
            }
            r[i * mm] = r[(i - 1) * mm] / 2.0 + s * h;
            let mut p4 = 4.0f64;
            for j in 1..=i {
                r[i * mm + j] =
                    r[i * mm + j - 1] + (r[i * mm + j - 1] - r[(i - 1) * mm + j - 1]) / (p4 - 1.0);
                p4 *= 4.0;
            }
        }
        r[(m - 1) * mm + m - 1]
    }
}

/// The annotated DyCL source.
pub const SOURCE: &str = r#"
    /* Romberg integration of sin over [a, b] with a static level bound. */
    float romberg(float a, float b, int m, float r[mm2], int mm) {
        make_static(m: cache_one_unchecked, mm: cache_one_unchecked);
        float h = b - a;
        r[0] = (sin(a) + sin(b)) * h / 2.0;
        int i = 1;
        while (i < m) {
            h = h / 2.0;
            float s = 0.0;
            int np = 1 << (i - 1);
            int k = 1;
            while (k <= np) {
                s = s + sin(a + (float) (2 * k - 1) * h);
                k = k + 1;
            }
            r[i * mm] = r[(i - 1) * mm] / 2.0 + s * h;
            float p4 = 4.0;
            int j = 1;
            while (j <= i) {
                r[i * mm + j] = r[i * mm + j - 1]
                    + (r[i * mm + j - 1] - r[(i - 1) * mm + j - 1]) / (p4 - 1.0);
                p4 = p4 * 4.0;
                j = j + 1;
            }
            i = i + 1;
        }
        return r[(m - 1) * mm + m - 1];
    }
"#;

impl Workload for Romberg {
    fn meta(&self) -> Meta {
        Meta {
            name: "romberg",
            kind: Kind::Kernel,
            description: "function integration by iteration",
            static_vars: "the iteration bound",
            static_values: "6",
            region_func: "romberg",
            break_even_unit: "integrations",
            units_per_invocation: 1,
        }
    }

    fn source(&self) -> String {
        SOURCE.to_string()
    }

    fn setup_region(&self, sess: &mut Session) -> Vec<Value> {
        let scratch = sess.alloc((self.m * self.m) as usize);
        vec![
            Value::F(self.a),
            Value::F(self.b),
            Value::I(self.m),
            Value::I(scratch),
            Value::I(self.m),
        ]
    }

    fn check_region(&self, result: Option<Value>, _sess: &mut Session) -> bool {
        match result {
            Some(Value::F(got)) => {
                let want = self.reference(self.a, self.b);
                let truth = (self.a.cos() - self.b.cos()).abs();
                (got - want).abs() < 1e-12 && (got - truth).abs() < 1e-6
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyc::Compiler;

    #[test]
    fn reference_integrates_sin_accurately() {
        let w = Romberg::default();
        let got = w.reference(0.0, 1.5);
        let want = 1.0 - 1.5f64.cos();
        assert!((got - want).abs() < 1e-8, "{got} vs {want}");
    }

    #[test]
    fn static_and_dynamic_agree_bitwise() {
        let w = Romberg::default();
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut s = p.static_session();
        let mut d = p.dynamic_session();
        let sa = w.setup_region(&mut s);
        let da = w.setup_region(&mut d);
        let sv = s.run("romberg", &sa).unwrap().unwrap().as_f();
        let dv = d.run("romberg", &da).unwrap().unwrap().as_f();
        assert_eq!(sv.to_bits(), dv.to_bits());
        assert!(w.check_region(Some(Value::F(dv)), &mut d));
    }

    #[test]
    fn all_levels_unroll() {
        let w = Romberg::default();
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut d = p.dynamic_session();
        let args = w.setup_region(&mut d);
        d.run("romberg", &args).unwrap();
        let rt = d.rt_stats().unwrap();
        assert!(
            rt.loops_unrolled >= 3,
            "level, sample and extrapolation loops unroll"
        );
        assert!(!rt.multi_way_unroll);
        let code = d.disassemble_matching("romberg$spec");
        assert!(
            !code.contains("jmp") && !code.contains("brz") && !code.contains("brnz"),
            "fully unrolled integration is straight-line:\n{code}"
        );
        // The sin calls on dynamic points remain.
        assert!(code.contains("hcall"));
    }
}
