//! chebyshev — polynomial function approximation (kernel).
//!
//! Specialized on the degree of the polynomial (10, Table 1). The kernel
//! interpolates `exp` at the Chebyshev nodes using barycentric weights;
//! the node positions (`cos` calls) and sampled function values (`exp`
//! calls) depend only on the static degree, so they are *static calls*
//! executed and memoized at dynamic compile time. "chebyshev is dominated
//! by static calls to the cosine function, most of which are memoized
//! through dynamic compilation … treating calls to cosine as static …
//! turned a marginal 20% advantage over the statically compiled version
//! into a 6-fold speedup" (§4.2, §4.4.4).

use crate::{Kind, Meta, Workload};
use dyc::{Session, Value};

/// The chebyshev workload.
#[derive(Debug, Clone)]
pub struct Chebyshev {
    /// Polynomial degree (number of interpolation nodes).
    pub degree: i64,
    /// Evaluation point used during region timing.
    pub x: f64,
}

impl Default for Chebyshev {
    fn default() -> Self {
        Chebyshev { degree: 10, x: 0.3 }
    }
}

impl Chebyshev {
    /// Reference evaluation in plain Rust (mirrors the DyCL source).
    pub fn reference(&self, x: f64) -> f64 {
        let n = self.degree;
        // Must match the literal in the DyCL source exactly (the test
        // checks bitwise agreement), not `std::f64::consts::PI`.
        #[allow(clippy::approx_constant)]
        let pi = 3.14159265358979_f64;
        let (mut num, mut den, mut sign) = (0.0, 0.0, 1.0);
        for i in 0..n {
            let theta = pi * (i as f64 + 0.5) / n as f64;
            let xi = theta.cos();
            let fi = xi.exp();
            let diff = x - xi;
            let wi = sign * theta.sin() / diff;
            num += wi * fi;
            den += wi;
            sign = -sign;
        }
        num / den
    }
}

/// The annotated DyCL source (barycentric Chebyshev interpolation of exp).
pub const SOURCE: &str = r#"
    float cheby(float x, int n) {
        make_static(n: cache_one_unchecked);
        float pi = 3.14159265358979;
        float num = 0.0;
        float den = 0.0;
        float sign = 1.0;
        int i = 0;
        while (i < n) {
            float theta = pi * ((float) i + 0.5) / (float) n;
            float xi = cos(theta);
            float fi = exp(xi);
            float diff = x - xi;
            float wi = sign * sin(theta) / diff;
            num = num + wi * fi;
            den = den + wi;
            sign = -sign;
            i = i + 1;
        }
        return num / den;
    }
"#;

impl Workload for Chebyshev {
    fn meta(&self) -> Meta {
        Meta {
            name: "chebyshev",
            kind: Kind::Kernel,
            description: "polynomial function approximation",
            static_vars: "the degree of the polynomial",
            static_values: "10",
            region_func: "cheby",
            break_even_unit: "interpolations",
            units_per_invocation: 1,
        }
    }

    fn source(&self) -> String {
        SOURCE.to_string()
    }

    fn setup_region(&self, _sess: &mut Session) -> Vec<Value> {
        vec![Value::F(self.x), Value::I(self.degree)]
    }

    fn check_region(&self, result: Option<Value>, _sess: &mut Session) -> bool {
        match result {
            Some(Value::F(got)) => {
                let want = self.reference(self.x);
                (got - want).abs() < 1e-9 && (got - self.x.exp()).abs() < 1e-3
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyc::Compiler;

    #[test]
    fn approximates_exp_well() {
        let w = Chebyshev::default();
        for x in [-0.9, -0.3, 0.0, 0.3, 0.9] {
            let approx = w.reference(x);
            assert!(
                (approx - x.exp()).abs() < 1e-6,
                "x = {x}: {approx} vs {}",
                x.exp()
            );
        }
    }

    #[test]
    fn cos_and_exp_are_memoized_at_compile_time() {
        let w = Chebyshev::default();
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut d = p.dynamic_session();
        let args = w.setup_region(&mut d);
        let out = d.run("cheby", &args).unwrap();
        assert!(w.check_region(out, &mut d));
        let rt = d.rt_stats().unwrap();
        assert_eq!(
            rt.static_calls,
            3 * w.degree as u64,
            "cos, sin and exp memoized per node"
        );
        let code = d.disassemble_matching("cheby$spec");
        assert!(
            !code.contains("hcall"),
            "no run-time math calls remain:\n{code}"
        );
    }

    #[test]
    fn static_and_dynamic_agree_bitwise() {
        let w = Chebyshev::default();
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut s = p.static_session();
        let mut d = p.dynamic_session();
        for x in [-0.7, 0.1, 0.55] {
            let sv = s
                .run("cheby", &[Value::F(x), Value::I(10)])
                .unwrap()
                .unwrap()
                .as_f();
            let dv = d
                .run("cheby", &[Value::F(x), Value::I(10)])
                .unwrap()
                .unwrap()
                .as_f();
            assert_eq!(sv.to_bits(), dv.to_bits(), "x = {x}");
        }
    }
}
