//! viewperf — Mesa rendering routines (SPEC Viewperf driver).
//!
//! The paper dynamically compiles two Mesa routines:
//! `project_and_clip_test` (a 4×4 matrix transformer specialized on the 3D
//! projection matrix) and `gl_color_shade_vertices` (a shader specialized
//! on lighting variables). The projection matrix is mostly zeros, so
//! dynamic zero/copy propagation collapses most of the multiply-add grid;
//! the shader "required intraprocedural polyvariant division in order to
//! specialize for the values of variables that were derived as static only
//! on some paths through the procedure" (§4.4.4). Mesa's hand-specialized
//! shader variants were deleted in the paper's experiment — dynamic
//! compilation regenerates them from the general-purpose routine, which is
//! exactly what the promotion-based specialization here does.

use crate::rng::SplitMix64;
use crate::{Kind, Meta, Workload};
use dyc::{Session, Value};

/// Number of vertices processed per region invocation.
const NVERTS: i64 = 64;

/// A perspective projection matrix (row-major 4×4): 10 zeros, so ZCP/DAE
/// collapse most of the transform.
pub fn perspective_matrix() -> Vec<f64> {
    let (f, aspect, zn, zf) = (1.2, 1.25, 0.1, 100.0);
    vec![
        f / aspect,
        0.0,
        0.0,
        0.0,
        0.0,
        f,
        0.0,
        0.0,
        0.0,
        0.0,
        (zf + zn) / (zn - zf),
        (2.0 * zf * zn) / (zn - zf),
        0.0,
        0.0,
        -1.0,
        0.0,
    ]
}

/// Deterministic vertex positions (x, y, z, w).
pub fn vertices(n: i64, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..n)
        .flat_map(|_| {
            [
                rng.gen_range(-2.0..2.0),
                rng.gen_range(-2.0..2.0),
                rng.gen_range(-10.0..-0.2),
                1.0,
            ]
        })
        .collect()
}

/// Deterministic unit-ish normals (x, y, z).
pub fn normals(n: i64, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    (0..n)
        .flat_map(|_| {
            [
                rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
                rng.gen_range(0.0..1.0),
            ]
        })
        .collect()
}

/// `project_and_clip_test`, specialized on the projection matrix.
pub const PROJECT_SOURCE: &str = r#"
    int project(float m[16], float vin[n4], float vout[n4], int nverts, int n4) {
        make_static(m: cache_one_unchecked);
        int clipped = 0;
        int v = 0;
        while (v < nverts) {
            int base = v * 4;
            float x = vin[base];
            float y = vin[base + 1];
            float z = vin[base + 2];
            float w = vin[base + 3];
            float ox = m@[0] * x + m@[1] * y + m@[2] * z + m@[3] * w;
            float oy = m@[4] * x + m@[5] * y + m@[6] * z + m@[7] * w;
            float oz = m@[8] * x + m@[9] * y + m@[10] * z + m@[11] * w;
            float ow = m@[12] * x + m@[13] * y + m@[14] * z + m@[15] * w;
            vout[base] = ox;
            vout[base + 1] = oy;
            vout[base + 2] = oz;
            vout[base + 3] = ow;
            if (ox < -ow) { clipped = clipped + 1; }
            if (ox > ow) { clipped = clipped + 1; }
            if (oy < -ow) { clipped = clipped + 1; }
            if (oy > ow) { clipped = clipped + 1; }
            v = v + 1;
        }
        return clipped;
    }
"#;

/// `gl_color_shade_vertices`, specialized on the lighting state with
/// polyvariant division: the light color components are static only on the
/// lit path.
pub const SHADE_SOURCE: &str = r#"
    float shade(float norms[n3], float cols[n3], int nverts, int n3,
                int lit, float lr, float lg, float lb,
                float sr, float sg, float sb, float ambient) {
        make_static(lit: cache_one_unchecked);
        float kr = ambient;
        float kg = ambient;
        float kb = ambient;
        float pr = 0.0;
        float pg = 0.0;
        float pb = 0.0;
        if (lit) {
            kr = lr;
            kg = lg;
            kb = lb;
            pr = sr;
            pg = sg;
            pb = sb;
            promote(kr);
            promote(kg);
            promote(kb);
            promote(pr);
            promote(pg);
            promote(pb);
        }
        float acc = 0.0;
        int v = 0;
        while (v < nverts) {
            int base = v * 3;
            float d = norms[base] * 0.577 + norms[base + 1] * 0.577 + norms[base + 2] * 0.577;
            if (d < 0.0) { d = 0.0; }
            float spec = d * d;
            cols[base] = kr * d + pr * spec;
            cols[base + 1] = kg * d + pg * spec;
            cols[base + 2] = kb * d + pb * spec;
            acc = acc + cols[base] + cols[base + 1] + cols[base + 2];
            v = v + 1;
        }
        return acc;
    }
"#;

/// Whole-program driver: vertex setup, projection, shading, accumulation.
pub const MAIN_SOURCE_EXTRA: &str = r#"
    float view_main(float m[16], float vin[n4], float vout[n4], int nverts, int n4,
                    float norms[n3], float cols[n3], int n3,
                    int lit, float lr, float lg, float lb, float ambient) {
        /* Vertex setup: model transform emulation (non-region work). */
        for (int v = 0; v < nverts; ++v) {
            int base = v * 4;
            float x = vin[base];
            float y = vin[base + 1];
            vin[base] = x * 0.99 + 0.01;
            vin[base + 1] = y * 0.99 - 0.01;
        }
        int clipped = project(m, vin, vout, nverts, n4);
        float lum = shade(norms, cols, nverts, n3, lit, lr, lg, lb, 0.8, 0.0, 0.0, ambient);
        /* Post pass: bounding box of the projected vertices. */
        float maxx = -1000000.0;
        for (int v = 0; v < nverts; ++v) {
            float ox = vout[v * 4];
            if (ox > maxx) { maxx = ox; }
        }
        return lum + maxx + (float) clipped;
    }
"#;

fn combined_source() -> String {
    format!("{PROJECT_SOURCE}\n{SHADE_SOURCE}\n{MAIN_SOURCE_EXTRA}")
}

/// Reference projection in plain Rust.
pub fn reference_project(m: &[f64], vin: &[f64], nverts: i64) -> (Vec<f64>, i64) {
    let mut out = vec![0.0; (nverts * 4) as usize];
    let mut clipped = 0;
    for v in 0..nverts as usize {
        let b = v * 4;
        let (x, y, z, w) = (vin[b], vin[b + 1], vin[b + 2], vin[b + 3]);
        for r in 0..4 {
            out[b + r] = m[r * 4] * x + m[r * 4 + 1] * y + m[r * 4 + 2] * z + m[r * 4 + 3] * w;
        }
        let (ox, oy, ow) = (out[b], out[b + 1], out[b + 3]);
        if ox < -ow {
            clipped += 1;
        }
        if ox > ow {
            clipped += 1;
        }
        if oy < -ow {
            clipped += 1;
        }
        if oy > ow {
            clipped += 1;
        }
    }
    (out, clipped)
}

/// The viewperf projection workload.
#[derive(Debug, Clone)]
pub struct ViewperfProject {
    /// Vertices per invocation.
    pub nverts: i64,
}

impl Default for ViewperfProject {
    fn default() -> Self {
        ViewperfProject { nverts: NVERTS }
    }
}

impl Workload for ViewperfProject {
    fn meta(&self) -> Meta {
        Meta {
            name: "viewperf:project",
            kind: Kind::Application,
            description: "renderer (matrix transformer)",
            static_vars: "3D projection matrix",
            static_values: "perspective matrix",
            region_func: "project",
            break_even_unit: "invocations",
            units_per_invocation: 1,
        }
    }

    fn source(&self) -> String {
        combined_source()
    }

    fn setup_region(&self, sess: &mut Session) -> Vec<Value> {
        let m = perspective_matrix();
        let vin = vertices(self.nverts, 0x71e3);
        let mb = sess.alloc(16);
        sess.mem().write_floats(mb, &m);
        let vb = sess.alloc(vin.len());
        sess.mem().write_floats(vb, &vin);
        let ob = sess.alloc(vin.len());
        vec![
            Value::I(mb),
            Value::I(vb),
            Value::I(ob),
            Value::I(self.nverts),
            Value::I(self.nverts * 4),
        ]
    }

    fn setup_main(&self, sess: &mut Session) -> Option<Vec<Value>> {
        let mut args = self.setup_region(sess);
        let norms = normals(self.nverts, 0x71e4);
        let nb = sess.alloc(norms.len());
        sess.mem().write_floats(nb, &norms);
        let cb = sess.alloc(norms.len());
        args.push(Value::I(nb));
        args.push(Value::I(cb));
        args.push(Value::I(self.nverts * 3));
        args.push(Value::I(1));
        args.push(Value::F(1.0));
        args.push(Value::F(0.5));
        args.push(Value::F(0.0));
        args.push(Value::F(0.2));
        Some(args)
    }

    fn main_region_invocations(&self) -> u64 {
        1
    }

    fn check_region(&self, result: Option<Value>, sess: &mut Session) -> bool {
        let m = perspective_matrix();
        let vin = vertices(self.nverts, 0x71e3);
        let (expect, clipped) = reference_project(&m, &vin, self.nverts);
        if result != Some(Value::I(clipped)) {
            return false;
        }
        let ob = 16 + vin.len() as i64;
        let got = sess.mem().read_floats(ob, expect.len());
        got.iter().zip(&expect).all(|(a, b)| (a - b).abs() < 1e-9)
    }
}

/// The viewperf shader workload.
#[derive(Debug, Clone)]
pub struct ViewperfShade {
    /// Vertices per invocation.
    pub nverts: i64,
    /// Diffuse light color: (1.0, 0.5, 0.0) exercises copy propagation
    /// (×1), a plain constant (×0.5), and zero propagation + DAE (×0).
    pub light: (f64, f64, f64),
    /// Specular color; the zero channels fold away entirely.
    pub spec: (f64, f64, f64),
}

impl Default for ViewperfShade {
    fn default() -> Self {
        ViewperfShade {
            nverts: NVERTS,
            light: (1.0, 0.5, 0.0),
            spec: (0.8, 0.0, 0.0),
        }
    }
}

impl Workload for ViewperfShade {
    fn meta(&self) -> Meta {
        Meta {
            name: "viewperf:shade",
            kind: Kind::Application,
            description: "renderer (vertex shader)",
            static_vars: "lighting vars",
            static_values: "one light source",
            region_func: "shade",
            break_even_unit: "invocations",
            units_per_invocation: 1,
        }
    }

    fn source(&self) -> String {
        combined_source()
    }

    fn setup_region(&self, sess: &mut Session) -> Vec<Value> {
        let norms = normals(self.nverts, 0x71e4);
        let nb = sess.alloc(norms.len());
        sess.mem().write_floats(nb, &norms);
        let cb = sess.alloc(norms.len());
        vec![
            Value::I(nb),
            Value::I(cb),
            Value::I(self.nverts),
            Value::I(self.nverts * 3),
            Value::I(1),
            Value::F(self.light.0),
            Value::F(self.light.1),
            Value::F(self.light.2),
            Value::F(self.spec.0),
            Value::F(self.spec.1),
            Value::F(self.spec.2),
            Value::F(0.2),
        ]
    }

    fn check_region(&self, result: Option<Value>, _sess: &mut Session) -> bool {
        let norms = normals(self.nverts, 0x71e4);
        let (kr, kg, kb) = self.light;
        let (pr, pg, pb) = self.spec;
        let mut acc = 0.0;
        for v in 0..self.nverts as usize {
            let b = v * 3;
            let mut d = norms[b] * 0.577 + norms[b + 1] * 0.577 + norms[b + 2] * 0.577;
            if d < 0.0 {
                d = 0.0;
            }
            let spec = d * d;
            acc += (kr * d + pr * spec) + (kg * d + pg * spec) + (kb * d + pb * spec);
        }
        match result {
            Some(Value::F(got)) => (got - acc).abs() < 1e-6,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyc::Compiler;

    #[test]
    fn projection_agrees_with_reference_in_both_builds() {
        let w = ViewperfProject { nverts: 8 };
        let p = Compiler::new().compile(&w.source()).unwrap();
        for mut sess in [p.static_session(), p.dynamic_session()] {
            let args = w.setup_region(&mut sess);
            let out = sess.run("project", &args).unwrap();
            assert!(w.check_region(out, &mut sess));
        }
    }

    #[test]
    fn zero_entries_of_the_matrix_vanish() {
        let w = ViewperfProject { nverts: 8 };
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut d = p.dynamic_session();
        let args = w.setup_region(&mut d);
        d.run("project", &args).unwrap();
        let rt = d.rt_stats().unwrap();
        assert_eq!(rt.static_loads, 16, "matrix loads execute at compile time");
        assert!(rt.zero_copy_folds >= 10, "ten zero entries fold");
        let code = d.disassemble_matching("project$spec");
        // 16 multiplies in the source; at most 6 survive (nonzero entries).
        assert!(code.matches("fmul").count() <= 6, "{code}");
    }

    #[test]
    fn shader_agrees_and_uses_polyvariant_division() {
        let w = ViewperfShade {
            nverts: 8,
            ..ViewperfShade::default()
        };
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut s = p.static_session();
        let mut d = p.dynamic_session();
        let sa = w.setup_region(&mut s);
        let da = w.setup_region(&mut d);
        let sv = s.run("shade", &sa).unwrap();
        let dv = d.run("shade", &da).unwrap();
        assert_eq!(sv.unwrap().as_f().to_bits(), dv.unwrap().as_f().to_bits());
        assert!(w.check_region(dv, &mut d));
        let rt = d.rt_stats().unwrap();
        assert!(
            rt.internal_promotions >= 1,
            "light color promotes on the lit path"
        );
        assert!(rt.zero_copy_folds >= 1, "kr == 1.0 and kb == 0.0 fold");
    }

    #[test]
    fn unlit_path_shades_with_ambient_only() {
        let w = ViewperfShade {
            nverts: 8,
            ..ViewperfShade::default()
        };
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut d = p.dynamic_session();
        let mut args = w.setup_region(&mut d);
        args[4] = Value::I(0); // lit = 0
        let out = d.run("shade", &args).unwrap().unwrap().as_f();
        assert!(out > 0.0);
        // No promotions happen on the unlit division.
        assert_eq!(d.rt_stats().unwrap().internal_promotions, 0);
    }

    #[test]
    fn whole_program_runs_in_both_builds() {
        let w = ViewperfProject { nverts: 8 };
        let p = Compiler::new().compile(&w.source()).unwrap();
        let mut s = p.static_session();
        let mut d = p.dynamic_session();
        let sa = w.setup_main(&mut s).unwrap();
        let da = w.setup_main(&mut d).unwrap();
        let sv = s.run("view_main", &sa).unwrap().unwrap().as_f();
        let dv = d.run("view_main", &da).unwrap().unwrap().as_f();
        assert!((sv - dv).abs() < 1e-9);
    }
}
