//! The `CodeSink` backend abstraction of the emit pipeline.
//!
//! The shared emitter (`crate::emitter`) is the single place both specialization
//! paths construct instructions, but *where those instructions land* is a
//! backend decision: the VM wants a plain `Vec<Instr>` it can install as a
//! [`dyc_vm::CodeFunc`], the cache-persistence layer wants a
//! self-contained [`crate::artifact::CodeArtifact`] carrying unit labels,
//! resolved fixups, and template-hole descriptors, and tests want a raw
//! operation log to assert that emission is sink-agnostic. This module
//! factors that decision behind the [`CodeSink`] trait: the emitter keeps
//! all value-dependent work (register allocation, renames, folds, the
//! dead-assignment sweep, cycle metering) and writes only *final* data —
//! sealed instructions and resolved branch targets — through the sink.
//!
//! Three implementations:
//!
//! * [`VmSink`] — today's behavior, byte-identical: an append-only
//!   `Vec<Instr>` with in-place branch patching.
//! * [`crate::artifact::ArtifactSink`] — additionally records unit
//!   boundaries, fixups, and per-instruction hole counts, producing a
//!   serializable artifact.
//! * [`RecordingSink`] — logs every sink call verbatim for tests.
//!
//! The module also hosts the FNV-1a hasher the emitter's unit-key
//! interner uses (the same function the concurrent shard selector and
//! `dyc-obs` key hashing use), replacing the std SipHash state that
//! dominated intern cost.

use dyc_vm::Instr;

/// Where the emitter's sealed instructions land.
///
/// The emitter resolves everything before calling in: `push` receives the
/// final instruction (holes already patched), and `patch_branch` receives
/// the final target offset. A sink therefore never needs to understand
/// labels, units, or fixup keys — `begin_unit` exists only so artifact
/// backends can record unit boundaries.
pub trait CodeSink {
    /// Number of instructions emitted so far (the next push's offset).
    fn emitted(&self) -> usize;

    /// A unit seal is starting: unit `id` begins at instruction offset
    /// `label`. Purely informational; `VmSink` ignores it.
    fn begin_unit(&mut self, id: u32, label: u32);

    /// Append one instruction. `templated` marks a copy-and-patch
    /// template copy and `patches` the number of holes patched into it —
    /// metadata the artifact backend records as hole descriptors.
    fn push(&mut self, ins: Instr, templated: bool, patches: u16);

    /// [`CodeSink::push`] plus the instruction's pre-computed
    /// [`dyc_vm::instr_shape`] (`0` when unknown). Sinks that lower to
    /// machine bytes use the shape to reuse prebuilt encodings; every
    /// other sink ignores it, so the default forwards to `push`.
    fn push_shaped(&mut self, ins: Instr, templated: bool, patches: u16, shape: u16) {
        let _ = shape;
        self.push(ins, templated, patches);
    }

    /// Resolve the branch at instruction offset `at` to `target`.
    fn patch_branch(&mut self, at: usize, target: u32);
}

/// The default sink: instructions land in a plain vector, branches are
/// patched in place. Byte-identical to the pre-`CodeSink` emitter.
#[derive(Debug, Default)]
pub struct VmSink {
    /// The emitted instructions, install-ready for a [`dyc_vm::CodeFunc`].
    pub code: Vec<Instr>,
}

impl CodeSink for VmSink {
    fn emitted(&self) -> usize {
        self.code.len()
    }

    fn begin_unit(&mut self, _id: u32, _label: u32) {}

    fn push(&mut self, ins: Instr, _templated: bool, _patches: u16) {
        self.code.push(ins);
    }

    fn patch_branch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Instr::Jmp { target: t }
            | Instr::Brz { target: t, .. }
            | Instr::Brnz { target: t, .. } => {
                *t = target;
            }
            other => unreachable!("fixup on non-branch {other:?}"),
        }
    }
}

/// A [`VmSink`] that *also* lowers every sealed instruction to x86-64
/// bytes as it lands, via the copy-and-patch
/// [`FnEncoder`](crate::native::FnEncoder). The instruction mirror
/// stays authoritative: branch patches touch only the mirror, and
/// [`NativeSink::finish`] resolves the machine-code rel32s from the
/// mirror's final targets. If the encoder hits an unsupported
/// construct the mirror is still complete, so the caller installs the
/// VM function and records a native fallback.
#[derive(Debug, Default)]
pub struct NativeSink {
    /// The emitted instructions (identical to what a [`VmSink`] would
    /// hold after the same calls).
    pub code: Vec<Instr>,
    enc: crate::native::FnEncoder,
}

impl NativeSink {
    /// Consume the sink: the install-ready instruction vector plus the
    /// lowered machine code (`None` if anything was unsupported).
    pub fn finish(self) -> (Vec<Instr>, Option<crate::native::NativeArtifact>) {
        let NativeSink { code, enc } = self;
        let art = enc.finish(&code);
        (code, art)
    }
}

impl CodeSink for NativeSink {
    fn emitted(&self) -> usize {
        self.code.len()
    }

    fn begin_unit(&mut self, _id: u32, _label: u32) {}

    fn push(&mut self, ins: Instr, templated: bool, patches: u16) {
        self.push_shaped(ins, templated, patches, 0);
    }

    fn push_shaped(&mut self, ins: Instr, _templated: bool, _patches: u16, shape: u16) {
        self.enc.emit(&ins, shape);
        self.code.push(ins);
    }

    fn patch_branch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Instr::Jmp { target: t }
            | Instr::Brz { target: t, .. }
            | Instr::Brnz { target: t, .. } => {
                *t = target;
            }
            other => unreachable!("fixup on non-branch {other:?}"),
        }
    }
}

/// The sink the specialization executors actually instantiate: a
/// [`VmSink`] by default, upgraded to a [`NativeSink`] when
/// `OptConfig::native` asks for machine code. An enum (rather than a
/// generic parameter on the executor) so the choice can be made per
/// dispatch at run time without monomorphizing the GE interpreter
/// twice.
#[derive(Debug)]
pub enum InstallSink {
    /// Plain VM emission.
    Vm(VmSink),
    /// VM emission plus native lowering.
    Native(NativeSink),
}

impl Default for InstallSink {
    fn default() -> Self {
        InstallSink::Vm(VmSink::default())
    }
}

impl InstallSink {
    /// Consume the sink: the instruction vector plus the native
    /// artifact (always `None` on the VM variant).
    pub fn take_install(self) -> (Vec<Instr>, Option<crate::native::NativeArtifact>) {
        match self {
            InstallSink::Vm(s) => (s.code, None),
            InstallSink::Native(s) => s.finish(),
        }
    }
}

impl CodeSink for InstallSink {
    fn emitted(&self) -> usize {
        match self {
            InstallSink::Vm(s) => s.emitted(),
            InstallSink::Native(s) => s.emitted(),
        }
    }

    fn begin_unit(&mut self, id: u32, label: u32) {
        match self {
            InstallSink::Vm(s) => s.begin_unit(id, label),
            InstallSink::Native(s) => s.begin_unit(id, label),
        }
    }

    fn push(&mut self, ins: Instr, templated: bool, patches: u16) {
        match self {
            InstallSink::Vm(s) => s.push(ins, templated, patches),
            InstallSink::Native(s) => s.push(ins, templated, patches),
        }
    }

    fn push_shaped(&mut self, ins: Instr, templated: bool, patches: u16, shape: u16) {
        match self {
            InstallSink::Vm(s) => s.push_shaped(ins, templated, patches, shape),
            InstallSink::Native(s) => s.push_shaped(ins, templated, patches, shape),
        }
    }

    fn patch_branch(&mut self, at: usize, target: u32) {
        match self {
            InstallSink::Vm(s) => s.patch_branch(at, target),
            InstallSink::Native(s) => s.patch_branch(at, target),
        }
    }
}

/// One recorded sink call (see [`RecordingSink`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SinkOp {
    /// `begin_unit(id, label)`.
    Begin(u32, u32),
    /// `push(ins, templated, patches)`.
    Push(Instr, bool, u16),
    /// `patch_branch(at, target)`.
    Patch(usize, u32),
}

/// A sink that logs every call verbatim — used by tests to assert the
/// emitter drives every backend identically (sink-agnostic emission).
#[derive(Debug, Default)]
pub struct RecordingSink {
    /// The call log, in order.
    pub ops: Vec<SinkOp>,
    emitted: usize,
}

impl RecordingSink {
    /// Replay the log into a fresh code vector, reproducing exactly what a
    /// [`VmSink`] would hold after the same calls.
    pub fn replay(&self) -> Vec<Instr> {
        let mut vm = VmSink::default();
        for op in &self.ops {
            match op {
                SinkOp::Begin(id, label) => vm.begin_unit(*id, *label),
                SinkOp::Push(ins, t, p) => vm.push(ins.clone(), *t, *p),
                SinkOp::Patch(at, target) => vm.patch_branch(*at, *target),
            }
        }
        vm.code
    }
}

impl CodeSink for RecordingSink {
    fn emitted(&self) -> usize {
        self.emitted
    }

    fn begin_unit(&mut self, id: u32, label: u32) {
        self.ops.push(SinkOp::Begin(id, label));
    }

    fn push(&mut self, ins: Instr, templated: bool, patches: u16) {
        self.ops.push(SinkOp::Push(ins, templated, patches));
        self.emitted += 1;
    }

    fn patch_branch(&mut self, at: usize, target: u32) {
        self.ops.push(SinkOp::Patch(at, target));
    }
}

/// FNV-1a offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a over arbitrary bytes.
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }
}

/// `BuildHasher` plugging [`FnvHasher`] into std collections. Unit-key
/// interning is one hash per unit *reference* on the specialization hot
/// path; FNV-1a over the key bytes is both cheaper than SipHash and the
/// hash family the rest of the runtime (shard selector, `dyc-obs`
/// key hashing) already standardizes on.
#[derive(Debug, Default, Clone, Copy)]
pub struct FnvBuild;

impl std::hash::BuildHasher for FnvBuild {
    type Hasher = FnvHasher;

    fn build_hasher(&self) -> FnvHasher {
        FnvHasher::default()
    }
}

/// One-shot FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    use std::hash::Hasher as _;
    let mut h = FnvHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_sink_appends_and_patches_in_place() {
        let mut s = VmSink::default();
        s.push(Instr::MovI { dst: 0, imm: 7 }, false, 0);
        s.push(Instr::Jmp { target: u32::MAX }, true, 2);
        assert_eq!(s.emitted(), 2);
        s.patch_branch(1, 0);
        assert_eq!(s.code[1], Instr::Jmp { target: 0 });
    }

    #[test]
    #[should_panic(expected = "non-branch")]
    fn vm_sink_rejects_patching_non_branches() {
        let mut s = VmSink::default();
        s.push(Instr::Halt, false, 0);
        s.patch_branch(0, 3);
    }

    #[test]
    fn recording_sink_replays_to_vm_code() {
        let mut r = RecordingSink::default();
        r.begin_unit(0, 0);
        r.push(Instr::MovI { dst: 1, imm: 4 }, false, 0);
        r.push(
            Instr::Brnz {
                cond: 1,
                target: u32::MAX,
            },
            false,
            0,
        );
        r.patch_branch(1, 0);
        assert_eq!(r.emitted(), 2);
        assert_eq!(
            r.replay(),
            vec![
                Instr::MovI { dst: 1, imm: 4 },
                Instr::Brnz { cond: 1, target: 0 },
            ]
        );
    }

    #[test]
    fn native_sink_mirror_matches_vm_sink_and_lowers() {
        use dyc_vm::{instr_shape, IAluOp, Operand};
        let prog: Vec<Instr> = vec![
            Instr::MovI { dst: 1, imm: 4 },
            Instr::IAlu {
                op: IAluOp::Add,
                dst: 1,
                a: 1,
                b: Operand::Imm(1),
            },
            Instr::Brnz {
                cond: 1,
                target: u32::MAX,
            },
            Instr::Ret { src: Some(1) },
        ];
        let mut vm = VmSink::default();
        let mut native = NativeSink::default();
        for ins in &prog {
            let shape = instr_shape(ins);
            vm.push_shaped(ins.clone(), false, 0, shape);
            native.push_shaped(ins.clone(), false, 0, shape);
        }
        vm.patch_branch(2, 1);
        native.patch_branch(2, 1);
        let (code, art) = native.finish();
        assert_eq!(code, vm.code, "mirror must be byte-identical to VmSink");
        let art = art.expect("fully supported program must lower");
        assert!(art.calls.is_empty());
        assert_eq!(art.n_regs, 2);
        // InstallSink default is the plain VM path.
        let (code2, art2) = InstallSink::default().take_install();
        assert!(code2.is_empty() && art2.is_none());
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Known FNV-1a test vectors.
        assert_eq!(fnv1a(b""), FNV_OFFSET);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn fnv_build_hashes_via_std_hasher_plumbing() {
        use std::hash::{BuildHasher, Hasher};
        let mut h = FnvBuild.build_hasher();
        h.write(b"foobar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }
}
