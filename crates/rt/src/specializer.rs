//! The online specializer — DyC's *generating extension* (§2.1).
//!
//! Given the concrete values of the promoted variables, this walks the
//! region's IR, **executes the static computations** (including static
//! loads and static calls) against the live VM state, and **emits code**
//! for the dynamic computations, with holes instantiated to immediates or
//! materialized constants. Specialization proceeds in *units* — one block
//! under one static store — memoized by `(program point, live static
//! store)`:
//!
//! * re-reaching a unit emits a jump to the existing code (reconstructing
//!   residual loops);
//! * reaching a loop header with changed static values creates a fresh
//!   unit — **complete loop unrolling**, single-way when the units chain,
//!   multi-way when they form a graph (§2.2.4);
//! * reaching any point with a different static-variable *set* creates a
//!   fresh unit too — **program-point-specific polyvariant division and
//!   specialization** (§2.2.1, §2.2.5).
//!
//! Value-dependent emit-time optimizations (§2.2.7): dynamic zero & copy
//! propagation via a rename table, dynamic dead-assignment elimination via
//! a per-unit backward sweep over the emit buffer, and dynamic strength
//! reduction. Each is gated by its [`OptConfig`] flag and metered.

use crate::runtime::{Runtime, Site, Store};
use dyc_bta::{inst_binding, Binding, OptConfig};
use dyc_ir::analysis::{natural_loops, Liveness, NaturalLoop};
use dyc_ir::inst::{Callee, Inst, Term};
use dyc_ir::{BlockId, FuncIr, IrTy, VReg};
use dyc_lang::Policy;
use dyc_stage::live_at_point;
use dyc_vm::{
    Cc, FAluOp, FuncId, IAluOp, Instr, Module, Operand, Reg, UnOp, Value, Vm, VmError,
};
use std::collections::{BTreeSet, HashMap, HashSet};

/// A resolved operand at emit time.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Opnd {
    /// A run-time register.
    R(Reg),
    /// A known integer value (a filled hole).
    KI(i64),
    /// A known float value (a filled hole).
    KF(f64),
}

/// Specialization-unit identity: program point plus live static store.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct UnitKey {
    block: u32,
    start: u32,
    statics: Vec<(u32, u64)>,
}

fn unit_key(block: BlockId, start: usize, store: &Store) -> UnitKey {
    UnitKey {
        block: block.0,
        start: start as u32,
        statics: store.iter().map(|(v, val)| (v.0, val.key_bits())).collect(),
    }
}

/// One instruction in the per-unit emit buffer.
struct Emitted {
    ins: Instr,
    /// Candidate for dead-assignment elimination.
    deletable: bool,
    /// Branch fixup: patch the target to this unit's label afterwards.
    fixup: Option<UnitKey>,
}

/// The generating-extension executor. See module docs.
pub(crate) struct Specializer {
    f: FuncIr,
    live: Liveness,
    static_in: Vec<BTreeSet<VReg>>,
    loop_assigned: HashMap<BlockId, BTreeSet<VReg>>,
    unroll_exit_deps: HashMap<BlockId, Vec<BTreeSet<VReg>>>,
    unroll_keep: HashMap<BlockId, BTreeSet<VReg>>,
    policies: HashMap<VReg, Policy>,
    loops: Vec<NaturalLoop>,
    loop_headers: HashSet<BlockId>,
    cfg: OptConfig,
    fidx: usize,

    code: Vec<Instr>,
    labels: HashMap<UnitKey, u32>,
    fixups: Vec<(usize, UnitKey)>,
    worklist: Vec<(UnitKey, Store)>,
    reg_map: HashMap<VReg, Reg>,
    next_reg: u32,
    cycles: u64,
    budget: u64,
    // Instrumentation.
    header_units: HashMap<BlockId, HashSet<UnitKey>>,
    /// The emitted unit graph: every control edge between specialization
    /// units. Analyzed afterwards to classify unrolled loops as single-way
    /// (a chain of bodies) or multi-way (a tree or general graph, §2.2.4).
    unit_edges: Vec<(UnitKey, UnitKey)>,
    /// Unit currently being emitted (source of recorded edges).
    cur_unit: Option<UnitKey>,
    /// Distinct static-variable *sets* (divisions) seen per block.
    division_sets: HashMap<BlockId, HashSet<Vec<u32>>>,
}

impl Specializer {
    /// Specialize `site` for the given store and install nothing — the
    /// caller installs the returned function.
    pub(crate) fn run(
        rt: &mut Runtime,
        site: &Site,
        store: Store,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<FuncId, VmError> {
        let f = rt.staged.ir.funcs[site.func].clone();
        let sf = &rt.staged.funcs[site.func];
        let loops = natural_loops(&f);
        let mut spec = Specializer {
            live: sf.live.clone(),
            static_in: sf.bta.static_in.clone(),
            loop_assigned: sf.bta.loop_assigned.clone(),
            unroll_exit_deps: sf.bta.unroll_exit_deps.clone(),
            unroll_keep: sf.bta.unroll_keep_opt.clone(),
            policies: sf.bta.policies.clone(),
            loop_headers: loops.iter().map(|l| l.header).collect(),
            loops,
            cfg: rt.staged.cfg,
            fidx: site.func,
            code: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
            worklist: Vec::new(),
            reg_map: HashMap::new(),
            next_reg: 0,
            cycles: 0,
            budget: rt.spec_budget,
            header_units: HashMap::new(),
            unit_edges: Vec::new(),
            cur_unit: None,
            division_sets: HashMap::new(),
            f,
        };

        // Dynamic pass-through parameters, in arg order.
        let dyn_params: Vec<VReg> =
            site.arg_vars.iter().filter(|v| !store.contains_key(v)).copied().collect();
        for (i, v) in dyn_params.iter().enumerate() {
            spec.reg_map.insert(*v, i as u32);
        }
        spec.next_reg = dyn_params.len() as u32;

        let entry = unit_key(site.block, site.inst_idx, &store);
        spec.worklist.push((entry, store));
        while let Some((key, st)) = spec.worklist.pop() {
            if spec.labels.contains_key(&key) {
                continue;
            }
            spec.emit_chain(key, st, rt, module, vm)?;
        }

        // Patch branch targets.
        for (at, key) in std::mem::take(&mut spec.fixups) {
            let dest = *spec.labels.get(&key).expect("all units emitted before patching");
            match &mut spec.code[at] {
                Instr::Jmp { target } | Instr::Brz { target, .. } | Instr::Brnz { target, .. } => {
                    *target = dest;
                }
                other => unreachable!("fixup on non-branch {other:?}"),
            }
            spec.cycles += rt.costs.branch_patch;
        }

        // Loop-unrolling instrumentation: classify each unrolled loop from
        // the emitted unit graph.
        for (h, units) in &spec.header_units {
            if units.len() < 2 {
                continue;
            }
            rt.stats.loops_unrolled += 1;
            if spec.loop_is_multiway(*h, units) {
                rt.stats.multi_way_unroll = true;
            }
        }

        rt.stats.divisions_observed +=
            spec.division_sets.values().filter(|s| s.len() >= 2).count() as u64;
        rt.stats.instrs_generated += spec.code.len() as u64;
        let cycles = spec.cycles;
        rt.charge(vm, cycles);

        let name = format!("{}$spec{}", spec.f.name, module.len());
        let mut cf = dyc_vm::CodeFunc::new(name, dyn_params.len(), spec.next_reg.max(1) as usize);
        cf.code = spec.code;
        Ok(module.add_func(cf))
    }

    /// Emit a chain of units starting at `key`, tail-continuing through
    /// unconditional successors that are not yet emitted.
    fn emit_chain(
        &mut self,
        key: UnitKey,
        store: Store,
        rt: &mut Runtime,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<(), VmError> {
        let mut cur = Some((key, store));
        while let Some((key, store)) = cur.take() {
            if self.labels.contains_key(&key) {
                break;
            }
            if self.code.len() as u64 > self.budget {
                return Err(VmError::Dispatch(
                    "specialization exceeded its instruction budget (non-terminating static control flow?)"
                        .into(),
                ));
            }
            let block = BlockId(key.block);
            if self.loop_headers.contains(&block) && !key.statics.is_empty() {
                self.header_units.entry(block).or_default().insert(key.clone());
            }
            // Polyvariant division: the same point analyzed/compiled under
            // different static-variable *sets* (§2.2.5).
            let var_set: Vec<u32> = key.statics.iter().map(|(v, _)| *v).collect();
            self.division_sets.entry(block).or_default().insert(var_set);
            cur = self.emit_unit(key, store, rt, module, vm)?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn emit_unit(
        &mut self,
        key: UnitKey,
        mut store: Store,
        rt: &mut Runtime,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<Option<(UnitKey, Store)>, VmError> {
        let block = BlockId(key.block);
        let start = key.start as usize;
        self.cur_unit = Some(key.clone());
        let mut rename: HashMap<VReg, Opnd> = HashMap::new();
        let mut scratch: HashMap<u64, Reg> = HashMap::new();
        let mut buf: Vec<Emitted> = Vec::new();
        self.cycles += rt.costs.per_unit;
        rt.stats.units_emitted += 1;

        let n_insts = self.f.block(block).insts.len();
        let mut promotion: Option<(usize, Vec<VReg>)> = None;
        let mut i = start;
        while i < n_insts {
            let inst = self.f.block(block).insts[i].clone();
            match &inst {
                Inst::MakeStatic { vars } => {
                    let missing: Vec<VReg> = vars
                        .iter()
                        .map(|(v, _)| *v)
                        .filter(|v| !store.contains_key(v))
                        .collect();
                    if !missing.is_empty() && self.cfg.internal_promotions {
                        promotion = Some((i, missing));
                        break;
                    }
                    // Already static (or promotions disabled): no-op.
                }
                Inst::Promote { var } => {
                    if !store.contains_key(var) && self.cfg.internal_promotions {
                        promotion = Some((i, vec![*var]));
                        break;
                    }
                }
                Inst::MakeDynamic { vars } => {
                    for v in vars {
                        if let Some(val) = store.remove(v) {
                            // The value crosses into run time: materialize.
                            let r = self.reg_of(*v);
                            buf.push(Emitted {
                                ins: mov_const(r, val),
                                deletable: true,
                                fixup: None,
                            });
                        }
                    }
                }
                _ => {
                    let is_static = |v: VReg| store.contains_key(&v);
                    match inst_binding(&inst, &is_static, &self.cfg) {
                        Binding::Static => {
                            self.exec_static(&inst, &mut store, &mut rename, rt, module, vm)?;
                        }
                        Binding::Dynamic => {
                            self.emit_dynamic(
                                &inst,
                                block,
                                i,
                                &mut store,
                                &mut rename,
                                &mut scratch,
                                &mut buf,
                                rt,
                            );
                        }
                        Binding::Annotation => unreachable!("annotations handled above"),
                    }
                }
            }
            i += 1;
        }

        // Regs that must survive the unit (for dead-assignment elimination).
        let mut live_regs: HashSet<Reg> = HashSet::new();
        let mut chain: Option<(UnitKey, Store)> = None;

        if let Some((idx, missing)) = promotion {
            // Internal dynamic-to-static promotion: end the unit with a
            // dispatch that resumes specialization once the values are
            // known (§2.2.2).
            let live_here = live_at_point(&self.f, &self.live, block, idx);
            let live_set: BTreeSet<VReg> = live_here.iter().copied().collect();
            self.flush_renames(&mut rename, &mut buf, |v| live_set.contains(&v), None);
            let base_store: Store = store
                .iter()
                .filter(|(v, _)| live_here.contains(v))
                .map(|(v, val)| (*v, *val))
                .collect();
            let arg_vars: Vec<VReg> =
                live_here.iter().filter(|v| !store.contains_key(v)).copied().collect();
            let policy = dyc_stage::site_policy(
                &self.cfg,
                missing
                    .iter()
                    .map(|v| self.policies.get(v).copied().unwrap_or(Policy::CacheAll)),
                missing.len(),
            );
            let site_id = rt.add_site(Site {
                func: self.fidx,
                block,
                inst_idx: idx,
                base_store,
                key_vars: missing,
                arg_vars: arg_vars.clone(),
                policy,
            });
            self.cycles += rt.costs.new_site;
            let args: Vec<Reg> = arg_vars.iter().map(|v| self.reg_of(*v)).collect();
            live_regs.extend(args.iter().copied());
            let dst = self.f.ret_ty.map(|_| self.fresh_reg());
            buf.push(Emitted {
                ins: Instr::Dispatch { point: site_id, dst, args },
                deletable: false,
                fixup: None,
            });
            buf.push(Emitted { ins: Instr::Ret { src: dst }, deletable: false, fixup: None });
        } else {
            // Terminator.
            let term = self.f.block(block).term.clone();
            let live_out = self.live.live_out[block.index()].clone();
            let term_uses: BTreeSet<VReg> = term.uses().into_iter().collect();
            self.flush_renames(
                &mut rename,
                &mut buf,
                |v| live_out.contains(&v) || term_uses.contains(&v),
                Some(&mut live_regs),
            );
            // Every dynamic variable live out of the block must survive
            // the unit's dead-assignment sweep: later units read it.
            for v in &live_out {
                if !store.contains_key(v) {
                    let r = self.reg_of(*v);
                    live_regs.insert(r);
                }
            }
            match term {
                Term::Jmp(t) => {
                    chain = self.take_edge(t, &store, &mut buf, &mut live_regs, rt);
                }
                Term::Br { cond, t, f: fb } => {
                    match self.resolve(cond, &store, &rename) {
                        Opnd::KI(v) => {
                            rt.stats.branches_folded += 1;
                            let target = if v != 0 { t } else { fb };
                            chain =
                                self.take_edge(target, &store, &mut buf, &mut live_regs, rt);
                        }
                        Opnd::KF(v) => {
                            rt.stats.branches_folded += 1;
                            let target = if v != 0.0 { t } else { fb };
                            chain =
                                self.take_edge(target, &store, &mut buf, &mut live_regs, rt);
                        }
                        Opnd::R(r) => {
                            live_regs.insert(r);
                            // Demote for both successors before branching.
                            let (key_t, store_t) =
                                self.edge_unit(t, &store, &mut buf, &mut live_regs, rt);
                            let (key_f, store_f) =
                                self.edge_unit(fb, &store, &mut buf, &mut live_regs, rt);
                            // Branch to the true side; fall through to false.
                            buf.push(Emitted {
                                ins: Instr::Brnz { cond: r, target: 0 },
                                deletable: false,
                                fixup: Some(key_t.clone()),
                            });
                            if !self.labels.contains_key(&key_t) {
                                self.worklist.push((key_t, store_t));
                            }
                            if self.labels.contains_key(&key_f) {
                                buf.push(Emitted {
                                    ins: Instr::Jmp { target: 0 },
                                    deletable: false,
                                    fixup: Some(key_f),
                                });
                            } else {
                                chain = Some((key_f, store_f));
                            }
                        }
                    }
                }
                Term::Switch { on, cases, default } => {
                    match self.resolve(on, &store, &rename) {
                        Opnd::KI(v) => {
                            rt.stats.branches_folded += 1;
                            let target = cases
                                .iter()
                                .find_map(|(k, b)| (*k == v).then_some(*b))
                                .unwrap_or(default);
                            chain =
                                self.take_edge(target, &store, &mut buf, &mut live_regs, rt);
                        }
                        Opnd::KF(_) => unreachable!("switch scrutinee is int"),
                        Opnd::R(r) => {
                            live_regs.insert(r);
                            let tmp = self.fresh_reg();
                            for (k, target) in &cases {
                                let (key, st) =
                                    self.edge_unit(*target, &store, &mut buf, &mut live_regs, rt);
                                buf.push(Emitted {
                                    ins: Instr::ICmp {
                                        cc: Cc::Eq,
                                        dst: tmp,
                                        a: r,
                                        b: Operand::Imm(*k),
                                    },
                                    deletable: false,
                                    fixup: None,
                                });
                                buf.push(Emitted {
                                    ins: Instr::Brnz { cond: tmp, target: 0 },
                                    deletable: false,
                                    fixup: Some(key.clone()),
                                });
                                if !self.labels.contains_key(&key) {
                                    self.worklist.push((key, st));
                                }
                            }
                            let (key_d, store_d) =
                                self.edge_unit(default, &store, &mut buf, &mut live_regs, rt);
                            if self.labels.contains_key(&key_d) {
                                buf.push(Emitted {
                                    ins: Instr::Jmp { target: 0 },
                                    deletable: false,
                                    fixup: Some(key_d),
                                });
                            } else {
                                chain = Some((key_d, store_d));
                            }
                        }
                    }
                }
                Term::Ret(v) => {
                    let src = v.map(|v| match self.resolve(v, &store, &rename) {
                            Opnd::R(r) => r,
                            k => {
                                let r = self.fresh_reg();
                                buf.push(Emitted {
                                    ins: mov_const(r, opnd_value(k)),
                                    deletable: false,
                                    fixup: None,
                                });
                                r
                            }
                        });
                    if let Some(r) = src {
                        live_regs.insert(r);
                    }
                    buf.push(Emitted { ins: Instr::Ret { src }, deletable: false, fixup: None });
                }
            }
        }

        // Dynamic dead-assignment elimination: backward sweep over the
        // unit's emit buffer (§2.2.7).
        self.cycles += rt.costs.dae_check * buf.len() as u64;
        let kept = self.dae_sweep(buf, live_regs, rt);

        // Append, recording the unit label and any branch fixups.
        let label = self.code.len() as u32;
        self.labels.insert(key, label);
        for e in kept {
            if let Some(fk) = e.fixup {
                self.fixups.push((self.code.len(), fk));
            }
            self.code.push(e.ins);
            self.cycles += rt.costs.emit_instr;
        }
        Ok(chain)
    }

    /// Compute the successor unit for `target`, materializing demoted
    /// statics into registers before the transfer.
    fn edge_unit(
        &mut self,
        target: BlockId,
        store: &Store,
        buf: &mut Vec<Emitted>,
        live_regs: &mut HashSet<Reg>,
        rt: &mut Runtime,
    ) -> (UnitKey, Store) {
        let live_in = self.live.live_in[target.index()].clone();
        let mut out = Store::new();
        for (v, val) in store {
            if !live_in.contains(v) {
                continue; // dead static: drop from the key (§4.4.3)
            }
            let mut keep = true;
            if !self.cfg.polyvariant_division && !self.static_in[target.index()].contains(v) {
                keep = false;
            }
            // Demote loop-varying statics at loop headers unless they are
            // static induction variables of a loop that unrolls *in this
            // division*: unrolling must be driven by static control flow
            // or it never terminates (§2.1's "loops [that] have static
            // induction variables ... can therefore be completely
            // unrolled"). A loop unrolls in this division iff some exit
            // test's header-live dependencies are all in the current
            // static store — that is what makes conditional
            // specialization (§2.2.5) work: the guarded division unrolls,
            // the unguarded one keeps a residual loop.
            if let Some(assigned) = self.loop_assigned.get(&target) {
                if assigned.contains(v) {
                    let unrolls_here = self
                        .unroll_exit_deps
                        .get(&target)
                        .is_some_and(|deps| {
                            deps.iter()
                                .any(|d| d.iter().all(|x| store.contains_key(x)))
                        });
                    let kept = unrolls_here
                        && self.unroll_keep.get(&target).is_some_and(|k| k.contains(v));
                    if !kept {
                        keep = false;
                    }
                }
            }
            if keep {
                out.insert(*v, *val);
            } else {
                // Demotion: the value crosses into run time here.
                let r = self.reg_of(*v);
                buf.push(Emitted { ins: mov_const(r, *val), deletable: true, fixup: None });
                live_regs.insert(r);
            }
        }
        let key = unit_key(target, 0, &out);
        if let Some(from) = &self.cur_unit {
            self.unit_edges.push((from.clone(), key.clone()));
        }
        let _ = rt;
        (key, out)
    }

    /// Take an unconditional edge: tail-continue if the target is fresh,
    /// emit a jump otherwise.
    fn take_edge(
        &mut self,
        target: BlockId,
        store: &Store,
        buf: &mut Vec<Emitted>,
        live_regs: &mut HashSet<Reg>,
        rt: &mut Runtime,
    ) -> Option<(UnitKey, Store)> {
        let (key, st) = self.edge_unit(target, store, buf, live_regs, rt);
        if self.labels.contains_key(&key) {
            buf.push(Emitted { ins: Instr::Jmp { target: 0 }, deletable: false, fixup: Some(key) });
            None
        } else {
            Some((key, st))
        }
    }

    fn dae_sweep(
        &mut self,
        buf: Vec<Emitted>,
        mut live: HashSet<Reg>,
        rt: &mut Runtime,
    ) -> Vec<Emitted> {
        if !self.cfg.dead_assignment_elimination {
            return buf;
        }
        let mut keep_rev: Vec<Emitted> = Vec::with_capacity(buf.len());
        for e in buf.into_iter().rev() {
            if e.deletable {
                if let Some(d) = e.ins.def() {
                    if !live.contains(&d) {
                        rt.stats.dae_removed += 1;
                        continue;
                    }
                }
            }
            if let Some(d) = e.ins.def() {
                live.remove(&d);
            }
            live.extend(e.ins.uses());
            keep_rev.push(e);
        }
        keep_rev.reverse();
        keep_rev
    }

    /// Flush the rename table: every renamed variable that `keep` marks as
    /// readable later gets its value moved into its own register.
    fn flush_renames(
        &mut self,
        rename: &mut HashMap<VReg, Opnd>,
        buf: &mut Vec<Emitted>,
        keep: impl Fn(VReg) -> bool,
        mut live_regs: Option<&mut HashSet<Reg>>,
    ) {
        let mut entries: Vec<(VReg, Opnd)> = rename.drain().collect();
        entries.sort_by_key(|(v, _)| *v);
        for (v, alias) in entries {
            if !keep(v) {
                continue;
            }
            let ty = self.f.ty(v);
            let r = self.reg_of(v);
            let ins = match alias {
                Opnd::R(src) => {
                    if src == r {
                        continue;
                    }
                    if ty == IrTy::Float {
                        Instr::FMov { dst: r, src }
                    } else {
                        Instr::Mov { dst: r, src }
                    }
                }
                Opnd::KI(v) => Instr::MovI { dst: r, imm: v },
                Opnd::KF(v) => Instr::MovF { dst: r, imm: v },
            };
            buf.push(Emitted { ins, deletable: true, fixup: None });
            if let Some(lr) = live_regs.as_deref_mut() {
                lr.insert(r);
            }
        }
    }

    fn reg_of(&mut self, v: VReg) -> Reg {
        if let Some(r) = self.reg_map.get(&v) {
            return *r;
        }
        let r = self.next_reg;
        self.next_reg += 1;
        self.reg_map.insert(v, r);
        r
    }

    fn fresh_reg(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    /// Classify an unrolled loop as multi-way: some unit of the loop body
    /// can reach two or more distinct header units (a tree, like binary
    /// search), or a header unit is entered from two places (a graph,
    /// like an interpreted guest loop).
    fn loop_is_multiway(&self, header: BlockId, units: &HashSet<UnitKey>) -> bool {
        let Some(l) = self.loops.iter().find(|l| l.header == header) else {
            return false;
        };
        // Adjacency restricted to units whose blocks are in the loop body.
        let mut succs: HashMap<&UnitKey, Vec<&UnitKey>> = HashMap::new();
        let mut in_deg: HashMap<&UnitKey, u32> = HashMap::new();
        for (from, to) in &self.unit_edges {
            if !l.body.contains(&BlockId(from.block)) {
                continue;
            }
            if units.contains(to) {
                *in_deg.entry(to).or_insert(0) += 1;
            }
            succs.entry(from).or_default().push(to);
        }
        if in_deg.values().any(|d| *d >= 2) {
            return true;
        }
        // From each header unit, walk the body without passing through
        // other header units; reaching two of them means divergence.
        for k in units {
            let mut reached: HashSet<&UnitKey> = HashSet::new();
            let mut seen: HashSet<&UnitKey> = HashSet::new();
            let mut stack: Vec<&UnitKey> = vec![k];
            while let Some(u) = stack.pop() {
                for v in succs.get(u).map(Vec::as_slice).unwrap_or(&[]) {
                    if !l.body.contains(&BlockId(v.block)) {
                        continue;
                    }
                    if units.contains(*v) {
                        reached.insert(v);
                        continue;
                    }
                    if seen.insert(v) {
                        stack.push(v);
                    }
                }
            }
            if reached.len() >= 2 {
                return true;
            }
        }
        false
    }

    /// Is `v` read by any instruction after `(block, idx)`, by the block's
    /// terminator, or live out of the block?
    fn read_later(&self, block: BlockId, idx: usize, v: VReg) -> bool {
        if self.live.live_out[block.index()].contains(&v) {
            return true;
        }
        let b = self.f.block(block);
        if b.term.uses().contains(&v) {
            return true;
        }
        b.insts[idx + 1..].iter().any(|ri| {
            if ri.uses().contains(&v) {
                return true;
            }
            match ri {
                Inst::MakeStatic { vars } => vars.iter().any(|(x, _)| *x == v),
                Inst::MakeDynamic { vars } => vars.contains(&v),
                Inst::Promote { var } => *var == v,
                _ => false,
            }
        })
    }

    fn resolve(&mut self, v: VReg, store: &Store, rename: &HashMap<VReg, Opnd>) -> Opnd {
        if let Some(val) = store.get(&v) {
            return match val {
                Value::I(i) => Opnd::KI(*i),
                Value::F(f) => Opnd::KF(*f),
            };
        }
        if let Some(a) = rename.get(&v) {
            return *a;
        }
        Opnd::R(self.reg_of(v))
    }

    /// Get a register holding a known value (materializing at most once
    /// per unit per value).
    fn reg_for_const(
        &mut self,
        val: Value,
        scratch: &mut HashMap<u64, Reg>,
        buf: &mut Vec<Emitted>,
    ) -> Reg {
        let key = val.key_bits();
        if let Some(r) = scratch.get(&key) {
            return *r;
        }
        let r = self.fresh_reg();
        buf.push(Emitted { ins: mov_const(r, val), deletable: true, fixup: None });
        scratch.insert(key, r);
        r
    }

    /// Execute a static computation at specialization time.
    fn exec_static(
        &mut self,
        inst: &Inst,
        store: &mut Store,
        rename: &mut HashMap<VReg, Opnd>,
        rt: &mut Runtime,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<(), VmError> {
        let val = |s: &Store, v: VReg| -> Value { s[&v] };
        let result: Value = match inst {
            Inst::ConstI { v, .. } => Value::I(*v),
            Inst::ConstF { v, .. } => Value::F(*v),
            Inst::Copy { src, .. } => val(store, *src),
            Inst::Un { op, src, .. } => eval_un(*op, val(store, *src)),
            Inst::IBin { op, a, b, .. } => {
                Value::I(eval_ialu(*op, val(store, *a).as_i(), val(store, *b).as_i())?)
            }
            Inst::FBin { op, a, b, .. } => {
                Value::F(eval_falu(*op, val(store, *a).as_f(), val(store, *b).as_f()))
            }
            Inst::ICmp { cc, a, b, .. } => {
                Value::I(eval_icmp(*cc, val(store, *a).as_i(), val(store, *b).as_i()) as i64)
            }
            Inst::FCmp { cc, a, b, .. } => {
                Value::I(eval_fcmp(*cc, val(store, *a).as_f(), val(store, *b).as_f()) as i64)
            }
            Inst::Load { ty, base, idx, .. } => {
                // A *static load* (§2.2.6): read live VM memory now.
                rt.stats.static_loads += 1;
                self.cycles += rt.costs.static_load;
                let addr = val(store, *base).as_i() + val(store, *idx).as_i();
                vm.mem.read(addr, ty.vm_ty())
            }
            Inst::Call { callee, args, .. } => {
                // A *static call* (§2.2.6): run it now and memoize the
                // result into the emitted code.
                rt.stats.static_calls += 1;
                let arg_vals: Vec<Value> = args.iter().map(|a| val(store, *a)).collect();
                match callee {
                    Callee::Host(h) => {
                        let mut sink = Vec::new();
                        self.cycles += vm.cost_model().host_cost(*h);
                        h.eval(&arg_vals, &mut sink)
                            .expect("pure host functions return values")
                    }
                    Callee::Func { index, .. } => {
                        let before = vm.stats.clone();
                        let out = vm.call(module, FuncId(*index as u32), &arg_vals)?;
                        // Those cycles belong to dynamic compilation, not
                        // to the running program: reclassify.
                        let delta = vm.stats.delta_since(&before);
                        vm.stats.exec_cycles -= delta.exec_cycles;
                        vm.stats.icache_miss_cycles -= delta.icache_miss_cycles;
                        vm.stats.instrs_executed -= delta.instrs_executed;
                        self.cycles += delta.exec_cycles + delta.icache_miss_cycles;
                        out.ok_or_else(|| {
                            VmError::Dispatch("static call to void function".into())
                        })?
                    }
                }
            }
            _ => unreachable!("not a static computation: {inst:?}"),
        };
        rt.stats.static_ops += 1;
        self.cycles += rt.costs.static_op;
        let dst = inst.def().expect("static computations define a value");
        rename.remove(&dst);
        store.insert(dst, result);
        Ok(())
    }

    /// Emit a dynamic computation, applying the value-dependent staged
    /// optimizations. Operands are resolved *before* the destination
    /// bookkeeping so value chains consumed by this very instruction do
    /// not get materialized.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn emit_dynamic(
        &mut self,
        inst: &Inst,
        block: BlockId,
        idx: usize,
        store: &mut Store,
        rename: &mut HashMap<VReg, Opnd>,
        scratch: &mut HashMap<u64, Reg>,
        buf: &mut Vec<Emitted>,
        rt: &mut Runtime,
    ) {
        // Resolve every source operand first (pure lookups).
        let ops: Vec<Opnd> =
            inst.uses().iter().map(|u| self.resolve(*u, store, rename)).collect();

        let dst_vreg = inst.def();
        // Redefining a register invalidates rename entries that alias it;
        // materialize only aliases that are still read after this point.
        if let Some(d) = dst_vreg {
            let dr = self.reg_of(d);
            let stale: Vec<VReg> = rename
                .iter()
                .filter(|(v, a)| **a == Opnd::R(dr) && **v != d)
                .map(|(v, _)| *v)
                .collect();
            for v in stale {
                rename.remove(&v);
                if !self.read_later(block, idx, v) {
                    continue;
                }
                let ty = self.f.ty(v);
                let r = self.reg_of(v);
                let ins = if ty == IrTy::Float {
                    Instr::FMov { dst: r, src: dr }
                } else {
                    Instr::Mov { dst: r, src: dr }
                };
                buf.push(Emitted { ins, deletable: true, fixup: None });
            }
            rename.remove(&d);
            store.remove(&d);
        }

        match inst {
            Inst::ConstI { dst, v } => {
                // A constant assigned to a dynamic variable.
                if self.cfg.zero_copy_propagation {
                    rename.insert(*dst, Opnd::KI(*v));
                } else {
                    let r = self.reg_of(*dst);
                    buf.push(Emitted {
                        ins: Instr::MovI { dst: r, imm: *v },
                        deletable: true,
                        fixup: None,
                    });
                }
            }
            Inst::ConstF { dst, v } => {
                if self.cfg.zero_copy_propagation {
                    rename.insert(*dst, Opnd::KF(*v));
                } else {
                    let r = self.reg_of(*dst);
                    buf.push(Emitted {
                        ins: Instr::MovF { dst: r, imm: *v },
                        deletable: true,
                        fixup: None,
                    });
                }
            }
            Inst::Copy { dst, src: _ } => {
                match ops[0] {
                    Opnd::R(sr) => {
                        let r = self.reg_of(*dst);
                        if sr == r {
                            // Self-move after a fold collapsed the chain.
                        } else if self.cfg.zero_copy_propagation {
                            // Staged dynamic copy propagation (§2.2.7):
                            // downstream references read the source
                            // directly; the move only materializes if the
                            // variable is still live at the unit boundary.
                            rt.stats.zero_copy_folds += 1;
                            rename.insert(*dst, Opnd::R(sr));
                        } else {
                            let ins = if self.f.ty(*dst) == IrTy::Float {
                                Instr::FMov { dst: r, src: sr }
                            } else {
                                Instr::Mov { dst: r, src: sr }
                            };
                            buf.push(Emitted { ins, deletable: true, fixup: None });
                        }
                    }
                    k => {
                        if self.cfg.zero_copy_propagation {
                            rt.stats.zero_copy_folds += 1;
                            rename.insert(*dst, k);
                        } else {
                            let r = self.reg_of(*dst);
                            buf.push(Emitted {
                                ins: mov_const(r, opnd_value(k)),
                                deletable: true,
                                fixup: None,
                            });
                        }
                    }
                }
            }
            Inst::IBin { op, dst, .. } => {
                self.emit_ibin(*op, *dst, ops[0], ops[1], rename, scratch, buf, rt);
            }
            Inst::FBin { op, dst, .. } => {
                self.emit_fbin(*op, *dst, ops[0], ops[1], rename, scratch, buf, rt);
            }
            Inst::ICmp { cc, dst, .. } => {
                match (ops[0], ops[1]) {
                    (Opnd::KI(x), Opnd::KI(y)) => {
                        self.fold_to(*dst, Opnd::KI(eval_icmp(*cc, x, y) as i64), rename, buf, rt);
                    }
                    (Opnd::R(x), Opnd::KI(y)) => {
                        let r = self.reg_of(*dst);
                        buf.push(Emitted {
                            ins: Instr::ICmp { cc: *cc, dst: r, a: x, b: Operand::Imm(y) },
                            deletable: true,
                            fixup: None,
                        });
                    }
                    (Opnd::KI(x), Opnd::R(y)) => {
                        let r = self.reg_of(*dst);
                        buf.push(Emitted {
                            ins: Instr::ICmp {
                                cc: cc.swapped(),
                                dst: r,
                                a: y,
                                b: Operand::Imm(x),
                            },
                            deletable: true,
                            fixup: None,
                        });
                    }
                    (x, y) => {
                        let xr = self.opnd_reg(x, scratch, buf);
                        let yr = self.opnd_reg(y, scratch, buf);
                        let r = self.reg_of(*dst);
                        buf.push(Emitted {
                            ins: Instr::ICmp { cc: *cc, dst: r, a: xr, b: Operand::Reg(yr) },
                            deletable: true,
                            fixup: None,
                        });
                    }
                }
            }
            Inst::FCmp { cc, dst, .. } => {
                let (ra, rb) = (ops[0], ops[1]);
                if let (Opnd::KF(x), Opnd::KF(y)) = (ra, rb) {
                    self.fold_to(*dst, Opnd::KI(eval_fcmp(*cc, x, y) as i64), rename, buf, rt);
                } else {
                    let xr = self.opnd_reg(ra, scratch, buf);
                    let yr = self.opnd_reg(rb, scratch, buf);
                    let r = self.reg_of(*dst);
                    buf.push(Emitted {
                        ins: Instr::FCmp { cc: *cc, dst: r, a: xr, b: yr },
                        deletable: true,
                        fixup: None,
                    });
                }
            }
            Inst::Un { op, dst, src: _ } => {
                match ops[0] {
                    Opnd::R(sr) => {
                        let r = self.reg_of(*dst);
                        buf.push(Emitted {
                            ins: Instr::Un { op: *op, dst: r, src: sr },
                            deletable: true,
                            fixup: None,
                        });
                    }
                    k => {
                        let folded = eval_un(*op, opnd_value(k));
                        self.fold_to(*dst, value_opnd(folded), rename, buf, rt);
                    }
                }
            }
            Inst::Load { ty, dst, .. } => {
                let (breg, iop) = match (ops[0], ops[1]) {
                    (Opnd::KI(bv), Opnd::KI(iv)) => {
                        // Address fully known but contents dynamic: fold
                        // the whole address into the offset of a load from
                        // a zero base materialized once per unit.
                        let z = self.reg_for_const(Value::I(0), scratch, buf);
                        (z, Operand::Imm(bv + iv))
                    }
                    (Opnd::KI(bv), other) => {
                        let ir = self.opnd_reg(other, scratch, buf);
                        (ir, Operand::Imm(bv))
                    }
                    (other, Opnd::KI(iv)) => {
                        let br = self.opnd_reg(other, scratch, buf);
                        (br, Operand::Imm(iv))
                    }
                    (ob, oi) => {
                        let br = self.opnd_reg(ob, scratch, buf);
                        let ir = self.opnd_reg(oi, scratch, buf);
                        (br, Operand::Reg(ir))
                    }
                };
                let r = self.reg_of(*dst);
                buf.push(Emitted {
                    ins: Instr::Load { ty: ty.vm_ty(), dst: r, base: breg, idx: iop },
                    deletable: true,
                    fixup: None,
                });
            }
            Inst::Store { ty, .. } => {
                let sr = self.opnd_reg(ops[2], scratch, buf);
                let (breg, iop) = match (ops[0], ops[1]) {
                    (Opnd::KI(bv), Opnd::KI(iv)) => {
                        let z = self.reg_for_const(Value::I(0), scratch, buf);
                        (z, Operand::Imm(bv + iv))
                    }
                    (Opnd::KI(bv), other) => (self.opnd_reg(other, scratch, buf), Operand::Imm(bv)),
                    (other, Opnd::KI(iv)) => (self.opnd_reg(other, scratch, buf), Operand::Imm(iv)),
                    (ob, oi) => {
                        let br = self.opnd_reg(ob, scratch, buf);
                        let ir = self.opnd_reg(oi, scratch, buf);
                        (br, Operand::Reg(ir))
                    }
                };
                buf.push(Emitted {
                    ins: Instr::Store { ty: ty.vm_ty(), base: breg, idx: iop, src: sr },
                    deletable: false,
                    fixup: None,
                });
            }
            Inst::Call { callee, dst, .. } => {
                let arg_regs: Vec<Reg> =
                    ops.iter().map(|o| self.opnd_reg(*o, scratch, buf)).collect();
                let d = dst.map(|d| self.reg_of(d));
                let ins = match callee {
                    Callee::Func { index, .. } => {
                        Instr::Call { func: FuncId(*index as u32), dst: d, args: arg_regs }
                    }
                    Callee::Host(h) => Instr::CallHost { f: *h, dst: d, args: arg_regs },
                };
                buf.push(Emitted { ins, deletable: false, fixup: None });
            }
            _ => unreachable!("annotations handled by the caller"),
        }
    }

    /// Record a value-dependent fold: with zero/copy propagation the
    /// destination is renamed (no code); otherwise the value is emitted as
    /// a constant move.
    fn fold_to(
        &mut self,
        dst: VReg,
        k: Opnd,
        rename: &mut HashMap<VReg, Opnd>,
        buf: &mut Vec<Emitted>,
        rt: &mut Runtime,
    ) {
        if self.cfg.zero_copy_propagation {
            rt.stats.zero_copy_folds += 1;
            rename.insert(dst, k);
        } else {
            let r = self.reg_of(dst);
            buf.push(Emitted { ins: mov_const(r, opnd_value(k)), deletable: true, fixup: None });
        }
    }

    fn opnd_reg(
        &mut self,
        o: Opnd,
        scratch: &mut HashMap<u64, Reg>,
        buf: &mut Vec<Emitted>,
    ) -> Reg {
        match o {
            Opnd::R(r) => r,
            Opnd::KI(v) => self.reg_for_const(Value::I(v), scratch, buf),
            Opnd::KF(v) => self.reg_for_const(Value::F(v), scratch, buf),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_ibin(
        &mut self,
        op: IAluOp,
        dst: VReg,
        ra: Opnd,
        rb: Opnd,
        rename: &mut HashMap<VReg, Opnd>,
        scratch: &mut HashMap<u64, Reg>,
        buf: &mut Vec<Emitted>,
        rt: &mut Runtime,
    ) {
        self.cycles += rt.costs.opt_check;
        // Both operands known (only possible through renames): fold.
        if let (Opnd::KI(x), Opnd::KI(y)) = (ra, rb) {
            if let Ok(v) = eval_ialu(op, x, y) {
                self.fold_to(dst, Opnd::KI(v), rename, buf, rt);
                return;
            }
        }
        // Normalize: put a known operand of a commutative op on the right.
        let (ra, rb) = match (op, ra, rb) {
            (IAluOp::Add | IAluOp::Mul | IAluOp::And | IAluOp::Or | IAluOp::Xor, Opnd::KI(_), _) => {
                (rb, ra)
            }
            _ => (ra, rb),
        };

        if let Opnd::KI(k) = rb {
            if self.cfg.zero_copy_propagation {
                let fold = match op {
                    IAluOp::Mul if k == 0 => Some(Opnd::KI(0)),
                    IAluOp::Mul | IAluOp::Div if k == 1 => Some(ra),
                    IAluOp::Add | IAluOp::Sub | IAluOp::Or | IAluOp::Xor if k == 0 => Some(ra),
                    IAluOp::And if k == 0 => Some(Opnd::KI(0)),
                    IAluOp::Rem if k == 1 => Some(Opnd::KI(0)),
                    IAluOp::Shl | IAluOp::Shr if k == 0 => Some(ra),
                    _ => None,
                };
                if let Some(f) = fold {
                    rt.stats.zero_copy_folds += 1;
                    if self.cfg.zero_copy_propagation {
                        rename.insert(dst, f);
                    }
                    return;
                }
            } else if self.cfg.strength_reduction {
                // Strength reduction alone still replaces the operation
                // with a cheaper one, but must write the destination.
                let simple = match op {
                    IAluOp::Mul if k == 0 => Some(mov_const(self.reg_of(dst), Value::I(0))),
                    IAluOp::Mul | IAluOp::Div if k == 1 => {
                        let ar = self.opnd_reg(ra, scratch, buf);
                        Some(Instr::Mov { dst: self.reg_of(dst), src: ar })
                    }
                    _ => None,
                };
                if let Some(ins) = simple {
                    rt.stats.strength_reductions += 1;
                    buf.push(Emitted { ins, deletable: true, fixup: None });
                    return;
                }
            }
            if self.cfg.strength_reduction && k > 1 && (k as u64).is_power_of_two() {
                let n = k.trailing_zeros() as i64;
                match op {
                    IAluOp::Mul => {
                        rt.stats.strength_reductions += 1;
                        let ar = self.opnd_reg(ra, scratch, buf);
                        let r = self.reg_of(dst);
                        buf.push(Emitted {
                            ins: Instr::IAlu { op: IAluOp::Shl, dst: r, a: ar, b: Operand::Imm(n) },
                            deletable: true,
                            fixup: None,
                        });
                        return;
                    }
                    IAluOp::Div => {
                        rt.stats.strength_reductions += 1;
                        let ar = self.opnd_reg(ra, scratch, buf);
                        let r = self.reg_of(dst);
                        self.emit_div_pow2(ar, k, n, r, buf);
                        return;
                    }
                    IAluOp::Rem => {
                        rt.stats.strength_reductions += 1;
                        let ar = self.opnd_reg(ra, scratch, buf);
                        let q = self.fresh_reg();
                        self.emit_div_pow2(ar, k, n, q, buf);
                        let t = self.fresh_reg();
                        let r = self.reg_of(dst);
                        buf.push(Emitted {
                            ins: Instr::IAlu { op: IAluOp::Shl, dst: t, a: q, b: Operand::Imm(n) },
                            deletable: true,
                            fixup: None,
                        });
                        buf.push(Emitted {
                            ins: Instr::IAlu {
                                op: IAluOp::Sub,
                                dst: r,
                                a: ar,
                                b: Operand::Reg(t),
                            },
                            deletable: true,
                            fixup: None,
                        });
                        return;
                    }
                    _ => {}
                }
            }
            // Hole fits the immediate field.
            let ar = self.opnd_reg(ra, scratch, buf);
            let r = self.reg_of(dst);
            buf.push(Emitted {
                ins: Instr::IAlu { op, dst: r, a: ar, b: Operand::Imm(k) },
                deletable: true,
                fixup: None,
            });
            return;
        }
        // Known left operand of a non-commutative op, or both registers.
        let ar = self.opnd_reg(ra, scratch, buf);
        let br = match rb {
            Opnd::R(r) => Operand::Reg(r),
            k => Operand::Reg(self.opnd_reg(k, scratch, buf)),
        };
        let r = self.reg_of(dst);
        buf.push(Emitted { ins: Instr::IAlu { op, dst: r, a: ar, b: br }, deletable: true, fixup: None });
    }

    /// Truncating (C-semantics) signed division by a power of two:
    /// bias negative dividends before shifting.
    fn emit_div_pow2(&mut self, a: Reg, k: i64, n: i64, dst: Reg, buf: &mut Vec<Emitted>) {
        let sign = self.fresh_reg();
        let bias = self.fresh_reg();
        let sum = self.fresh_reg();
        buf.push(Emitted {
            ins: Instr::IAlu { op: IAluOp::Shr, dst: sign, a, b: Operand::Imm(63) },
            deletable: true,
            fixup: None,
        });
        buf.push(Emitted {
            ins: Instr::IAlu { op: IAluOp::And, dst: bias, a: sign, b: Operand::Imm(k - 1) },
            deletable: true,
            fixup: None,
        });
        buf.push(Emitted {
            ins: Instr::IAlu { op: IAluOp::Add, dst: sum, a, b: Operand::Reg(bias) },
            deletable: true,
            fixup: None,
        });
        buf.push(Emitted {
            ins: Instr::IAlu { op: IAluOp::Shr, dst, a: sum, b: Operand::Imm(n) },
            deletable: true,
            fixup: None,
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_fbin(
        &mut self,
        op: FAluOp,
        dst: VReg,
        ra: Opnd,
        rb: Opnd,
        rename: &mut HashMap<VReg, Opnd>,
        scratch: &mut HashMap<u64, Reg>,
        buf: &mut Vec<Emitted>,
        rt: &mut Runtime,
    ) {
        self.cycles += rt.costs.opt_check;
        if let (Opnd::KF(x), Opnd::KF(y)) = (ra, rb) {
            self.fold_to(dst, Opnd::KF(eval_falu(op, x, y)), rename, buf, rt);
            return;
        }
        let (ra, rb) = match (op, ra, rb) {
            (FAluOp::Add | FAluOp::Mul, Opnd::KF(_), _) => (rb, ra),
            _ => (ra, rb),
        };
        if let Opnd::KF(k) = rb {
            if self.cfg.zero_copy_propagation {
                // Dynamic zero and copy propagation (§2.2.7). Folding
                // x*0.0 to 0.0 assumes x is finite, the same assumption
                // DyC makes.
                let fold = match op {
                    FAluOp::Mul if k == 0.0 => Some(Opnd::KF(0.0)),
                    FAluOp::Mul | FAluOp::Div if k == 1.0 => Some(ra),
                    FAluOp::Add | FAluOp::Sub if k == 0.0 => Some(ra),
                    _ => None,
                };
                if let Some(f) = fold {
                    rt.stats.zero_copy_folds += 1;
                    rename.insert(dst, f);
                    return;
                }
            } else if self.cfg.strength_reduction {
                // Strength reduction without copy propagation: the
                // multiply becomes a move — which costs the same as the
                // multiply on the 21164 (§2.2.7), so no benefit accrues.
                let simple = match op {
                    FAluOp::Mul if k == 1.0 => {
                        let ar = self.opnd_reg(ra, scratch, buf);
                        Some(Instr::FMov { dst: self.reg_of(dst), src: ar })
                    }
                    FAluOp::Mul if k == 0.0 => {
                        Some(Instr::MovF { dst: self.reg_of(dst), imm: 0.0 })
                    }
                    FAluOp::Add | FAluOp::Sub if k == 0.0 => {
                        let ar = self.opnd_reg(ra, scratch, buf);
                        Some(Instr::FMov { dst: self.reg_of(dst), src: ar })
                    }
                    _ => None,
                };
                if let Some(ins) = simple {
                    rt.stats.strength_reductions += 1;
                    buf.push(Emitted { ins, deletable: true, fixup: None });
                    return;
                }
            }
        }
        let ar = self.opnd_reg(ra, scratch, buf);
        let br = self.opnd_reg(rb, scratch, buf);
        let r = self.reg_of(dst);
        buf.push(Emitted {
            ins: Instr::FAlu { op, dst: r, a: ar, b: br },
            deletable: true,
            fixup: None,
        });
    }
}

fn mov_const(dst: Reg, v: Value) -> Instr {
    match v {
        Value::I(i) => Instr::MovI { dst, imm: i },
        Value::F(f) => Instr::MovF { dst, imm: f },
    }
}

fn opnd_value(o: Opnd) -> Value {
    match o {
        Opnd::KI(v) => Value::I(v),
        Opnd::KF(v) => Value::F(v),
        Opnd::R(_) => unreachable!("not a constant operand"),
    }
}

fn value_opnd(v: Value) -> Opnd {
    match v {
        Value::I(i) => Opnd::KI(i),
        Value::F(f) => Opnd::KF(f),
    }
}

fn eval_un(op: UnOp, v: Value) -> Value {
    match op {
        UnOp::NegI => Value::I(v.as_i().wrapping_neg()),
        UnOp::NotI => Value::I(!v.as_i()),
        UnOp::NegF => Value::F(-v.as_f()),
        UnOp::IToF => Value::F(v.as_i() as f64),
        UnOp::FToI => Value::I(v.as_f() as i64),
    }
}

fn eval_ialu(op: IAluOp, a: i64, b: i64) -> Result<i64, VmError> {
    Ok(match op {
        IAluOp::Add => a.wrapping_add(b),
        IAluOp::Sub => a.wrapping_sub(b),
        IAluOp::Mul => a.wrapping_mul(b),
        IAluOp::Div => {
            if b == 0 {
                return Err(VmError::Dispatch(
                    "static division by zero during specialization".into(),
                ));
            }
            a.wrapping_div(b)
        }
        IAluOp::Rem => {
            if b == 0 {
                return Err(VmError::Dispatch(
                    "static remainder by zero during specialization".into(),
                ));
            }
            a.wrapping_rem(b)
        }
        IAluOp::And => a & b,
        IAluOp::Or => a | b,
        IAluOp::Xor => a ^ b,
        IAluOp::Shl => a.wrapping_shl(b as u32 & 63),
        IAluOp::Shr => a.wrapping_shr(b as u32 & 63),
    })
}

fn eval_falu(op: FAluOp, a: f64, b: f64) -> f64 {
    match op {
        FAluOp::Add => a + b,
        FAluOp::Sub => a - b,
        FAluOp::Mul => a * b,
        FAluOp::Div => a / b,
    }
}

fn eval_icmp(cc: Cc, a: i64, b: i64) -> bool {
    match cc {
        Cc::Eq => a == b,
        Cc::Ne => a != b,
        Cc::Lt => a < b,
        Cc::Le => a <= b,
        Cc::Gt => a > b,
        Cc::Ge => a >= b,
    }
}

fn eval_fcmp(cc: Cc, a: f64, b: f64) -> bool {
    match cc {
        Cc::Eq => a == b,
        Cc::Ne => a != b,
        Cc::Lt => a < b,
        Cc::Le => a <= b,
        Cc::Gt => a > b,
        Cc::Ge => a >= b,
    }
}
