//! The *online* specializer — the legacy, unstaged generating extension
//! (§2.1), kept as the reference implementation and escape hatch
//! (`OptConfig::staged_ge = false`).
//!
//! Given the concrete values of the promoted variables, this walks the
//! region's IR, **executes the static computations** (including static
//! loads and static calls) against the live VM state, and **emits code**
//! for the dynamic computations, with holes instantiated to immediates or
//! materialized constants. Specialization proceeds in *units* — one block
//! under one static store — memoized by `(program point, live static
//! store)`:
//!
//! * re-reaching a unit emits a jump to the existing code (reconstructing
//!   residual loops);
//! * reaching a loop header with changed static values creates a fresh
//!   unit — **complete loop unrolling**, single-way when the units chain,
//!   multi-way when they form a graph (§2.2.4);
//! * reaching any point with a different static-variable *set* creates a
//!   fresh unit too — **program-point-specific polyvariant division and
//!   specialization** (§2.2.1, §2.2.5).
//!
//! Being online, it re-derives at run time what the staged path
//! ([`crate::ge_exec`]) reads from precompiled GE programs: every
//! instruction's binding time (`inst_binding`), liveness at unit
//! boundaries and promotions, and loop/unroll legality. Those queries are
//! metered as [`crate::RtStats::runtime_bta_calls`] and charged
//! (`classify`, `edge_plan_per_var`) so Table 3 can show what true
//! staging saves. All value-dependent emit work is shared with the
//! staged path via `Emitter`, which is what keeps the
//! two paths' output byte-identical.

use crate::emitter::{mov_const, opnd_value, Emitted, Emitter, Opnd, RegSet};
use crate::runtime::{Runtime, Site, Store};
use dyc_bta::{inst_binding, Binding, OptConfig};
use dyc_ir::analysis::{natural_loops, Liveness, NaturalLoop};
use dyc_ir::inst::{Inst, Term};
use dyc_ir::{BlockId, FuncIr, IrTy, VReg};
use dyc_lang::Policy;
use dyc_stage::live_at_point;
use dyc_vm::{Cc, FuncId, Instr, Module, Operand, Reg, Vm, VmError};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Specialization-unit identity: program point plus live static store.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct UnitKey {
    block: u32,
    start: u32,
    statics: Vec<(u32, u64)>,
}

fn unit_key(block: BlockId, start: usize, store: &Store) -> UnitKey {
    UnitKey {
        block: block.0,
        start: start as u32,
        statics: store.iter().map(|(v, val)| (v.0, val.key_bits())).collect(),
    }
}

/// The online generating-extension executor. See module docs.
pub(crate) struct Specializer {
    f: FuncIr,
    live: Liveness,
    static_in: Vec<BTreeSet<VReg>>,
    loop_assigned: HashMap<BlockId, BTreeSet<VReg>>,
    unroll_exit_deps: HashMap<BlockId, Vec<BTreeSet<VReg>>>,
    unroll_keep: HashMap<BlockId, BTreeSet<VReg>>,
    policies: HashMap<VReg, Policy>,
    loops: Vec<NaturalLoop>,
    loop_headers: HashSet<BlockId>,
    cfg: OptConfig,
    fidx: usize,

    em: Emitter<UnitKey>,
    worklist: Vec<(u32, Store)>,
    budget: u64,
    /// Program point `(block, start)` of each interned unit id.
    unit_point: Vec<(u32, u32)>,
    // Instrumentation.
    header_units: HashMap<BlockId, HashSet<u32>>,
    /// The emitted unit graph: every control edge between specialization
    /// units. Analyzed afterwards to classify unrolled loops as single-way
    /// (a chain of bodies) or multi-way (a tree or general graph, §2.2.4).
    unit_edges: Vec<(u32, u32)>,
    /// Unit currently being emitted (source of recorded edges).
    cur_unit: Option<u32>,
    /// Distinct static-variable *sets* (divisions) seen per block.
    division_sets: HashMap<BlockId, HashSet<Vec<u32>>>,
}

impl Specializer {
    /// Specialize `site` for the given store and install nothing — the
    /// caller installs the returned function.
    pub(crate) fn run(
        rt: &mut Runtime,
        site: &Site,
        store: Store,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<FuncId, VmError> {
        let f = rt.staged.ir.funcs[site.func].clone();
        let sf = &rt.staged.funcs[site.func];
        // An online loop analysis per specialization request: the first of
        // this run's run-time analysis costs.
        let loops = natural_loops(&f);
        rt.stats.runtime_bta_calls += 1;
        let float_vreg: Vec<bool> = (0..f.n_vregs())
            .map(|i| f.ty(VReg(i as u32)) == IrTy::Float)
            .collect();
        let mut spec = Specializer {
            live: sf.live.clone(),
            static_in: sf.bta.static_in.clone(),
            loop_assigned: sf.bta.loop_assigned.clone(),
            unroll_exit_deps: sf.bta.unroll_exit_deps.clone(),
            unroll_keep: sf.bta.unroll_keep_opt.clone(),
            policies: sf.bta.policies.clone(),
            loop_headers: loops.iter().map(|l| l.header).collect(),
            loops,
            cfg: rt.staged.cfg,
            fidx: site.func,
            em: Emitter::new(rt.staged.cfg, float_vreg),
            worklist: Vec::new(),
            budget: rt.spec_budget,
            unit_point: Vec::new(),
            header_units: HashMap::new(),
            unit_edges: Vec::new(),
            cur_unit: None,
            division_sets: HashMap::new(),
            f,
        };

        // Dynamic pass-through parameters, in arg order.
        let dyn_params: Vec<VReg> = site
            .arg_vars
            .iter()
            .filter(|v| !store.contains_key(v))
            .copied()
            .collect();
        for (i, v) in dyn_params.iter().enumerate() {
            spec.em.set_reg(*v, i as u32);
        }
        spec.em.next_reg = dyn_params.len() as u32;

        let entry = spec.unit_id(site.block, site.inst_idx, &store);
        spec.worklist.push((entry, store));
        while let Some((id, st)) = spec.worklist.pop() {
            if spec.em.sealed(id) {
                continue;
            }
            spec.emit_chain(id, st, rt, module, vm)?;
        }

        // Patch branch targets.
        spec.em.patch_fixups(&rt.costs);

        // Loop-unrolling instrumentation: classify each unrolled loop from
        // the emitted unit graph.
        for (h, units) in &spec.header_units {
            if units.len() < 2 {
                continue;
            }
            rt.stats.loops_unrolled += 1;
            if spec.loop_is_multiway(*h, units) {
                rt.stats.multi_way_unroll = true;
            }
        }

        rt.stats.divisions_observed +=
            spec.division_sets.values().filter(|s| s.len() >= 2).count() as u64;
        rt.stats.instrs_generated += spec.em.emitted() as u64;
        rt.stats.ge_exec_cycles += spec.em.exec_cycles;
        rt.stats.emit_cycles += spec.em.emit_cycles;
        let cycles = spec.em.total_cycles();
        rt.charge(vm, cycles);

        let name = format!("{}$spec{}", spec.f.name, module.len());
        let mut cf =
            dyc_vm::CodeFunc::new(name, dyn_params.len(), spec.em.next_reg.max(1) as usize);
        cf.code = spec.em.take_code();
        Ok(module.add_func(cf))
    }

    /// Intern the unit `(block, start, store)`, recording its program
    /// point on first sight.
    fn unit_id(&mut self, block: BlockId, start: usize, store: &Store) -> u32 {
        let key = unit_key(block, start, store);
        let id = self.em.intern(&key);
        if id as usize == self.unit_point.len() {
            self.unit_point.push((key.block, key.start));
        }
        id
    }

    fn block_of(&self, id: u32) -> BlockId {
        BlockId(self.unit_point[id as usize].0)
    }

    /// Emit a chain of units starting at `id`, tail-continuing through
    /// unconditional successors that are not yet emitted.
    fn emit_chain(
        &mut self,
        id: u32,
        store: Store,
        rt: &mut Runtime,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<(), VmError> {
        let mut cur = Some((id, store));
        while let Some((id, store)) = cur.take() {
            if self.em.sealed(id) {
                break;
            }
            if self.em.emitted() as u64 > self.budget {
                return Err(VmError::Dispatch(
                    "specialization exceeded its instruction budget (non-terminating static control flow?)"
                        .into(),
                ));
            }
            let block = self.block_of(id);
            if self.loop_headers.contains(&block) && !store.is_empty() {
                self.header_units.entry(block).or_default().insert(id);
            }
            // Polyvariant division: the same point analyzed/compiled under
            // different static-variable *sets* (§2.2.5).
            let var_set: Vec<u32> = store.keys().map(|v| v.0).collect();
            self.division_sets.entry(block).or_default().insert(var_set);
            cur = self.emit_unit(id, store, rt, module, vm)?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn emit_unit(
        &mut self,
        id: u32,
        mut store: Store,
        rt: &mut Runtime,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<Option<(u32, Store)>, VmError> {
        let (block, start) = self.unit_point[id as usize];
        let (block, start) = (BlockId(block), start as usize);
        self.cur_unit = Some(id);
        let mut rename: HashMap<VReg, Opnd> = HashMap::new();
        let mut scratch: HashMap<u64, Reg> = HashMap::new();
        let mut buf: Vec<Emitted> = Vec::new();
        let costs = rt.costs;
        self.em.exec_cycles += costs.per_unit;
        rt.stats.units_emitted += 1;

        let n_insts = self.f.block(block).insts.len();
        let mut promotion: Option<(usize, Vec<VReg>)> = None;
        let mut i = start;
        while i < n_insts {
            let inst = self.f.block(block).insts[i].clone();
            if matches!(
                inst,
                Inst::MakeStatic { .. } | Inst::Promote { .. } | Inst::MakeDynamic { .. }
            ) {
                // The online walk inspects annotation directives at run
                // time (store-membership checks, demotions) — per-region
                // work the staged path precompiles into its op tables.
                self.em.exec_cycles += costs.classify;
            }
            match &inst {
                Inst::MakeStatic { vars } => {
                    let missing: Vec<VReg> = vars
                        .iter()
                        .map(|(v, _)| *v)
                        .filter(|v| !store.contains_key(v))
                        .collect();
                    if !missing.is_empty() && self.cfg.internal_promotions {
                        promotion = Some((i, missing));
                        break;
                    }
                    // Already static (or promotions disabled): no-op.
                }
                Inst::Promote { var } => {
                    if !store.contains_key(var) && self.cfg.internal_promotions {
                        promotion = Some((i, vec![*var]));
                        break;
                    }
                }
                Inst::MakeDynamic { vars } => {
                    for v in vars {
                        if let Some(val) = store.remove(v) {
                            // The value crosses into run time: materialize.
                            let r = self.em.reg_of(*v);
                            buf.push(Emitted {
                                ins: mov_const(r, val),
                                deletable: true,
                                fixup: None,
                                templated: false,
                                patches: 0,
                                shape: 0,
                            });
                        }
                    }
                }
                _ => {
                    // Online binding-time classification: the run-time
                    // analysis cost the staged path precompiles away.
                    rt.stats.runtime_bta_calls += 1;
                    self.em.exec_cycles += costs.classify;
                    let is_static = |v: VReg| store.contains_key(&v);
                    match inst_binding(&inst, &is_static, &self.cfg) {
                        Binding::Static => {
                            self.em.exec_static(
                                &inst,
                                &mut store,
                                &mut rename,
                                &costs,
                                &mut rt.stats,
                                module,
                                vm,
                            )?;
                        }
                        Binding::Dynamic => {
                            let (f, live) = (&self.f, &self.live);
                            let rl = |v: VReg| read_later(f, live, block, i, v);
                            self.em.emit_dynamic(
                                &inst,
                                &rl,
                                &mut store,
                                &mut rename,
                                &mut scratch,
                                &mut buf,
                                &costs,
                                &mut rt.stats,
                            );
                        }
                        Binding::Annotation => unreachable!("annotations handled above"),
                    }
                }
            }
            i += 1;
        }

        // Regs that must survive the unit (for dead-assignment elimination).
        let mut live_regs = RegSet::new();
        let mut chain: Option<(u32, Store)> = None;

        if let Some((idx, missing)) = promotion {
            // Internal dynamic-to-static promotion: end the unit with a
            // dispatch that resumes specialization once the values are
            // known (§2.2.2). Another run-time liveness query.
            rt.stats.runtime_bta_calls += 1;
            let live_here = live_at_point(&self.f, &self.live, block, idx);
            let live_set: BTreeSet<VReg> = live_here.iter().copied().collect();
            self.em
                .flush_renames(&mut rename, &mut buf, |v| live_set.contains(&v), None);
            let base_store: Store = store
                .iter()
                .filter(|(v, _)| live_here.contains(v))
                .map(|(v, val)| (*v, *val))
                .collect();
            let arg_vars: Vec<VReg> = live_here
                .iter()
                .filter(|v| !store.contains_key(v))
                .copied()
                .collect();
            let policy = dyc_stage::site_policy(
                &self.cfg,
                missing
                    .iter()
                    .map(|v| self.policies.get(v).copied().unwrap_or(Policy::CacheAll)),
                missing.len(),
            );
            let site_id = rt.add_site(Site {
                func: self.fidx,
                block,
                inst_idx: idx,
                base_store,
                key_vars: missing,
                arg_vars: arg_vars.clone(),
                policy,
                division: None,
                key_pos: Vec::new(),
                dyn_pos: Vec::new(),
            });
            self.em.exec_cycles += costs.new_site;
            let args: Vec<Reg> = arg_vars.iter().map(|v| self.em.reg_of(*v)).collect();
            for r in &args {
                live_regs.insert(*r);
            }
            let dst = self.f.ret_ty.map(|_| self.em.fresh_reg());
            buf.push(Emitted {
                ins: Instr::Dispatch {
                    point: site_id,
                    dst,
                    args,
                },
                deletable: false,
                fixup: None,
                templated: false,
                patches: 0,
                shape: 0,
            });
            buf.push(Emitted {
                ins: Instr::Ret { src: dst },
                deletable: false,
                fixup: None,
                templated: false,
                patches: 0,
                shape: 0,
            });
        } else {
            // Terminator.
            let term = self.f.block(block).term.clone();
            let live_out = self.live.live_out[block.index()].clone();
            let term_uses: BTreeSet<VReg> = term.uses().into_iter().collect();
            self.em.flush_renames(
                &mut rename,
                &mut buf,
                |v| live_out.contains(&v) || term_uses.contains(&v),
                Some(&mut live_regs),
            );
            // Every dynamic variable live out of the block must survive
            // the unit's dead-assignment sweep: later units read it.
            let mut live_out_sorted: Vec<VReg> = live_out.iter().copied().collect();
            live_out_sorted.sort();
            for v in live_out_sorted {
                if !store.contains_key(&v) {
                    let r = self.em.reg_of(v);
                    live_regs.insert(r);
                }
            }
            match term {
                Term::Jmp(t) => {
                    chain = self.take_edge(t, &store, &mut buf, &mut live_regs, rt);
                }
                Term::Br { cond, t, f: fb } => {
                    match self.em.resolve(cond, &store, &rename) {
                        Opnd::KI(v) => {
                            rt.stats.branches_folded += 1;
                            let target = if v != 0 { t } else { fb };
                            chain = self.take_edge(target, &store, &mut buf, &mut live_regs, rt);
                        }
                        Opnd::KF(v) => {
                            rt.stats.branches_folded += 1;
                            let target = if v != 0.0 { t } else { fb };
                            chain = self.take_edge(target, &store, &mut buf, &mut live_regs, rt);
                        }
                        Opnd::R(r) => {
                            live_regs.insert(r);
                            // Demote for both successors before branching.
                            let (id_t, store_t) =
                                self.edge_unit(t, &store, &mut buf, &mut live_regs, rt);
                            let (id_f, store_f) =
                                self.edge_unit(fb, &store, &mut buf, &mut live_regs, rt);
                            // Branch to the true side; fall through to false.
                            buf.push(Emitted {
                                ins: Instr::Brnz { cond: r, target: 0 },
                                deletable: false,
                                fixup: Some(id_t),
                                templated: false,
                                patches: 0,
                                shape: 0,
                            });
                            if !self.em.sealed(id_t) {
                                self.worklist.push((id_t, store_t));
                            }
                            if self.em.sealed(id_f) {
                                buf.push(Emitted {
                                    ins: Instr::Jmp { target: 0 },
                                    deletable: false,
                                    fixup: Some(id_f),
                                    templated: false,
                                    patches: 0,
                                    shape: 0,
                                });
                            } else {
                                chain = Some((id_f, store_f));
                            }
                        }
                    }
                }
                Term::Switch { on, cases, default } => match self.em.resolve(on, &store, &rename) {
                    Opnd::KI(v) => {
                        rt.stats.branches_folded += 1;
                        let target = cases
                            .iter()
                            .find_map(|(k, b)| (*k == v).then_some(*b))
                            .unwrap_or(default);
                        chain = self.take_edge(target, &store, &mut buf, &mut live_regs, rt);
                    }
                    Opnd::KF(_) => unreachable!("switch scrutinee is int"),
                    Opnd::R(r) => {
                        live_regs.insert(r);
                        let tmp = self.em.fresh_reg();
                        for (k, target) in &cases {
                            let (cid, st) =
                                self.edge_unit(*target, &store, &mut buf, &mut live_regs, rt);
                            buf.push(Emitted {
                                ins: Instr::ICmp {
                                    cc: Cc::Eq,
                                    dst: tmp,
                                    a: r,
                                    b: Operand::Imm(*k),
                                },
                                deletable: false,
                                fixup: None,
                                templated: false,
                                patches: 0,
                                shape: 0,
                            });
                            buf.push(Emitted {
                                ins: Instr::Brnz {
                                    cond: tmp,
                                    target: 0,
                                },
                                deletable: false,
                                fixup: Some(cid),
                                templated: false,
                                patches: 0,
                                shape: 0,
                            });
                            if !self.em.sealed(cid) {
                                self.worklist.push((cid, st));
                            }
                        }
                        let (id_d, store_d) =
                            self.edge_unit(default, &store, &mut buf, &mut live_regs, rt);
                        if self.em.sealed(id_d) {
                            buf.push(Emitted {
                                ins: Instr::Jmp { target: 0 },
                                deletable: false,
                                fixup: Some(id_d),
                                templated: false,
                                patches: 0,
                                shape: 0,
                            });
                        } else {
                            chain = Some((id_d, store_d));
                        }
                    }
                },
                Term::Ret(v) => {
                    let src = v.map(|v| match self.em.resolve(v, &store, &rename) {
                        Opnd::R(r) => r,
                        k => {
                            let r = self.em.fresh_reg();
                            buf.push(Emitted {
                                ins: mov_const(r, opnd_value(k)),
                                deletable: false,
                                fixup: None,
                                templated: false,
                                patches: 0,
                                shape: 0,
                            });
                            r
                        }
                    });
                    if let Some(r) = src {
                        live_regs.insert(r);
                    }
                    buf.push(Emitted {
                        ins: Instr::Ret { src },
                        deletable: false,
                        fixup: None,
                        templated: false,
                        patches: 0,
                        shape: 0,
                    });
                }
            }
        }

        // Dynamic dead-assignment elimination + append (§2.2.7).
        self.em.seal_unit(id, buf, live_regs, &costs, &mut rt.stats);
        Ok(chain)
    }

    /// Compute the successor unit for `target`, materializing demoted
    /// statics into registers before the transfer. Every per-variable
    /// decision here is a run-time liveness/division/unroll query the
    /// staged path precompiles into an `EdgePlan`.
    fn edge_unit(
        &mut self,
        target: BlockId,
        store: &Store,
        buf: &mut Vec<Emitted>,
        live_regs: &mut RegSet,
        rt: &mut Runtime,
    ) -> (u32, Store) {
        rt.stats.runtime_bta_calls += store.len() as u64;
        self.em.exec_cycles += rt.costs.edge_plan_per_var * store.len() as u64;
        let live_in = self.live.live_in[target.index()].clone();
        let mut out = Store::new();
        for (v, val) in store {
            if !live_in.contains(v) {
                continue; // dead static: drop from the key (§4.4.3)
            }
            let mut keep = true;
            if !self.cfg.polyvariant_division && !self.static_in[target.index()].contains(v) {
                keep = false;
            }
            // Demote loop-varying statics at loop headers unless they are
            // static induction variables of a loop that unrolls *in this
            // division*: unrolling must be driven by static control flow
            // or it never terminates (§2.1's "loops [that] have static
            // induction variables ... can therefore be completely
            // unrolled"). A loop unrolls in this division iff some exit
            // test's header-live dependencies are all in the current
            // static store — that is what makes conditional
            // specialization (§2.2.5) work: the guarded division unrolls,
            // the unguarded one keeps a residual loop.
            if let Some(assigned) = self.loop_assigned.get(&target) {
                if assigned.contains(v) {
                    let unrolls_here = self.unroll_exit_deps.get(&target).is_some_and(|deps| {
                        deps.iter().any(|d| d.iter().all(|x| store.contains_key(x)))
                    });
                    let kept = unrolls_here
                        && self.unroll_keep.get(&target).is_some_and(|k| k.contains(v));
                    if !kept {
                        keep = false;
                    }
                }
            }
            if keep {
                out.insert(*v, *val);
            } else {
                // Demotion: the value crosses into run time here.
                let r = self.em.reg_of(*v);
                buf.push(Emitted {
                    ins: mov_const(r, *val),
                    deletable: true,
                    fixup: None,
                    templated: false,
                    patches: 0,
                    shape: 0,
                });
                live_regs.insert(r);
            }
        }
        let id = self.unit_id(target, 0, &out);
        if let Some(from) = self.cur_unit {
            self.unit_edges.push((from, id));
        }
        (id, out)
    }

    /// Take an unconditional edge: tail-continue if the target is fresh,
    /// emit a jump otherwise.
    fn take_edge(
        &mut self,
        target: BlockId,
        store: &Store,
        buf: &mut Vec<Emitted>,
        live_regs: &mut RegSet,
        rt: &mut Runtime,
    ) -> Option<(u32, Store)> {
        let (id, st) = self.edge_unit(target, store, buf, live_regs, rt);
        if self.em.sealed(id) {
            buf.push(Emitted {
                ins: Instr::Jmp { target: 0 },
                deletable: false,
                fixup: Some(id),
                templated: false,
                patches: 0,
                shape: 0,
            });
            None
        } else {
            Some((id, st))
        }
    }

    /// Classify an unrolled loop as multi-way: some unit of the loop body
    /// can reach two or more distinct header units (a tree, like binary
    /// search), or a header unit is entered from two places (a graph,
    /// like an interpreted guest loop).
    fn loop_is_multiway(&self, header: BlockId, units: &HashSet<u32>) -> bool {
        let Some(l) = self.loops.iter().find(|l| l.header == header) else {
            return false;
        };
        // Adjacency restricted to units whose blocks are in the loop body.
        let mut succs: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut in_deg: HashMap<u32, u32> = HashMap::new();
        for (from, to) in &self.unit_edges {
            if !l.body.contains(&self.block_of(*from)) {
                continue;
            }
            if units.contains(to) {
                *in_deg.entry(*to).or_insert(0) += 1;
            }
            succs.entry(*from).or_default().push(*to);
        }
        if in_deg.values().any(|d| *d >= 2) {
            return true;
        }
        // From each header unit, walk the body without passing through
        // other header units; reaching two of them means divergence.
        for k in units {
            let mut reached: HashSet<u32> = HashSet::new();
            let mut seen: HashSet<u32> = HashSet::new();
            let mut stack: Vec<u32> = vec![*k];
            while let Some(u) = stack.pop() {
                for v in succs.get(&u).map(Vec::as_slice).unwrap_or(&[]) {
                    if !l.body.contains(&self.block_of(*v)) {
                        continue;
                    }
                    if units.contains(v) {
                        reached.insert(*v);
                        continue;
                    }
                    if seen.insert(*v) {
                        stack.push(*v);
                    }
                }
            }
            if reached.len() >= 2 {
                return true;
            }
        }
        false
    }
}

/// Is `v` read by any instruction after `(block, idx)`, by the block's
/// terminator, or live out of the block? (A run-time liveness query; the
/// staged path carries the answer in each `EmitHole`.)
fn read_later(f: &FuncIr, live: &Liveness, block: BlockId, idx: usize, v: VReg) -> bool {
    if live.live_out[block.index()].contains(&v) {
        return true;
    }
    let b = f.block(block);
    if b.term.uses().contains(&v) {
        return true;
    }
    b.insts[idx + 1..].iter().any(|ri| {
        if ri.uses().contains(&v) {
            return true;
        }
        match ri {
            Inst::MakeStatic { vars } => vars.iter().any(|(x, _)| *x == v),
            Inst::MakeDynamic { vars } => vars.contains(&v),
            Inst::Promote { var } => *var == v,
            _ => false,
        }
    })
}
