//! The *online* specializer — the legacy, unstaged generating extension
//! (§2.1), kept as the reference implementation and escape hatch
//! (`OptConfig::staged_ge = false`).
//!
//! Given the concrete values of the promoted variables, this walks the
//! region's IR, **executes the static computations** (including static
//! loads and static calls) against the live VM state, and **emits code**
//! for the dynamic computations, with holes instantiated to immediates or
//! materialized constants. Specialization proceeds in *units* — one block
//! under one static store — memoized by `(program point, live static
//! store)`:
//!
//! * re-reaching a unit emits a jump to the existing code (reconstructing
//!   residual loops);
//! * reaching a loop header with changed static values creates a fresh
//!   unit — **complete loop unrolling**, single-way when the units chain,
//!   multi-way when they form a graph (§2.2.4);
//! * reaching any point with a different static-variable *set* creates a
//!   fresh unit too — **program-point-specific polyvariant division and
//!   specialization** (§2.2.1, §2.2.5).
//!
//! Being online, it re-derives at run time what the staged path
//! ([`crate::ge_exec`]) reads from precompiled GE programs: every
//! instruction's binding time (`inst_binding`), liveness at unit
//! boundaries and promotions, and loop/unroll legality. Those queries are
//! metered as [`crate::RtStats::runtime_bta_calls`] and charged
//! (`classify`, `edge_plan_per_var`) so Table 3 can show what true
//! staging saves. All value-dependent emit work is shared with the
//! staged path via [`crate::emitter::Emitter`], which is what keeps the
//! two paths' output byte-identical.

use crate::emitter::{mov_const, opnd_value, Emitted, Emitter, Opnd};
use crate::runtime::{Runtime, Site, Store};
use dyc_bta::{inst_binding, Binding, OptConfig};
use dyc_ir::analysis::{natural_loops, Liveness, NaturalLoop};
use dyc_ir::inst::{Inst, Term};
use dyc_ir::{BlockId, FuncIr, IrTy, VReg};
use dyc_lang::Policy;
use dyc_stage::live_at_point;
use dyc_vm::{Cc, FuncId, Instr, Module, Operand, Reg, Vm, VmError};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Specialization-unit identity: program point plus live static store.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct UnitKey {
    block: u32,
    start: u32,
    statics: Vec<(u32, u64)>,
}

fn unit_key(block: BlockId, start: usize, store: &Store) -> UnitKey {
    UnitKey {
        block: block.0,
        start: start as u32,
        statics: store.iter().map(|(v, val)| (v.0, val.key_bits())).collect(),
    }
}

/// The online generating-extension executor. See module docs.
pub(crate) struct Specializer {
    f: FuncIr,
    live: Liveness,
    static_in: Vec<BTreeSet<VReg>>,
    loop_assigned: HashMap<BlockId, BTreeSet<VReg>>,
    unroll_exit_deps: HashMap<BlockId, Vec<BTreeSet<VReg>>>,
    unroll_keep: HashMap<BlockId, BTreeSet<VReg>>,
    policies: HashMap<VReg, Policy>,
    loops: Vec<NaturalLoop>,
    loop_headers: HashSet<BlockId>,
    cfg: OptConfig,
    fidx: usize,

    em: Emitter<UnitKey>,
    worklist: Vec<(UnitKey, Store)>,
    budget: u64,
    // Instrumentation.
    header_units: HashMap<BlockId, HashSet<UnitKey>>,
    /// The emitted unit graph: every control edge between specialization
    /// units. Analyzed afterwards to classify unrolled loops as single-way
    /// (a chain of bodies) or multi-way (a tree or general graph, §2.2.4).
    unit_edges: Vec<(UnitKey, UnitKey)>,
    /// Unit currently being emitted (source of recorded edges).
    cur_unit: Option<UnitKey>,
    /// Distinct static-variable *sets* (divisions) seen per block.
    division_sets: HashMap<BlockId, HashSet<Vec<u32>>>,
}

impl Specializer {
    /// Specialize `site` for the given store and install nothing — the
    /// caller installs the returned function.
    pub(crate) fn run(
        rt: &mut Runtime,
        site: &Site,
        store: Store,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<FuncId, VmError> {
        let f = rt.staged.ir.funcs[site.func].clone();
        let sf = &rt.staged.funcs[site.func];
        // An online loop analysis per specialization request: the first of
        // this run's run-time analysis costs.
        let loops = natural_loops(&f);
        rt.stats.runtime_bta_calls += 1;
        let float_vreg: Vec<bool> = (0..f.n_vregs())
            .map(|i| f.ty(VReg(i as u32)) == IrTy::Float)
            .collect();
        let mut spec = Specializer {
            live: sf.live.clone(),
            static_in: sf.bta.static_in.clone(),
            loop_assigned: sf.bta.loop_assigned.clone(),
            unroll_exit_deps: sf.bta.unroll_exit_deps.clone(),
            unroll_keep: sf.bta.unroll_keep_opt.clone(),
            policies: sf.bta.policies.clone(),
            loop_headers: loops.iter().map(|l| l.header).collect(),
            loops,
            cfg: rt.staged.cfg,
            fidx: site.func,
            em: Emitter::new(rt.staged.cfg, float_vreg),
            worklist: Vec::new(),
            budget: rt.spec_budget,
            header_units: HashMap::new(),
            unit_edges: Vec::new(),
            cur_unit: None,
            division_sets: HashMap::new(),
            f,
        };

        // Dynamic pass-through parameters, in arg order.
        let dyn_params: Vec<VReg> = site
            .arg_vars
            .iter()
            .filter(|v| !store.contains_key(v))
            .copied()
            .collect();
        for (i, v) in dyn_params.iter().enumerate() {
            spec.em.set_reg(*v, i as u32);
        }
        spec.em.next_reg = dyn_params.len() as u32;

        let entry = unit_key(site.block, site.inst_idx, &store);
        spec.worklist.push((entry, store));
        while let Some((key, st)) = spec.worklist.pop() {
            if spec.em.labels.contains_key(&key) {
                continue;
            }
            spec.emit_chain(key, st, rt, module, vm)?;
        }

        // Patch branch targets.
        spec.em.patch_fixups(&rt.costs);

        // Loop-unrolling instrumentation: classify each unrolled loop from
        // the emitted unit graph.
        for (h, units) in &spec.header_units {
            if units.len() < 2 {
                continue;
            }
            rt.stats.loops_unrolled += 1;
            if spec.loop_is_multiway(*h, units) {
                rt.stats.multi_way_unroll = true;
            }
        }

        rt.stats.divisions_observed +=
            spec.division_sets.values().filter(|s| s.len() >= 2).count() as u64;
        rt.stats.instrs_generated += spec.em.code.len() as u64;
        rt.stats.ge_exec_cycles += spec.em.exec_cycles;
        rt.stats.emit_cycles += spec.em.emit_cycles;
        let cycles = spec.em.total_cycles();
        rt.charge(vm, cycles);

        let name = format!("{}$spec{}", spec.f.name, module.len());
        let mut cf =
            dyc_vm::CodeFunc::new(name, dyn_params.len(), spec.em.next_reg.max(1) as usize);
        cf.code = spec.em.code;
        Ok(module.add_func(cf))
    }

    /// Emit a chain of units starting at `key`, tail-continuing through
    /// unconditional successors that are not yet emitted.
    fn emit_chain(
        &mut self,
        key: UnitKey,
        store: Store,
        rt: &mut Runtime,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<(), VmError> {
        let mut cur = Some((key, store));
        while let Some((key, store)) = cur.take() {
            if self.em.labels.contains_key(&key) {
                break;
            }
            if self.em.code.len() as u64 > self.budget {
                return Err(VmError::Dispatch(
                    "specialization exceeded its instruction budget (non-terminating static control flow?)"
                        .into(),
                ));
            }
            let block = BlockId(key.block);
            if self.loop_headers.contains(&block) && !key.statics.is_empty() {
                self.header_units
                    .entry(block)
                    .or_default()
                    .insert(key.clone());
            }
            // Polyvariant division: the same point analyzed/compiled under
            // different static-variable *sets* (§2.2.5).
            let var_set: Vec<u32> = key.statics.iter().map(|(v, _)| *v).collect();
            self.division_sets.entry(block).or_default().insert(var_set);
            cur = self.emit_unit(key, store, rt, module, vm)?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn emit_unit(
        &mut self,
        key: UnitKey,
        mut store: Store,
        rt: &mut Runtime,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<Option<(UnitKey, Store)>, VmError> {
        let block = BlockId(key.block);
        let start = key.start as usize;
        self.cur_unit = Some(key.clone());
        let mut rename: HashMap<VReg, Opnd> = HashMap::new();
        let mut scratch: HashMap<u64, Reg> = HashMap::new();
        let mut buf: Vec<Emitted<UnitKey>> = Vec::new();
        let costs = rt.costs;
        self.em.exec_cycles += costs.per_unit;
        rt.stats.units_emitted += 1;

        let n_insts = self.f.block(block).insts.len();
        let mut promotion: Option<(usize, Vec<VReg>)> = None;
        let mut i = start;
        while i < n_insts {
            let inst = self.f.block(block).insts[i].clone();
            match &inst {
                Inst::MakeStatic { vars } => {
                    let missing: Vec<VReg> = vars
                        .iter()
                        .map(|(v, _)| *v)
                        .filter(|v| !store.contains_key(v))
                        .collect();
                    if !missing.is_empty() && self.cfg.internal_promotions {
                        promotion = Some((i, missing));
                        break;
                    }
                    // Already static (or promotions disabled): no-op.
                }
                Inst::Promote { var } => {
                    if !store.contains_key(var) && self.cfg.internal_promotions {
                        promotion = Some((i, vec![*var]));
                        break;
                    }
                }
                Inst::MakeDynamic { vars } => {
                    for v in vars {
                        if let Some(val) = store.remove(v) {
                            // The value crosses into run time: materialize.
                            let r = self.em.reg_of(*v);
                            buf.push(Emitted {
                                ins: mov_const(r, val),
                                deletable: true,
                                fixup: None,
                            });
                        }
                    }
                }
                _ => {
                    // Online binding-time classification: the run-time
                    // analysis cost the staged path precompiles away.
                    rt.stats.runtime_bta_calls += 1;
                    self.em.exec_cycles += costs.classify;
                    let is_static = |v: VReg| store.contains_key(&v);
                    match inst_binding(&inst, &is_static, &self.cfg) {
                        Binding::Static => {
                            self.em.exec_static(
                                &inst,
                                &mut store,
                                &mut rename,
                                &costs,
                                &mut rt.stats,
                                module,
                                vm,
                            )?;
                        }
                        Binding::Dynamic => {
                            let (f, live) = (&self.f, &self.live);
                            let rl = |v: VReg| read_later(f, live, block, i, v);
                            self.em.emit_dynamic(
                                &inst,
                                &rl,
                                &mut store,
                                &mut rename,
                                &mut scratch,
                                &mut buf,
                                &costs,
                                &mut rt.stats,
                            );
                        }
                        Binding::Annotation => unreachable!("annotations handled above"),
                    }
                }
            }
            i += 1;
        }

        // Regs that must survive the unit (for dead-assignment elimination).
        let mut live_regs: HashSet<Reg> = HashSet::new();
        let mut chain: Option<(UnitKey, Store)> = None;

        if let Some((idx, missing)) = promotion {
            // Internal dynamic-to-static promotion: end the unit with a
            // dispatch that resumes specialization once the values are
            // known (§2.2.2). Another run-time liveness query.
            rt.stats.runtime_bta_calls += 1;
            let live_here = live_at_point(&self.f, &self.live, block, idx);
            let live_set: BTreeSet<VReg> = live_here.iter().copied().collect();
            self.em
                .flush_renames(&mut rename, &mut buf, |v| live_set.contains(&v), None);
            let base_store: Store = store
                .iter()
                .filter(|(v, _)| live_here.contains(v))
                .map(|(v, val)| (*v, *val))
                .collect();
            let arg_vars: Vec<VReg> = live_here
                .iter()
                .filter(|v| !store.contains_key(v))
                .copied()
                .collect();
            let policy = dyc_stage::site_policy(
                &self.cfg,
                missing
                    .iter()
                    .map(|v| self.policies.get(v).copied().unwrap_or(Policy::CacheAll)),
                missing.len(),
            );
            let site_id = rt.add_site(Site {
                func: self.fidx,
                block,
                inst_idx: idx,
                base_store,
                key_vars: missing,
                arg_vars: arg_vars.clone(),
                policy,
                division: None,
            });
            self.em.exec_cycles += costs.new_site;
            let args: Vec<Reg> = arg_vars.iter().map(|v| self.em.reg_of(*v)).collect();
            live_regs.extend(args.iter().copied());
            let dst = self.f.ret_ty.map(|_| self.em.fresh_reg());
            buf.push(Emitted {
                ins: Instr::Dispatch {
                    point: site_id,
                    dst,
                    args,
                },
                deletable: false,
                fixup: None,
            });
            buf.push(Emitted {
                ins: Instr::Ret { src: dst },
                deletable: false,
                fixup: None,
            });
        } else {
            // Terminator.
            let term = self.f.block(block).term.clone();
            let live_out = self.live.live_out[block.index()].clone();
            let term_uses: BTreeSet<VReg> = term.uses().into_iter().collect();
            self.em.flush_renames(
                &mut rename,
                &mut buf,
                |v| live_out.contains(&v) || term_uses.contains(&v),
                Some(&mut live_regs),
            );
            // Every dynamic variable live out of the block must survive
            // the unit's dead-assignment sweep: later units read it.
            let mut live_out_sorted: Vec<VReg> = live_out.iter().copied().collect();
            live_out_sorted.sort();
            for v in live_out_sorted {
                if !store.contains_key(&v) {
                    let r = self.em.reg_of(v);
                    live_regs.insert(r);
                }
            }
            match term {
                Term::Jmp(t) => {
                    chain = self.take_edge(t, &store, &mut buf, &mut live_regs, rt);
                }
                Term::Br { cond, t, f: fb } => {
                    match self.em.resolve(cond, &store, &rename) {
                        Opnd::KI(v) => {
                            rt.stats.branches_folded += 1;
                            let target = if v != 0 { t } else { fb };
                            chain = self.take_edge(target, &store, &mut buf, &mut live_regs, rt);
                        }
                        Opnd::KF(v) => {
                            rt.stats.branches_folded += 1;
                            let target = if v != 0.0 { t } else { fb };
                            chain = self.take_edge(target, &store, &mut buf, &mut live_regs, rt);
                        }
                        Opnd::R(r) => {
                            live_regs.insert(r);
                            // Demote for both successors before branching.
                            let (key_t, store_t) =
                                self.edge_unit(t, &store, &mut buf, &mut live_regs, rt);
                            let (key_f, store_f) =
                                self.edge_unit(fb, &store, &mut buf, &mut live_regs, rt);
                            // Branch to the true side; fall through to false.
                            buf.push(Emitted {
                                ins: Instr::Brnz { cond: r, target: 0 },
                                deletable: false,
                                fixup: Some(key_t.clone()),
                            });
                            if !self.em.labels.contains_key(&key_t) {
                                self.worklist.push((key_t, store_t));
                            }
                            if self.em.labels.contains_key(&key_f) {
                                buf.push(Emitted {
                                    ins: Instr::Jmp { target: 0 },
                                    deletable: false,
                                    fixup: Some(key_f),
                                });
                            } else {
                                chain = Some((key_f, store_f));
                            }
                        }
                    }
                }
                Term::Switch { on, cases, default } => match self.em.resolve(on, &store, &rename) {
                    Opnd::KI(v) => {
                        rt.stats.branches_folded += 1;
                        let target = cases
                            .iter()
                            .find_map(|(k, b)| (*k == v).then_some(*b))
                            .unwrap_or(default);
                        chain = self.take_edge(target, &store, &mut buf, &mut live_regs, rt);
                    }
                    Opnd::KF(_) => unreachable!("switch scrutinee is int"),
                    Opnd::R(r) => {
                        live_regs.insert(r);
                        let tmp = self.em.fresh_reg();
                        for (k, target) in &cases {
                            let (key, st) =
                                self.edge_unit(*target, &store, &mut buf, &mut live_regs, rt);
                            buf.push(Emitted {
                                ins: Instr::ICmp {
                                    cc: Cc::Eq,
                                    dst: tmp,
                                    a: r,
                                    b: Operand::Imm(*k),
                                },
                                deletable: false,
                                fixup: None,
                            });
                            buf.push(Emitted {
                                ins: Instr::Brnz {
                                    cond: tmp,
                                    target: 0,
                                },
                                deletable: false,
                                fixup: Some(key.clone()),
                            });
                            if !self.em.labels.contains_key(&key) {
                                self.worklist.push((key, st));
                            }
                        }
                        let (key_d, store_d) =
                            self.edge_unit(default, &store, &mut buf, &mut live_regs, rt);
                        if self.em.labels.contains_key(&key_d) {
                            buf.push(Emitted {
                                ins: Instr::Jmp { target: 0 },
                                deletable: false,
                                fixup: Some(key_d),
                            });
                        } else {
                            chain = Some((key_d, store_d));
                        }
                    }
                },
                Term::Ret(v) => {
                    let src = v.map(|v| match self.em.resolve(v, &store, &rename) {
                        Opnd::R(r) => r,
                        k => {
                            let r = self.em.fresh_reg();
                            buf.push(Emitted {
                                ins: mov_const(r, opnd_value(k)),
                                deletable: false,
                                fixup: None,
                            });
                            r
                        }
                    });
                    if let Some(r) = src {
                        live_regs.insert(r);
                    }
                    buf.push(Emitted {
                        ins: Instr::Ret { src },
                        deletable: false,
                        fixup: None,
                    });
                }
            }
        }

        // Dynamic dead-assignment elimination + append (§2.2.7).
        self.em
            .seal_unit(key, buf, live_regs, &costs, &mut rt.stats);
        Ok(chain)
    }

    /// Compute the successor unit for `target`, materializing demoted
    /// statics into registers before the transfer. Every per-variable
    /// decision here is a run-time liveness/division/unroll query the
    /// staged path precompiles into an `EdgePlan`.
    fn edge_unit(
        &mut self,
        target: BlockId,
        store: &Store,
        buf: &mut Vec<Emitted<UnitKey>>,
        live_regs: &mut HashSet<Reg>,
        rt: &mut Runtime,
    ) -> (UnitKey, Store) {
        rt.stats.runtime_bta_calls += store.len() as u64;
        self.em.exec_cycles += rt.costs.edge_plan_per_var * store.len() as u64;
        let live_in = self.live.live_in[target.index()].clone();
        let mut out = Store::new();
        for (v, val) in store {
            if !live_in.contains(v) {
                continue; // dead static: drop from the key (§4.4.3)
            }
            let mut keep = true;
            if !self.cfg.polyvariant_division && !self.static_in[target.index()].contains(v) {
                keep = false;
            }
            // Demote loop-varying statics at loop headers unless they are
            // static induction variables of a loop that unrolls *in this
            // division*: unrolling must be driven by static control flow
            // or it never terminates (§2.1's "loops [that] have static
            // induction variables ... can therefore be completely
            // unrolled"). A loop unrolls in this division iff some exit
            // test's header-live dependencies are all in the current
            // static store — that is what makes conditional
            // specialization (§2.2.5) work: the guarded division unrolls,
            // the unguarded one keeps a residual loop.
            if let Some(assigned) = self.loop_assigned.get(&target) {
                if assigned.contains(v) {
                    let unrolls_here = self.unroll_exit_deps.get(&target).is_some_and(|deps| {
                        deps.iter().any(|d| d.iter().all(|x| store.contains_key(x)))
                    });
                    let kept = unrolls_here
                        && self.unroll_keep.get(&target).is_some_and(|k| k.contains(v));
                    if !kept {
                        keep = false;
                    }
                }
            }
            if keep {
                out.insert(*v, *val);
            } else {
                // Demotion: the value crosses into run time here.
                let r = self.em.reg_of(*v);
                buf.push(Emitted {
                    ins: mov_const(r, *val),
                    deletable: true,
                    fixup: None,
                });
                live_regs.insert(r);
            }
        }
        let key = unit_key(target, 0, &out);
        if let Some(from) = &self.cur_unit {
            self.unit_edges.push((from.clone(), key.clone()));
        }
        (key, out)
    }

    /// Take an unconditional edge: tail-continue if the target is fresh,
    /// emit a jump otherwise.
    fn take_edge(
        &mut self,
        target: BlockId,
        store: &Store,
        buf: &mut Vec<Emitted<UnitKey>>,
        live_regs: &mut HashSet<Reg>,
        rt: &mut Runtime,
    ) -> Option<(UnitKey, Store)> {
        let (key, st) = self.edge_unit(target, store, buf, live_regs, rt);
        if self.em.labels.contains_key(&key) {
            buf.push(Emitted {
                ins: Instr::Jmp { target: 0 },
                deletable: false,
                fixup: Some(key),
            });
            None
        } else {
            Some((key, st))
        }
    }

    /// Classify an unrolled loop as multi-way: some unit of the loop body
    /// can reach two or more distinct header units (a tree, like binary
    /// search), or a header unit is entered from two places (a graph,
    /// like an interpreted guest loop).
    fn loop_is_multiway(&self, header: BlockId, units: &HashSet<UnitKey>) -> bool {
        let Some(l) = self.loops.iter().find(|l| l.header == header) else {
            return false;
        };
        // Adjacency restricted to units whose blocks are in the loop body.
        let mut succs: HashMap<&UnitKey, Vec<&UnitKey>> = HashMap::new();
        let mut in_deg: HashMap<&UnitKey, u32> = HashMap::new();
        for (from, to) in &self.unit_edges {
            if !l.body.contains(&BlockId(from.block)) {
                continue;
            }
            if units.contains(to) {
                *in_deg.entry(to).or_insert(0) += 1;
            }
            succs.entry(from).or_default().push(to);
        }
        if in_deg.values().any(|d| *d >= 2) {
            return true;
        }
        // From each header unit, walk the body without passing through
        // other header units; reaching two of them means divergence.
        for k in units {
            let mut reached: HashSet<&UnitKey> = HashSet::new();
            let mut seen: HashSet<&UnitKey> = HashSet::new();
            let mut stack: Vec<&UnitKey> = vec![k];
            while let Some(u) = stack.pop() {
                for v in succs.get(u).map(Vec::as_slice).unwrap_or(&[]) {
                    if !l.body.contains(&BlockId(v.block)) {
                        continue;
                    }
                    if units.contains(*v) {
                        reached.insert(v);
                        continue;
                    }
                    if seen.insert(v) {
                        stack.push(v);
                    }
                }
            }
            if reached.len() >= 2 {
                return true;
            }
        }
        false
    }
}

/// Is `v` read by any instruction after `(block, idx)`, by the block's
/// terminator, or live out of the block? (A run-time liveness query; the
/// staged path carries the answer in each `EmitHole`.)
fn read_later(f: &FuncIr, live: &Liveness, block: BlockId, idx: usize, v: VReg) -> bool {
    if live.live_out[block.index()].contains(&v) {
        return true;
    }
    let b = f.block(block);
    if b.term.uses().contains(&v) {
        return true;
    }
    b.insts[idx + 1..].iter().any(|ri| {
        if ri.uses().contains(&v) {
            return true;
        }
        match ri {
            Inst::MakeStatic { vars } => vars.iter().any(|(x, _)| *x == v),
            Inst::MakeDynamic { vars } => vars.contains(&v),
            Inst::Promote { var } => *var == v,
            _ => false,
        }
    })
}
