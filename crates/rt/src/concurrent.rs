//! Concurrent dispatch: a sharded, `Arc`-shared code cache with
//! single-flight specialization and bounded eviction.
//!
//! The single-threaded [`Runtime`](crate::Runtime) owns its caches and
//! module outright; this module makes the same staged pipeline safely
//! callable from many threads:
//!
//! * **[`SharedRuntime`]** holds everything immutable or lock-guarded that
//!   threads share: the staged program, the [`ShardedCache`] mapping
//!   `(site, key)` to published code, an append-only site table (internal
//!   promotion sites discovered by any thread become visible to all), an
//!   append-only code registry, and the single-flight wait-map.
//! * **[`ThreadRuntime`]** is one thread's [`DispatchHandler`]: it owns a
//!   private [`Module`] replica and [`Vm`], so *execution* never takes a
//!   lock — only dispatch lookups touch the shared cache, and a
//!   steady-state hit is one shard read-lock with zero allocations.
//! * **Single-flight**: exactly one thread runs the GE executor per
//!   `(site, key)`. Racers either block on the winner's `Flight`
//!   ([`MissPolicy::Block`]) or immediately run a *generic continuation*
//!   — unspecialized code for the region compiled on demand
//!   ([`MissPolicy::Fallback`]) — so no duplicate specializations are
//!   ever performed.
//! * **Bounded eviction**: `cache_all(k)` sites keep at most `k`
//!   specializations, evicted by a second-chance clock whose reference
//!   bits are lock-free atomics set on the hit path.
//!
//! # Memory ordering
//!
//! Publication is lock-mediated: a winner appends the new [`CodeFunc`] to
//! the registry (write lock), inserts the cache binding (shard write
//! lock), and only then resolves and removes its flight (the key's
//! flight-shard mutex — the wait-map is sharded by the same key hash as
//! the cache, so each key's flight protocol runs under one mutex).
//! Any thread that observes the cache binding or the flight result
//! acquired one of those locks after the winner released it, so it also
//! observes the registry entry — plain `Relaxed` atomics are only used
//! for meters and clock reference bits, never to publish data.
//!
//! ```
//! use std::sync::Arc;
//! use dyc_bta::OptConfig;
//! use dyc_rt::concurrent::SharedRuntime;
//! use dyc_vm::{CostModel, Value, Vm};
//!
//! let src = "int pow(int b, int e) { make_static(e);
//!            int r = 1; while (e > 0) { r = r * b; e = e - 1; } return r; }";
//! let mut ir = dyc_ir::lower_program(&dyc_lang::parse_program(src).unwrap()).unwrap();
//! dyc_ir::opt::optimize_program(&mut ir);
//! let staged = dyc_stage::stage_program(ir, OptConfig::all());
//! let shared = Arc::new(SharedRuntime::new(staged));
//!
//! // Each thread gets its own handler, module replica, and VM.
//! let mut handler = SharedRuntime::thread(&shared);
//! let mut module = shared.base_module();
//! let mut vm = Vm::new(CostModel::alpha21164());
//! let id = module.func_by_name("pow").unwrap();
//! for _ in 0..3 {
//!     let out = vm
//!         .call_with_handler(&mut module, &mut handler, id, &[Value::I(3), Value::I(4)])
//!         .unwrap();
//!     assert_eq!(out, Some(Value::I(81)));
//! }
//! // One specialization served all three calls (two were shard hits).
//! assert_eq!(shared.stats().specializations, 1);
//! ```

use crate::artifact::{self, CacheBundle, SiteSpec, ARTIFACT_VERSION};
use crate::cache::{DoubleHashCache, Probed};
use crate::costs::DynCosts;
use crate::ge_exec::{GeExecutor, SpecEnv, SpecHost};
use crate::native::{exec_entry, lower_func, NativeArtifact, NativeDispatch, NativeEngine};
use crate::policy::{PolicyDecision, PolicyEngine, PolicyParams};
use crate::runtime::{Site, Store};
use crate::stats::RtStats;
use dyc_bta::PolicyMode;
use dyc_obs::{now_ns, EventKind, LatencyHistogram, LiveHandles, LiveMetric, LiveThread, Trace};
use dyc_stage::{SitePolicy, StagedProgram};
use dyc_vm::{CodeFunc, DispatchHandler, DispatchOutcome, FuncId, Module, Value, Vm, VmError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// What a racing thread does when another thread is already specializing
/// the same `(site, key)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MissPolicy {
    /// Wait for the winner and invoke its specialized code — preserves
    /// the single-threaded runtime's code and cache contents exactly.
    #[default]
    Block,
    /// Run a *generic continuation* (unspecialized code for the region)
    /// immediately instead of waiting. Results are identical; the racing
    /// call just doesn't benefit from specialization.
    Fallback,
}

/// Cached binding: the published code's global id plus, for bounded
/// sites, its slot in the site's second-chance clock (so a hit can set
/// the reference bit without a second hash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CacheVal {
    gid: u32,
    clock_idx: u32,
}

/// Per-shard meter snapshot (feeds the §4.4.3 dispatch-cost tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardMeter {
    /// Lookups routed to this shard.
    pub lookups: u64,
    /// Total probe count across those lookups.
    pub probes: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Slot-table size (open-addressing capacity, grows by doubling).
    pub slots: usize,
}

struct Shard<V> {
    table: RwLock<DoubleHashCache<V>>,
    lookups: AtomicU64,
    probes: AtomicU64,
}

/// FNV-1a over the key words — independent of the double-hash functions
/// inside each cache shard, so shard choice doesn't correlate with probe
/// position. Shared by [`ShardedCache`] and [`FlightMap`], so a key's
/// cache shard and flight shard indices agree (modulo mask width).
fn shard_hash(key: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in key {
        h ^= *w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A sharded double-hash code cache: N independent
/// [`DoubleHashCache`] shards, each behind its own reader-writer lock,
/// selected by a hash of the key. Readers on different shards never
/// contend, and readers on the same shard share the read lock; only an
/// insert or removal takes a shard's write lock.
///
/// # Examples
///
/// ```
/// use dyc_rt::concurrent::ShardedCache;
/// use dyc_vm::FuncId;
///
/// let c: ShardedCache = ShardedCache::new(8);
/// c.insert(vec![1, 42], FuncId(7));
/// assert_eq!(c.get(&[1, 42]).value, Some(FuncId(7)));
/// assert_eq!(c.get(&[2, 42]).value, None);
/// assert_eq!(c.len(), 1);
/// ```
pub struct ShardedCache<V = FuncId> {
    shards: Box<[Shard<V>]>,
    mask: u64,
}

impl<V: Copy> ShardedCache<V> {
    /// A cache with `shards` shards (rounded up to a power of two).
    pub fn new(shards: usize) -> ShardedCache<V> {
        let n = shards.max(1).next_power_of_two();
        let shards = (0..n)
            .map(|_| Shard {
                table: RwLock::new(DoubleHashCache::new()),
                lookups: AtomicU64::new(0),
                probes: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedCache {
            shards,
            mask: (n - 1) as u64,
        }
    }

    /// Shard selection — see [`shard_hash`].
    fn shard_of(&self, key: &[u64]) -> &Shard<V> {
        &self.shards[(shard_hash(key) & self.mask) as usize]
    }

    /// Metered lookup: one shard read-lock, no allocations.
    pub fn get(&self, key: &[u64]) -> Probed<V> {
        let s = self.shard_of(key);
        let p = s.table.read().unwrap().probe(key);
        s.lookups.fetch_add(1, Ordering::Relaxed);
        s.probes.fetch_add(u64::from(p.probes), Ordering::Relaxed);
        p
    }

    /// Insert (or overwrite) a binding.
    pub fn insert(&self, key: Vec<u64>, value: V) {
        self.shard_of(&key)
            .table
            .write()
            .unwrap()
            .insert(key, value);
    }

    /// Remove a binding, returning it if present.
    pub fn remove(&self, key: &[u64]) -> Option<V> {
        self.shard_of(key).table.write().unwrap().remove(key)
    }

    /// Remove every binding whose first key word equals `first` (the
    /// shared cache prefixes every key with its site id). Returns the
    /// number of bindings removed.
    pub fn purge_prefix(&self, first: u64) -> usize {
        let mut removed = 0;
        for s in &self.shards {
            let mut t = s.table.write().unwrap();
            let doomed: Vec<Vec<u64>> = t
                .iter()
                .filter(|(k, _)| k.first() == Some(&first))
                .map(|(k, _)| k.to_vec())
                .collect();
            for k in &doomed {
                t.remove(k);
            }
            removed += doomed.len();
        }
        removed
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.table.read().unwrap().len())
            .sum()
    }

    /// True if no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard meters, in shard order.
    pub fn meters(&self) -> Vec<ShardMeter> {
        self.shards
            .iter()
            .map(|s| {
                let t = s.table.read().unwrap();
                ShardMeter {
                    lookups: s.lookups.load(Ordering::Relaxed),
                    probes: s.probes.load(Ordering::Relaxed),
                    entries: t.len(),
                    slots: t.capacity(),
                }
            })
            .collect()
    }

    /// Every `(key, value)` binding currently cached.
    pub fn snapshot(&self) -> Vec<(Vec<u64>, V)> {
        let mut out = Vec::new();
        for s in &self.shards {
            let t = s.table.read().unwrap();
            out.extend(t.iter().map(|(k, v)| (k.to_vec(), v)));
        }
        out
    }
}

impl<V: Copy> std::fmt::Debug for ShardedCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("entries", &self.len())
            .finish()
    }
}

/// Second-chance clock for one bounded (`cache_all(k)`) site. Reference
/// bits are atomics so the cache-hit path can mark an entry recently
/// used without taking the clock mutex; the key ring and hand are only
/// touched under the mutex by the (already-serialized) insert path.
#[derive(Debug)]
struct EvictCtl {
    bits: Box<[AtomicBool]>,
    clock: Mutex<ClockKeys>,
}

#[derive(Debug)]
struct ClockKeys {
    /// Full shared-cache key per retained entry, indexed by clock slot.
    keys: Vec<Vec<u64>>,
    hand: usize,
    /// Effective capacity. Starts at the declared `cache_all(k)` bound;
    /// the adaptive policy may grow it (never past `bits.len()`, which
    /// is pre-allocated at the maximum so reference bits are never
    /// reallocated while the hit path touches them lock-free).
    cap: usize,
}

impl EvictCtl {
    fn new(cap: usize, max_cap: usize) -> EvictCtl {
        let max_cap = max_cap.max(cap);
        EvictCtl {
            bits: (0..max_cap).map(|_| AtomicBool::new(false)).collect(),
            clock: Mutex::new(ClockKeys {
                keys: Vec::new(),
                hand: 0,
                cap,
            }),
        }
    }

    fn touch(&self, idx: u32) {
        self.bits[idx as usize].store(true, Ordering::Relaxed);
    }

    /// Raise the effective capacity to `n` (clamped to the
    /// pre-allocated maximum; never shrinks).
    fn grow_to(&self, n: usize) {
        let mut c = self.clock.lock().unwrap();
        c.cap = c.cap.max(n.min(self.bits.len()));
    }

    /// Admit `key`, choosing an eviction victim if the site is at
    /// capacity. Returns the clock slot for the new entry and the evicted
    /// key, if any.
    ///
    /// The caller must remove the returned victim from the code cache
    /// *after* this returns — the shard write-lock is deliberately not
    /// taken while the clock mutex is held, so other threads' admits at
    /// this site never queue behind a cache-shard lock. The window in
    /// which the victim's slot is reassigned but its cache entry still
    /// exists is benign: a hit on the victim during the window runs
    /// still-valid code (registry entries are never freed), and a
    /// concurrent re-specialization of the victim at worst loses its
    /// fresh insert to our delayed remove and re-specializes once more.
    fn admit(&self, key: &[u64]) -> (u32, Option<Vec<u64>>) {
        let mut c = self.clock.lock().unwrap();
        let cap = c.cap;
        if c.keys.len() < cap {
            c.keys.push(key.to_vec());
            let idx = c.keys.len() - 1;
            self.bits[idx].store(true, Ordering::Relaxed);
            return (idx as u32, None);
        }
        // Sweep, clearing reference bits until an unreferenced victim
        // turns up. Concurrent hits can re-set bits mid-sweep, so bound
        // the sweep at two revolutions and then take the hand's slot.
        let mut steps = 0;
        let victim = loop {
            steps += 1;
            if steps > 2 * cap || !self.bits[c.hand].swap(false, Ordering::Relaxed) {
                break c.hand;
            }
            c.hand = (c.hand + 1) % cap;
        };
        c.hand = (victim + 1) % cap;
        let old = std::mem::replace(&mut c.keys[victim], key.to_vec());
        self.bits[victim].store(true, Ordering::Relaxed);
        (victim as u32, Some(old))
    }

    fn reset(&self) {
        let mut c = self.clock.lock().unwrap();
        c.keys.clear();
        c.hand = 0;
        for b in self.bits.iter() {
            b.store(false, Ordering::Relaxed);
        }
    }

    /// True when the clock already retains `cap` entries — admitting
    /// another key would evict. Warm-start uses this to reject surplus
    /// bundle entries instead of evicting ones it just restored.
    fn at_capacity(&self) -> bool {
        let c = self.clock.lock().unwrap();
        c.keys.len() >= c.cap
    }
}

/// One shared dispatch site: the [`Site`] itself plus the concurrent
/// per-site state (eviction clock, lazily built generic continuation).
#[derive(Debug)]
struct SiteEntry {
    site: Site,
    evict: Option<EvictCtl>,
    /// Global id of the site's generic continuation, built on first use
    /// by the [`MissPolicy::Fallback`] path.
    fallback: Mutex<Option<u32>>,
}

impl SiteEntry {
    /// `cap_growth` is the adaptive policy's bound multiplier (1 in
    /// `Always` mode): reference bits are pre-allocated at
    /// `k * cap_growth` so capacity growth never reallocates them.
    fn new(site: Site, cap_growth: usize) -> SiteEntry {
        let evict = match site.policy {
            SitePolicy::CacheAllBounded(k) => {
                let k = k.max(1) as usize;
                Some(EvictCtl::new(k, k.saturating_mul(cap_growth.max(1))))
            }
            _ => None,
        };
        SiteEntry {
            site,
            evict,
            fallback: Mutex::new(None),
        }
    }
}

/// One in-flight specialization: racers park on the condvar until the
/// winner resolves it with the published global id (or the error).
#[derive(Debug)]
struct Flight {
    state: Mutex<Option<Result<u32, String>>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            state: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn resolve(&self, r: Result<u32, String>) {
        *self.state.lock().unwrap() = Some(r);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<u32, String> {
        let mut g = self.state.lock().unwrap();
        loop {
            if let Some(r) = g.clone() {
                return r;
            }
            g = self.cv.wait(g).unwrap();
        }
    }
}

/// The single-flight wait-map, sharded by the same FNV-1a hash as the
/// code cache so a key's flight entry and cache binding live in the
/// same 1/Nth of the keyspace. Before the serving work this was one
/// global `Mutex<HashMap>`: under a cold-start stampede every miss on
/// *any* key serialized on it, convoying unrelated sites (see
/// EXPERIMENTS.md, hypothesis H1). Sharding preserves the protocol
/// exactly — single-flight is a per-key property, and one key always
/// maps to one shard — while letting misses on unrelated keys proceed
/// independently.
/// One flight-map shard: the in-flight specializations whose keys hash
/// into it.
type FlightShard = Mutex<HashMap<Vec<u64>, Arc<Flight>>>;

#[derive(Debug)]
struct FlightMap {
    shards: Box<[FlightShard]>,
    mask: u64,
}

impl FlightMap {
    fn new(shards: usize) -> FlightMap {
        let n = shards.max(1).next_power_of_two();
        FlightMap {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: (n - 1) as u64,
        }
    }

    /// The mutex guarding `key`'s flight entry. Both winner steps (insert
    /// on entry, remove after publication) and every racer check go
    /// through this one lock, so the per-key protocol is untouched by
    /// sharding.
    fn shard(&self, key: &[u64]) -> &Mutex<HashMap<Vec<u64>, Arc<Flight>>> {
        &self.shards[(shard_hash(key) & self.mask) as usize]
    }

    fn n_shards(&self) -> usize {
        self.shards.len()
    }
}

/// Atomic global meters (per-thread meters live in each
/// [`ThreadRuntime`]'s [`RtStats`]).
#[derive(Debug, Default)]
struct ConcStats {
    specializations: AtomicU64,
    single_flight_waits: AtomicU64,
    single_flight_fallbacks: AtomicU64,
    single_flight_races: AtomicU64,
    cache_evictions: AtomicU64,
    cache_invalidations: AtomicU64,
    generic_continuations: AtomicU64,
    cache_warm_loads: AtomicU64,
    cache_warm_rejects: AtomicU64,
    native_installs: AtomicU64,
    native_fallbacks: AtomicU64,
    policy_defers: AtomicU64,
    policy_promotes: AtomicU64,
    policy_throttled: AtomicU64,
}

/// Plain snapshot of the shared runtime's meters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConcSnapshot {
    /// Specializations performed across all threads. With
    /// [`MissPolicy::Block`] this equals what a single-threaded oracle
    /// running the same call sequence performs — single-flight suppresses
    /// every duplicate.
    pub specializations: u64,
    /// Times a racing thread blocked on another thread's in-flight
    /// specialization.
    pub single_flight_waits: u64,
    /// Times a racing thread took the generic continuation instead.
    pub single_flight_fallbacks: u64,
    /// Times a miss lost the publication race: between the failed cache
    /// probe and taking the flight-shard lock, the winner had already
    /// published, so the miss was served from the cache with no
    /// specialization, wait, or fallback. With this meter the serving
    /// harness can balance its books exactly: `misses = specializations
    /// + waits + fallbacks + races + policy defers + policy throttles`.
    pub single_flight_races: u64,
    /// Bounded-site evictions performed by the second-chance clock.
    pub cache_evictions: u64,
    /// Explicit site invalidations.
    pub cache_invalidations: u64,
    /// Generic continuations compiled (at most one per site).
    pub generic_continuations: u64,
    /// Cached specializations restored from a snapshot bundle at
    /// warm-start (each skips a future first-dispatch specialization).
    pub cache_warm_loads: u64,
    /// Snapshot entries rejected at warm-start: stale or corrupted
    /// fingerprints, schema mismatches, or bounded-capacity surplus.
    /// Per-entry and never fatal — rejected keys re-specialize on first
    /// dispatch.
    pub cache_warm_rejects: u64,
    /// Materialized functions additionally lowered to native x86-64
    /// machine code across all threads (each thread installs into its
    /// own engine, so one published specialization can count once per
    /// thread that runs it).
    pub native_installs: u64,
    /// Materializations that stayed on the VM backend despite the
    /// native option — the lowering declined or the platform lacks the
    /// backend.
    pub native_fallbacks: u64,
    /// Adaptive policy only: dispatch misses whose specialization was
    /// deferred below the site's break-even threshold (the dispatch ran
    /// the generic continuation). Always zero in `PolicyMode::Always`.
    pub policy_defers: u64,
    /// Adaptive policy only: keys specialized after at least one
    /// deferral (the miss that crossed the threshold).
    pub policy_promotes: u64,
    /// Adaptive policy only: misses suppressed because the (internal)
    /// site's specializations were never re-dispatched.
    pub policy_throttled: u64,
    /// Code functions published to the shared registry.
    pub published: u64,
    /// Per-shard cache meters.
    pub shards: Vec<ShardMeter>,
}

impl ConcSnapshot {
    /// Duplicate specializations avoided by single-flight (waits plus
    /// fallbacks — each one is a miss that did *not* redundantly run the
    /// GE executor).
    pub fn single_flight_suppressed(&self) -> u64 {
        self.single_flight_waits + self.single_flight_fallbacks
    }
}

/// Construction options for [`SharedRuntime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedOptions {
    /// Shard count for the code cache (rounded up to a power of two).
    /// `0` (the default) auto-sizes from the machine: 8 shards per
    /// hardware thread, clamped to `[16, 512]`. The serving measurements
    /// (EXPERIMENTS.md, "Serving under skewed traffic") found throughput
    /// flat from 16 shards up but degrading below 4 on write-heavy churn,
    /// so auto keeps a 16-shard floor even on small machines and scales
    /// with the hardware instead of freezing yesterday's constant.
    pub shards: usize,
    /// Shard count for the single-flight wait-map (rounded up to a power
    /// of two). `0` (the default) matches the resolved cache shard
    /// count, so one key contends with the same 1/Nth of the keyspace in
    /// both structures. `1` reproduces the pre-serving global mutex —
    /// kept selectable so the EXPERIMENTS.md before/after numbers stay
    /// reproducible from one binary.
    pub flight_shards: usize,
    /// What racing threads do on a miss that is already in flight.
    pub miss_policy: MissPolicy,
    /// Give every [`ThreadRuntime`] an allocation-free miss-path latency
    /// histogram ([`LatencyHistogram`]): each dispatch miss records the
    /// wall nanoseconds from miss detection to having runnable code
    /// (specialization, single-flight wait, or generic-continuation
    /// build). Unlike the event ring this survives 10⁸-dispatch runs
    /// whole, so the serving harness computes true p50/p95/p99 from it.
    /// Off by default: the hit path is untouched either way, but each
    /// miss pays two clock reads.
    pub latency: bool,
    /// Specialization instruction budget (guards non-terminating static
    /// loops), per specialization.
    pub spec_budget: u64,
    /// Give every [`ThreadRuntime`] a cycle-stamped event recorder (see
    /// [`dyc_obs`]). Purely observational: enabling it changes no
    /// results, no published code bytes, and no [`RtStats`] counters.
    /// Also switched on by [`OptConfig::trace`](dyc_bta::OptConfig) on
    /// the staged program's config.
    pub trace: bool,
    /// Lower materialized specializations to native x86-64 machine code
    /// (each thread owns its own executable arena) and run them instead
    /// of interpreting. Also switched on by
    /// [`OptConfig::native`](dyc_bta::OptConfig) on the staged program's
    /// config. A no-op on platforms without the native backend.
    pub native: bool,
    /// When to specialize a dispatched (site, key):
    /// [`PolicyMode::Always`] (the default — specialize on first miss,
    /// today's behavior exactly) or [`PolicyMode::Adaptive`] (count
    /// dispatches and defer below the per-site break-even; see
    /// [`crate::policy`]). Also switched on by
    /// [`OptConfig::policy`](dyc_bta::OptConfig) on the staged
    /// program's config.
    pub policy: PolicyMode,
}

impl Default for SharedOptions {
    fn default() -> SharedOptions {
        SharedOptions {
            shards: 0,
            flight_shards: 0,
            miss_policy: MissPolicy::Block,
            latency: false,
            spec_budget: 4_000_000,
            trace: false,
            native: false,
            policy: PolicyMode::Always,
        }
    }
}

/// Resolve a shard-count knob: `0` auto-sizes to 8 shards per hardware
/// thread, clamped to `[16, 512]` (see [`SharedOptions::shards`] for the
/// measured rationale).
fn resolve_shards(n: usize) -> usize {
    if n != 0 {
        return n;
    }
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    (hw * 8).clamp(16, 512)
}

/// The thread-shared half of the concurrent runtime. Wrap it in an
/// [`Arc`] and hand each thread a [`ThreadRuntime`] from
/// [`SharedRuntime::thread`]; see the [module docs](self) for the full
/// protocol.
pub struct SharedRuntime {
    staged: StagedProgram,
    costs: DynCosts,
    opts: SharedOptions,
    /// The statically compiled module every thread replica starts from;
    /// global code ids below `base_len` are base functions with the same
    /// [`FuncId`] in every replica.
    base_module: Module,
    base_len: usize,
    /// Append-only site table. Entry sites occupy the prefix; internal
    /// promotion sites discovered during any thread's specialization are
    /// appended under the write lock and never mutated afterwards.
    sites: RwLock<Vec<Arc<SiteEntry>>>,
    /// `[site, key bits...]` → published code.
    cache: ShardedCache<CacheVal>,
    /// Published specialized code, in publication order. Global id =
    /// `base_len + index`; threads copy entries into their own modules on
    /// first use.
    registry: RwLock<Vec<Arc<CodeFunc>>>,
    /// Single-flight wait-map, keyed (and sharded) like the cache.
    inflight: FlightMap,
    stats: ConcStats,
    /// Adaptive specialization policy, `None` in `Always` mode (the
    /// default). Consulted only on the miss path; see [`crate::policy`].
    policy: Option<PolicyEngine>,
    /// Trace thread-id allocator: each [`ThreadRuntime`] takes the next
    /// id so merged event streams distinguish recorders.
    next_thread: AtomicU32,
    /// Live-telemetry handles ([`SharedRuntime::attach_live`]). `None`
    /// (the default) costs the warm path nothing; threads created after
    /// attachment register a per-thread slot and flight ring.
    live: RwLock<Option<LiveHandles>>,
}

impl std::fmt::Debug for SharedRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedRuntime")
            .field("base_len", &self.base_len)
            .field("n_sites", &self.n_sites())
            .field("published", &self.registry.read().unwrap().len())
            .field("opts", &self.opts)
            .finish()
    }
}

/// [`SpecHost`] that appends internal promotion sites to the shared site
/// table, making them visible to every thread.
struct SharedSiteHost<'a> {
    shared: &'a SharedRuntime,
}

impl SpecHost for SharedSiteHost<'_> {
    fn add_site(&mut self, mut site: Site) -> u32 {
        site.precompute_layout();
        let mut sites = self.shared.sites.write().unwrap();
        let id = sites.len() as u32;
        sites.push(Arc::new(SiteEntry::new(site, self.shared.cap_growth())));
        id
    }
}

impl SharedRuntime {
    /// Build the shared runtime for a staged program with default
    /// options (auto-sized shards, [`MissPolicy::Block`]).
    pub fn new(staged: StagedProgram) -> SharedRuntime {
        SharedRuntime::with_options(staged, SharedOptions::default())
    }

    /// Build the shared runtime with explicit [`SharedOptions`].
    pub fn with_options(staged: StagedProgram, opts: SharedOptions) -> SharedRuntime {
        let base_module = staged.build_module();
        let base_len = base_module.len();
        let adaptive =
            opts.policy == PolicyMode::Adaptive || staged.cfg.policy == PolicyMode::Adaptive;
        let policy = adaptive.then(|| PolicyEngine::new(PolicyParams::default()));
        let cap_growth = policy
            .as_ref()
            .map_or(1, |e| e.params().cap_growth_limit.max(1));
        let mut sites = Vec::new();
        for (i, e) in staged.entry_sites.iter().enumerate() {
            let mut site = Site {
                func: e.func,
                block: e.block,
                inst_idx: e.inst_idx,
                base_store: Store::new(),
                key_vars: e.key_vars.iter().map(|(v, _)| *v).collect(),
                arg_vars: e.arg_vars.clone(),
                policy: e.policy,
                division: staged.ge.entry_divisions[i],
                key_pos: Vec::new(),
                dyn_pos: Vec::new(),
            };
            site.precompute_layout();
            sites.push(Arc::new(SiteEntry::new(site, cap_growth)));
        }
        let cache_shards = resolve_shards(opts.shards);
        let flight_shards = if opts.flight_shards == 0 {
            cache_shards
        } else {
            opts.flight_shards
        };
        SharedRuntime {
            cache: ShardedCache::new(cache_shards),
            costs: DynCosts::calibrated(),
            opts,
            base_module,
            base_len,
            sites: RwLock::new(sites),
            registry: RwLock::new(Vec::new()),
            inflight: FlightMap::new(flight_shards),
            stats: ConcStats::default(),
            policy,
            next_thread: AtomicU32::new(0),
            live: RwLock::new(None),
            staged,
        }
    }

    /// Attach live-telemetry handles: every [`ThreadRuntime`] created
    /// afterwards registers a sharded counter slot (and a flight ring
    /// when the handles carry a recorder) and feeds the registry from
    /// its meter points. Attach before spawning workers; existing
    /// threads are unaffected. Telemetry never changes published code,
    /// results, or [`RtStats`] — see `dyc_obs::live`'s
    /// observer-effect-free obligations.
    pub fn attach_live(&self, handles: LiveHandles) {
        *self.live.write().unwrap() = Some(handles);
    }

    /// The attached live-telemetry handles, if any.
    pub fn live_handles(&self) -> Option<LiveHandles> {
        self.live.read().unwrap().clone()
    }

    /// The adaptive policy engine, when enabled (diagnostics and tests).
    pub fn policy_engine(&self) -> Option<&PolicyEngine> {
        self.policy.as_ref()
    }

    /// Bounded-cap growth multiplier for new sites: the policy's
    /// `cap_growth_limit` in adaptive mode, 1 otherwise.
    fn cap_growth(&self) -> usize {
        self.policy
            .as_ref()
            .map_or(1, |e| e.params().cap_growth_limit.max(1))
    }

    /// A fresh per-thread dispatch handler. Pair it with
    /// [`SharedRuntime::base_module`] and the thread's own [`Vm`].
    pub fn thread(shared: &Arc<SharedRuntime>) -> ThreadRuntime {
        let tid = shared.next_thread.fetch_add(1, Ordering::Relaxed);
        let trace = if shared.opts.trace || shared.staged.cfg.trace {
            Trace::on(tid)
        } else {
            Trace::off()
        };
        let miss_hist = shared
            .opts
            .latency
            .then(|| Box::new(LatencyHistogram::new()));
        let live = shared
            .live
            .read()
            .unwrap()
            .as_ref()
            .map(|h| Box::new(h.thread(tid)));
        ThreadRuntime {
            shared: Arc::clone(shared),
            stats: RtStats::new(),
            scratch_key: Vec::new(),
            local_ids: Vec::new(),
            site_cache: Vec::new(),
            trace,
            native: NativeEngine::new(),
            miss_hist,
            live,
        }
    }

    /// A fresh copy of the statically compiled base module for a thread
    /// replica.
    pub fn base_module(&self) -> Module {
        self.base_module.clone()
    }

    /// The staged program being run.
    pub fn staged(&self) -> &StagedProgram {
        &self.staged
    }

    /// Number of dispatch sites (entries + internal promotions so far).
    pub fn n_sites(&self) -> usize {
        self.sites.read().unwrap().len()
    }

    /// Number of entry (statically splice-created) dispatch sites. Site
    /// ids at or above this are internal promotion sites, numbered in
    /// the order their parent specializations first created them.
    pub fn n_entry_sites(&self) -> usize {
        self.staged.entry_sites.len()
    }

    /// Number of code functions published to the shared registry.
    pub fn published(&self) -> usize {
        self.registry.read().unwrap().len()
    }

    /// Resolved code-cache shard count (after auto-sizing and
    /// power-of-two rounding).
    pub fn n_cache_shards(&self) -> usize {
        self.cache.n_shards()
    }

    /// Resolved single-flight wait-map shard count.
    pub fn n_flight_shards(&self) -> usize {
        self.inflight.n_shards()
    }

    /// The published code with global id `gid` (diagnostics / the stress
    /// harness's byte-identity check).
    ///
    /// # Panics
    ///
    /// Panics if `gid` is a base-module id or out of range.
    pub fn code(&self, gid: u32) -> Arc<CodeFunc> {
        Arc::clone(&self.registry.read().unwrap()[gid as usize - self.base_len])
    }

    /// Drop every specialization cached at `point`, exactly like
    /// [`Runtime::invalidate_site`](crate::Runtime::invalidate_site). The
    /// next dispatch through the site re-specializes; published code is
    /// unreachable through this site afterwards but stays in the registry
    /// (ids are never reused, so a stale [`FuncId`] can never be served).
    /// An invalidation racing an in-flight specialization may see that
    /// specialization's binding appear after the purge — that binding is
    /// freshly generated code, not stale code.
    pub fn invalidate_site(&self, point: u32) {
        self.stats
            .cache_invalidations
            .fetch_add(1, Ordering::Relaxed);
        self.cache.purge_prefix(u64::from(point));
        let entry = self.sites.read().unwrap().get(point as usize).cloned();
        if let Some(e) = entry {
            if let Some(ev) = &e.evict {
                ev.reset();
            }
        }
    }

    /// Snapshot of every `(site, key, global id)` binding currently
    /// cached, with the site prefix stripped from the key (matching
    /// [`Runtime::cache_entries`](crate::Runtime::cache_entries)).
    pub fn cache_snapshot(&self) -> Vec<(u32, Vec<u64>, u32)> {
        self.cache
            .snapshot()
            .into_iter()
            .map(|(k, v)| (k[0] as u32, k[1..].to_vec(), v.gid))
            .collect()
    }

    /// Serialize the shared dynamic-code cache — every `(site, key,
    /// code)` binding plus the internal promotion sites — as a
    /// versioned, fingerprinted [`CacheBundle`]. The published registry
    /// supplies the code bytes, so no thread module is needed. Safe to
    /// call while threads run, though a bundle snapshotted mid-burst
    /// simply misses in-flight specializations.
    pub fn snapshot_bundle(&self) -> CacheBundle {
        let cfg = artifact::config_hash(&self.staged.cfg);
        let prog = artifact::program_hash(&self.staged);
        let n_entry = self.staged.entry_sites.len();
        let guard = self.sites.read().unwrap();
        let sites = guard[n_entry..]
            .iter()
            .map(|e| SiteSpec::from_site(&e.site))
            .collect();
        let entries = self
            .cache_snapshot()
            .into_iter()
            .map(|(site, key, gid)| {
                let schema = guard[site as usize]
                    .site
                    .key_vars
                    .iter()
                    .map(|v| v.0)
                    .collect();
                artifact::artifact_for_func(cfg, prog, site, key, schema, &self.code(gid))
            })
            .collect();
        CacheBundle {
            version: ARTIFACT_VERSION,
            config_hash: cfg,
            program_hash: prog,
            n_entry_sites: n_entry as u32,
            sites,
            entries,
        }
    }

    /// Warm-start the shared runtime from a snapshot bundle, mirroring
    /// [`Runtime::restore_bundle`](crate::Runtime::restore_bundle): the
    /// header's `(version, config-hash, program-hash)` triple and site
    /// layout must match and the runtime must be fresh (nothing
    /// published or promoted yet), else every entry is rejected; each
    /// entry then re-verifies its own triple and site binding. Accepted
    /// code is published to the registry and bound in the sharded cache
    /// — threads spawned afterwards hit it on their first dispatch.
    /// Rejections and loads are metered in [`ConcSnapshot`]
    /// (`cache_warm_rejects` / `cache_warm_loads`); nothing panics.
    pub fn restore_bundle(&self, bundle: &CacheBundle) {
        let expect_cfg = artifact::config_hash(&self.staged.cfg);
        let expect_prog = artifact::program_hash(&self.staged);
        let fresh = self.n_sites() == self.staged.entry_sites.len() && self.published() == 0;
        let header_ok = bundle.version == ARTIFACT_VERSION
            && bundle.config_hash == expect_cfg
            && bundle.program_hash == expect_prog
            && bundle.n_entry_sites as usize == self.staged.entry_sites.len()
            && fresh;
        let internal: Option<Vec<Site>> = if header_ok {
            bundle.sites.iter().map(|s| s.to_site().ok()).collect()
        } else {
            None
        };
        let Some(internal) = internal else {
            self.stats
                .cache_warm_rejects
                .fetch_add(bundle.entries.len() as u64, Ordering::Relaxed);
            return;
        };
        {
            let mut host = SharedSiteHost { shared: self };
            for site in internal {
                host.add_site(site);
            }
        }
        let guard = self.sites.read().unwrap();
        for art in &bundle.entries {
            let entry = guard.get(art.site as usize);
            let site_ok = entry.is_some_and(|e| {
                art.key_schema == e.site.key_vars.iter().map(|v| v.0).collect::<Vec<_>>()
            });
            if art.verify(expect_cfg, expect_prog).is_err() || !site_ok {
                self.stats
                    .cache_warm_rejects
                    .fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let entry = entry.expect("checked above");
            let mut full_key = Vec::with_capacity(art.key.len() + 1);
            full_key.push(u64::from(art.site));
            full_key.extend_from_slice(&art.key);
            let clock_idx = match &entry.evict {
                Some(ev) => {
                    if ev.at_capacity() {
                        self.stats
                            .cache_warm_rejects
                            .fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let (ci, evicted) = ev.admit(&full_key);
                    if let Some(old) = evicted {
                        self.cache.remove(&old);
                    }
                    ci
                }
                None => 0,
            };
            let gid = {
                let mut reg = self.registry.write().unwrap();
                let gid = (self.base_len + reg.len()) as u32;
                reg.push(Arc::new(art.to_func()));
                gid
            };
            if let Some(eng) = &self.policy {
                // Restored entries are already-proven keys: seed the
                // engine so they never defer and re-specialize
                // immediately if ever evicted.
                eng.seed_promoted(full_key.clone());
            }
            self.cache.insert(full_key, CacheVal { gid, clock_idx });
            self.stats.cache_warm_loads.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot of the global meters.
    pub fn stats(&self) -> ConcSnapshot {
        ConcSnapshot {
            specializations: self.stats.specializations.load(Ordering::Relaxed),
            single_flight_waits: self.stats.single_flight_waits.load(Ordering::Relaxed),
            single_flight_fallbacks: self.stats.single_flight_fallbacks.load(Ordering::Relaxed),
            single_flight_races: self.stats.single_flight_races.load(Ordering::Relaxed),
            cache_evictions: self.stats.cache_evictions.load(Ordering::Relaxed),
            cache_invalidations: self.stats.cache_invalidations.load(Ordering::Relaxed),
            generic_continuations: self.stats.generic_continuations.load(Ordering::Relaxed),
            cache_warm_loads: self.stats.cache_warm_loads.load(Ordering::Relaxed),
            cache_warm_rejects: self.stats.cache_warm_rejects.load(Ordering::Relaxed),
            native_installs: self.stats.native_installs.load(Ordering::Relaxed),
            native_fallbacks: self.stats.native_fallbacks.load(Ordering::Relaxed),
            policy_defers: self.stats.policy_defers.load(Ordering::Relaxed),
            policy_promotes: self.stats.policy_promotes.load(Ordering::Relaxed),
            policy_throttled: self.stats.policy_throttled.load(Ordering::Relaxed),
            published: self.registry.read().unwrap().len() as u64,
            shards: self.cache.meters(),
        }
    }

    /// The global id of `entry`'s generic continuation, compiling and
    /// publishing it on first use. The continuation is ordinary
    /// unspecialized code (annotations vanish, the site's baked static
    /// context is materialized as constants), so it is charged like
    /// statically compiled code — no dynamic-compilation cycles.
    fn generic_continuation(&self, entry: &SiteEntry) -> u32 {
        let mut slot = entry.fallback.lock().unwrap();
        if let Some(g) = *slot {
            return g;
        }
        let site = &entry.site;
        let consts: Vec<_> = site.base_store.iter().map(|(v, val)| (*v, *val)).collect();
        let cf = dyc_ir::codegen::codegen_region_generic(
            &self.staged.ir.funcs[site.func],
            site.block,
            site.inst_idx,
            &site.arg_vars,
            &consts,
        );
        let gid = {
            let mut reg = self.registry.write().unwrap();
            let gid = (self.base_len + reg.len()) as u32;
            reg.push(Arc::new(cf));
            gid
        };
        self.stats
            .generic_continuations
            .fetch_add(1, Ordering::Relaxed);
        *slot = Some(gid);
        gid
    }
}

/// Outcome of the single-flight miss path.
enum MissResult {
    /// Specialized code (winner's own, or the winner we waited for).
    Spec(u32),
    /// The generic continuation — invoked with the *full* dispatch
    /// arguments, not the dynamic subset.
    Generic(u32),
}

/// One thread's dispatch handler over a [`SharedRuntime`]. Owns the
/// thread-local state — per-thread [`RtStats`], the reusable key buffer,
/// and the lazy map from global code ids to this thread's module-local
/// [`FuncId`]s — so the steady-state hit path takes one shard read-lock
/// and performs no heap allocation.
#[derive(Debug)]
pub struct ThreadRuntime {
    shared: Arc<SharedRuntime>,
    /// This thread's run-time meters. `specializations` counts only
    /// specializations this thread won; the global total lives in
    /// [`SharedRuntime::stats`].
    pub stats: RtStats,
    scratch_key: Vec<u64>,
    /// Global registry id − `base_len` → this thread's local [`FuncId`],
    /// filled on first use.
    local_ids: Vec<Option<FuncId>>,
    /// Locally cached prefix of the shared site table (append-only, so a
    /// prefix is never stale).
    site_cache: Vec<Arc<SiteEntry>>,
    /// This thread's event recorder ([`Trace::off`] unless
    /// [`SharedOptions::trace`] or the staged config's `trace` flag is
    /// set). Recording never touches [`RtStats`], published code, or
    /// results; drain it with [`Trace::events`] after the run.
    pub trace: Trace,
    /// This thread's native x86-64 engine. Each thread owns its own
    /// executable arena (mirroring the private module replica), keyed by
    /// the thread-local [`FuncId`]s from [`ThreadRuntime::materialize`].
    /// Inert on platforms without the backend.
    native: NativeEngine,
    /// Miss-path latency histogram, present when
    /// [`SharedOptions::latency`] is set. Boxed so the (cold) miss
    /// path's bookkeeping doesn't bloat the handler the hit path walks.
    miss_hist: Option<Box<LatencyHistogram>>,
    /// This thread's live-telemetry handle, present when the shared
    /// runtime had handles attached ([`SharedRuntime::attach_live`])
    /// before this thread was created. The warm path pays one `None`
    /// branch when telemetry is off and two relaxed atomic adds when on.
    live: Option<Box<LiveThread>>,
}

impl ThreadRuntime {
    /// The shared runtime this handler dispatches against.
    pub fn shared(&self) -> &Arc<SharedRuntime> {
        &self.shared
    }

    /// This thread's miss-path latency histogram, when
    /// [`SharedOptions::latency`] was set: one sample per dispatch miss,
    /// wall nanoseconds from miss detection to runnable code. Merge the
    /// per-thread histograms ([`LatencyHistogram::merge`]) for whole-run
    /// percentiles.
    pub fn miss_latency(&self) -> Option<&LatencyHistogram> {
        self.miss_hist.as_deref()
    }

    /// [`SharedRuntime::invalidate_site`], recorded in this thread's
    /// trace (the shared method is `&self` and has no recorder).
    pub fn invalidate_site(&mut self, point: u32) {
        self.shared.invalidate_site(point);
        self.trace
            .rec(EventKind::CacheInvalidate, point, 0, 0, 0, 0);
    }

    /// Native backend gate: [`SharedOptions::native`] or the staged
    /// config's `native` flag.
    fn native_on(&self) -> bool {
        self.shared.opts.native || self.shared.staged.cfg.native
    }

    /// Hand a lowered artifact to this thread's native engine, metering
    /// the outcome locally and globally.
    fn install_native(&mut self, point: u32, fid: FuncId, art: Option<NativeArtifact>) {
        match self.native.install(fid, art) {
            Some(len) => {
                self.stats.native_installs += 1;
                self.shared
                    .stats
                    .native_installs
                    .fetch_add(1, Ordering::Relaxed);
                self.trace
                    .rec(EventKind::NativeInstall, point, 0, 0, len as u64, 0);
                self.live_event(EventKind::NativeInstall, point, &[], 0, len as u64, 0);
            }
            None => {
                self.stats.native_fallbacks += 1;
                self.shared
                    .stats
                    .native_fallbacks
                    .fetch_add(1, Ordering::Relaxed);
                self.trace.rec(EventKind::NativeFallback, point, 0, 0, 0, 0);
                self.live_event(EventKind::NativeFallback, point, &[], 0, 0, 0);
            }
        }
    }

    /// Native fast path for an invocation tail: when `fid` has an
    /// installed machine-code entry, run it here and hand the
    /// interpreter a completed result. Charges nothing to the cycle
    /// model.
    fn finish_invoke(
        &mut self,
        fid: FuncId,
        out_args: &[Value],
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<DispatchOutcome, VmError> {
        if let Some(entry) = self.native.entry(fid) {
            let value = exec_entry(&entry, out_args, self, module, vm)?;
            return Ok(DispatchOutcome::Completed { value });
        }
        Ok(DispatchOutcome::Invoke { func: fid })
    }

    /// Bump a live counter by one (no-op without attached telemetry).
    #[inline]
    fn live_bump(&self, m: LiveMetric) {
        if let Some(l) = &self.live {
            l.slot.add(m, 1);
        }
    }

    /// Record a cold-path event into this thread's flight ring, hashing
    /// the key words only when a ring is attached. Always additional to
    /// (never instead of) the `Trace` recorder, so tracing semantics are
    /// unchanged whether or not telemetry is on.
    #[inline]
    fn live_event(
        &self,
        kind: EventKind,
        site: u32,
        key_words: &[u64],
        cycle: u64,
        a: u64,
        b: u64,
    ) {
        if let Some(l) = &self.live {
            if let Some(ring) = &l.ring {
                ring.record(kind, site, dyc_obs::key_hash(key_words), cycle, a, b);
            }
        }
    }

    fn charge(&mut self, vm: &mut Vm, cycles: u64) {
        self.stats.dyncomp_cycles += cycles;
        vm.stats.dyncomp_cycles += cycles;
    }

    fn charge_dispatch(&mut self, vm: &mut Vm, cycles: u64) {
        self.stats.dispatch_cycles += cycles;
        vm.stats.dispatch_cycles += cycles;
    }

    /// The site entry for `point`, refreshing the local prefix from the
    /// shared table only when `point` is beyond it (i.e. another thread
    /// registered a new internal promotion site).
    fn site_entry(&mut self, point: u32) -> Arc<SiteEntry> {
        if point as usize >= self.site_cache.len() {
            let sites = self.shared.sites.read().unwrap();
            let have = self.site_cache.len();
            self.site_cache.extend(sites[have..].iter().cloned());
        }
        Arc::clone(&self.site_cache[point as usize])
    }

    /// Copy published code `gid` into this thread's module on first use;
    /// base-module ids map to themselves. `point` tags the native-install
    /// trace event.
    fn materialize(&mut self, point: u32, gid: u32, module: &mut Module, vm: &mut Vm) -> FuncId {
        if (gid as usize) < self.shared.base_len {
            return FuncId(gid);
        }
        let idx = gid as usize - self.shared.base_len;
        if idx >= self.local_ids.len() {
            self.local_ids.resize(idx + 1, None);
        }
        if let Some(f) = self.local_ids[idx] {
            return f;
        }
        let cf = self.shared.registry.read().unwrap()[idx].as_ref().clone();
        let fid = module.add_func(cf);
        // Installing code in this replica models the same `imb` + install
        // cost the winner paid in its own module.
        vm.flush_icache();
        let install = self.shared.costs.install;
        self.charge(vm, install);
        self.local_ids[idx] = Some(fid);
        // First materialization in this thread: lower to machine code in
        // this thread's own arena (the winner thread did the same in
        // `do_specialize`).
        if self.native_on() {
            let art = lower_func(module.func(fid));
            self.install_native(point, fid, art);
        }
        fid
    }

    /// Run the GE executor for this site/key in this thread's module.
    /// `key` is the shared-cache key (`[site, key bits...]`), used only
    /// to tag trace events.
    fn do_specialize(
        &mut self,
        entry: &SiteEntry,
        key: &[u64],
        args: &[Value],
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<FuncId, VmError> {
        let site = &entry.site;
        let mut store = site.base_store.clone();
        for (v, &p) in site.key_vars.iter().zip(&site.key_pos) {
            store.insert(*v, args[p]);
        }
        self.stats.specializations += 1;
        let Some(d) = site.division else {
            return Err(VmError::Dispatch(
                "concurrent dispatch requires a staged GE division \
                 (online-specializer fallback is single-threaded only)"
                    .into(),
            ));
        };
        let point = key[0] as u32;
        let kh = if self.trace.is_on() {
            dyc_obs::key_hash(&key[1..])
        } else {
            0
        };
        let (dyn0, instr0) = (self.stats.dyncomp_cycles, self.stats.instrs_generated);
        self.trace.rec(
            EventKind::GeExecBegin,
            point,
            kh,
            vm.stats.total_cycles(),
            0,
            0,
        );
        self.live_event(
            EventKind::GeExecBegin,
            point,
            &key[1..],
            vm.stats.total_cycles(),
            0,
            0,
        );
        let shared = Arc::clone(&self.shared);
        let mut env = SpecEnv {
            staged: &shared.staged,
            costs: shared.costs,
            budget: shared.opts.spec_budget,
            stats: &mut self.stats,
            trace: &mut self.trace,
        };
        let mut host = SharedSiteHost { shared: &shared };
        let (f, native_art) =
            GeExecutor::run(&mut env, &mut host, point, site, store, d, module, vm)?;
        vm.flush_icache();
        let install = shared.costs.install;
        self.charge(vm, install);
        if self.native_on() {
            // The GE path lowered during emission when the staged config
            // asked for it; lower the finished code otherwise.
            let art = native_art.or_else(|| lower_func(module.func(f)));
            self.install_native(point, f, art);
        }
        self.trace.rec(
            EventKind::GeExecEnd,
            point,
            kh,
            vm.stats.total_cycles(),
            self.stats.dyncomp_cycles - dyn0,
            self.stats.instrs_generated - instr0,
        );
        self.live_event(
            EventKind::GeExecEnd,
            point,
            &key[1..],
            vm.stats.total_cycles(),
            self.stats.dyncomp_cycles - dyn0,
            self.stats.instrs_generated - instr0,
        );
        if let Some(l) = &self.live {
            // Per-site specialization economics for the sampler's
            // break-even-drift window.
            l.registry
                .note_spec(point, self.stats.dyncomp_cycles - dyn0);
        }
        if let Some(eng) = &shared.policy {
            // Feed the measured cost into the site's break-even
            // threshold estimate.
            eng.note_spec(point, self.stats.dyncomp_cycles - dyn0);
        }
        Ok(f)
    }

    /// Winner path: specialize, publish to the registry and cache, then
    /// resolve and remove the flight (in that order — see the module docs
    /// on memory ordering).
    fn specialize_publish(
        &mut self,
        entry: &SiteEntry,
        key: &[u64],
        args: &[Value],
        flight: &Flight,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<u32, VmError> {
        let out = match self.do_specialize(entry, key, args, module, vm) {
            Ok(fid) => {
                let cf = module.func(fid).clone();
                let gid = {
                    let mut reg = self.shared.registry.write().unwrap();
                    let gid = (self.shared.base_len + reg.len()) as u32;
                    reg.push(Arc::new(cf));
                    gid
                };
                let idx = gid as usize - self.shared.base_len;
                if idx >= self.local_ids.len() {
                    self.local_ids.resize(idx + 1, None);
                }
                self.local_ids[idx] = Some(fid);
                let clock_idx = match &entry.evict {
                    Some(ev) => {
                        if let Some(eng) = &self.shared.policy {
                            // Auto-sizing: revivals observed at this site
                            // grow the effective bound (pre-allocated
                            // headroom, so no reallocation).
                            if let SitePolicy::CacheAllBounded(k) = entry.site.policy {
                                ev.grow_to(eng.cap_for(key[0] as u32, k.max(1) as usize));
                            }
                        }
                        let (ci, evicted) = ev.admit(key);
                        if let Some(old) = evicted {
                            // Outside the clock mutex: see `admit` docs.
                            self.shared.cache.remove(&old);
                            self.stats.cache_evictions += 1;
                            self.shared
                                .stats
                                .cache_evictions
                                .fetch_add(1, Ordering::Relaxed);
                            if self.trace.is_on() {
                                self.trace.rec(
                                    EventKind::CacheEvict,
                                    key[0] as u32,
                                    dyc_obs::key_hash(&old[1..]),
                                    vm.stats.total_cycles(),
                                    u64::from(ci),
                                    0,
                                );
                            }
                            self.live_bump(LiveMetric::Evictions);
                            self.live_event(
                                EventKind::CacheEvict,
                                key[0] as u32,
                                &old[1..],
                                vm.stats.total_cycles(),
                                u64::from(ci),
                                0,
                            );
                        }
                        ci
                    }
                    None => 0,
                };
                self.shared
                    .cache
                    .insert(key.to_vec(), CacheVal { gid, clock_idx });
                self.shared
                    .stats
                    .specializations
                    .fetch_add(1, Ordering::Relaxed);
                self.live_bump(LiveMetric::Specializations);
                Ok(gid)
            }
            Err(e) => Err(e),
        };
        self.shared.inflight.shard(key).lock().unwrap().remove(key);
        flight.resolve(match &out {
            Ok(g) => Ok(*g),
            Err(e) => Err(e.to_string()),
        });
        out
    }

    /// Single-flight miss path: become the winner or follow the policy.
    fn miss(
        &mut self,
        entry: &SiteEntry,
        key: &[u64],
        args: &[Value],
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<MissResult, VmError> {
        // Adaptive-policy gate: decide *whether* to specialize before
        // entering the single-flight protocol. A deferred or throttled
        // miss runs the generic continuation and never takes a flight.
        if self.shared.policy.is_some() {
            let shared = Arc::clone(&self.shared);
            let eng = shared.policy.as_ref().expect("checked above");
            let point = key[0] as u32;
            let entry_site = (point as usize) < shared.staged.entry_sites.len();
            let decision = eng.on_miss(key, entry_site);
            let count = u64::from(eng.count_of(key));
            let trace_on = self.trace.is_on();
            let kh = if trace_on {
                dyc_obs::key_hash(&key[1..])
            } else {
                0
            };
            match decision {
                PolicyDecision::Specialize { promoted } => {
                    if promoted {
                        self.stats.policy_promotes += 1;
                        shared.stats.policy_promotes.fetch_add(1, Ordering::Relaxed);
                        self.live_bump(LiveMetric::PolicyPromotes);
                        self.live_event(
                            EventKind::PolicyPromote,
                            point,
                            &key[1..],
                            vm.stats.total_cycles(),
                            count,
                            0,
                        );
                        if trace_on {
                            self.trace.rec(
                                EventKind::PolicyPromote,
                                point,
                                kh,
                                vm.stats.total_cycles(),
                                count,
                                0,
                            );
                        }
                    }
                }
                PolicyDecision::Defer => {
                    self.stats.policy_defers += 1;
                    shared.stats.policy_defers.fetch_add(1, Ordering::Relaxed);
                    self.live_bump(LiveMetric::PolicyDefers);
                    self.live_event(
                        EventKind::PolicyDefer,
                        point,
                        &key[1..],
                        vm.stats.total_cycles(),
                        count,
                        0,
                    );
                    if trace_on {
                        self.trace.rec(
                            EventKind::PolicyDefer,
                            point,
                            kh,
                            vm.stats.total_cycles(),
                            count,
                            0,
                        );
                    }
                    return Ok(MissResult::Generic(shared.generic_continuation(entry)));
                }
                PolicyDecision::Throttle => {
                    self.stats.policy_throttled += 1;
                    shared
                        .stats
                        .policy_throttled
                        .fetch_add(1, Ordering::Relaxed);
                    self.live_bump(LiveMetric::PolicyThrottles);
                    self.live_event(
                        EventKind::PolicyThrottle,
                        point,
                        &key[1..],
                        vm.stats.total_cycles(),
                        count,
                        0,
                    );
                    if trace_on {
                        self.trace.rec(
                            EventKind::PolicyThrottle,
                            point,
                            kh,
                            vm.stats.total_cycles(),
                            count,
                            0,
                        );
                    }
                    return Ok(MissResult::Generic(shared.generic_continuation(entry)));
                }
            }
        }
        enum Role {
            Winner(Arc<Flight>),
            Racer(Arc<Flight>),
            Published(u32),
        }
        let role = {
            let mut map = self.shared.inflight.shard(key).lock().unwrap();
            if let Some(fl) = map.get(key) {
                Role::Racer(Arc::clone(fl))
            } else if let Some(v) = self.shared.cache.get(key).value {
                // Published between our probe and taking the shard lock.
                Role::Published(v.gid)
            } else {
                let fl = Arc::new(Flight::new());
                map.insert(key.to_vec(), Arc::clone(&fl));
                Role::Winner(fl)
            }
        };
        match role {
            Role::Published(gid) => {
                self.shared
                    .stats
                    .single_flight_races
                    .fetch_add(1, Ordering::Relaxed);
                self.live_bump(LiveMetric::FlightRaces);
                Ok(MissResult::Spec(gid))
            }
            Role::Winner(fl) => {
                vm.stats.dispatch_misses += 1;
                self.specialize_publish(entry, key, args, &fl, module, vm)
                    .map(MissResult::Spec)
            }
            Role::Racer(fl) => match self.shared.opts.miss_policy {
                MissPolicy::Block => {
                    self.stats.single_flight_waits += 1;
                    self.shared
                        .stats
                        .single_flight_waits
                        .fetch_add(1, Ordering::Relaxed);
                    self.live_bump(LiveMetric::FlightWaits);
                    let t0 = (self.trace.is_on() || self.live.is_some()).then(now_ns);
                    let res = fl.wait();
                    if let Some(t0) = t0 {
                        let waited = now_ns().saturating_sub(t0);
                        if self.trace.is_on() {
                            self.trace.rec(
                                EventKind::FlightWait,
                                key[0] as u32,
                                dyc_obs::key_hash(&key[1..]),
                                vm.stats.total_cycles(),
                                waited,
                                0,
                            );
                        }
                        self.live_event(
                            EventKind::FlightWait,
                            key[0] as u32,
                            &key[1..],
                            vm.stats.total_cycles(),
                            waited,
                            0,
                        );
                    }
                    match res {
                        Ok(gid) => Ok(MissResult::Spec(gid)),
                        Err(m) => Err(VmError::Dispatch(m)),
                    }
                }
                MissPolicy::Fallback => {
                    self.stats.single_flight_fallbacks += 1;
                    self.shared
                        .stats
                        .single_flight_fallbacks
                        .fetch_add(1, Ordering::Relaxed);
                    self.live_bump(LiveMetric::FlightFallbacks);
                    if self.trace.is_on() {
                        self.trace.rec(
                            EventKind::FlightFallback,
                            key[0] as u32,
                            dyc_obs::key_hash(&key[1..]),
                            vm.stats.total_cycles(),
                            0,
                            0,
                        );
                    }
                    self.live_event(
                        EventKind::FlightFallback,
                        key[0] as u32,
                        &key[1..],
                        vm.stats.total_cycles(),
                        0,
                        0,
                    );
                    Ok(MissResult::Generic(self.shared.generic_continuation(entry)))
                }
            },
        }
    }
}

impl DispatchHandler for ThreadRuntime {
    fn dispatch(
        &mut self,
        point: u32,
        args: &[Value],
        out_args: &mut Vec<Value>,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<DispatchOutcome, VmError> {
        let entry = self.site_entry(point);
        let site = &entry.site;
        if args.len() != site.arg_vars.len() {
            return Err(VmError::Dispatch(format!(
                "site {point}: expected {} args, got {}",
                site.arg_vars.len(),
                args.len()
            )));
        }

        // Build the shared-cache key: [site, promoted key bits...]
        // (cache-one-unchecked sites key on the site alone).
        let mut key = std::mem::take(&mut self.scratch_key);
        key.clear();
        if key.capacity() < site.key_pos.len() + 1 {
            self.stats.dispatch_allocs += 1;
        }
        key.push(u64::from(point));
        if site.policy != SitePolicy::CacheOneUnchecked {
            key.extend(site.key_pos.iter().map(|&p| args[p].key_bits()));
        }

        // Hit path: one shard read-lock, metered per policy with the same
        // cost constants as the single-threaded dispatcher.
        let probed = self.shared.cache.get(&key);
        let cost = match site.policy {
            SitePolicy::CacheOneUnchecked => {
                let c = self.shared.costs.dispatch_unchecked;
                self.charge_dispatch(vm, c);
                self.stats.dispatch_unchecked += 1;
                c
            }
            SitePolicy::CacheIndexed => {
                let c = self.shared.costs.dispatch_indexed;
                self.charge_dispatch(vm, c);
                self.stats.dispatch_indexed += 1;
                c
            }
            SitePolicy::CacheAll | SitePolicy::CacheAllBounded(_) => {
                let c = self
                    .shared
                    .costs
                    .hashed_dispatch(key.len() - 1, probed.probes);
                self.charge_dispatch(vm, c);
                self.stats.dispatch_hashed += 1;
                self.stats.dispatch_probes += u64::from(probed.probes);
                c
            }
        };

        // Trace tags: events record into the preallocated per-thread ring,
        // so the warm path stays allocation-free even while tracing.
        let trace_on = self.trace.is_on();
        let kh = if trace_on {
            dyc_obs::key_hash(&key[1..])
        } else {
            0
        };
        let hashed = matches!(
            site.policy,
            SitePolicy::CacheAll | SitePolicy::CacheAllBounded(_)
        );
        let probes = if hashed { u64::from(probed.probes) } else { 0 };

        let gid = match probed.value {
            Some(v) => {
                if let Some(l) = &self.live {
                    l.slot.add(LiveMetric::Dispatches, 1);
                    l.slot.add(LiveMetric::Hits, 1);
                }
                if let Some(eng) = &self.shared.policy {
                    eng.note_hit(point);
                }
                if let Some(ev) = &entry.evict {
                    ev.touch(v.clock_idx);
                }
                if trace_on {
                    let kind = match site.policy {
                        SitePolicy::CacheOneUnchecked => EventKind::DispatchUnchecked,
                        SitePolicy::CacheIndexed => EventKind::DispatchIndexed,
                        _ => EventKind::DispatchHit,
                    };
                    self.trace
                        .rec(kind, point, kh, vm.stats.total_cycles(), cost, probes);
                }
                v.gid
            }
            None => {
                if trace_on {
                    self.trace.rec(
                        EventKind::DispatchMiss,
                        point,
                        kh,
                        vm.stats.total_cycles(),
                        cost,
                        probes,
                    );
                }
                self.live_bump(LiveMetric::Dispatches);
                self.live_bump(LiveMetric::Misses);
                self.live_event(
                    EventKind::DispatchMiss,
                    point,
                    &key[1..],
                    vm.stats.total_cycles(),
                    cost,
                    probes,
                );
                // Miss-path latency: miss detection → runnable code
                // (specialize, wait, or continuation build), recorded in
                // the pre-allocated per-thread histogram. Hit dispatches
                // never reach this arm, so the warm path reads no clock.
                let lat0 = (self.miss_hist.is_some() || self.live.is_some()).then(now_ns);
                let missed = self.miss(&entry, &key, args, module, vm);
                if let Some(t0) = lat0 {
                    let d = now_ns().saturating_sub(t0);
                    if let Some(h) = self.miss_hist.as_mut() {
                        h.record(d);
                    }
                    if let Some(l) = &self.live {
                        l.slot.record_miss_ns(d);
                    }
                }
                match missed? {
                    MissResult::Spec(gid) => gid,
                    MissResult::Generic(gid) => {
                        // The generic continuation takes every dispatch
                        // argument (nothing is baked in but the base store).
                        let fid = self.materialize(point, gid, module, vm);
                        self.scratch_key = key;
                        out_args.extend_from_slice(args);
                        return self.finish_invoke(fid, out_args, module, vm);
                    }
                }
            }
        };

        let fid = self.materialize(point, gid, module, vm);
        self.scratch_key = key;
        out_args.extend(entry.site.dyn_pos.iter().map(|&i| args[i]));
        self.finish_invoke(fid, out_args, module, vm)
    }
}

impl NativeDispatch for ThreadRuntime {
    fn native_dispatch(
        &mut self,
        point: u32,
        args: &[Value],
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<Option<Value>, VmError> {
        // Mirror of the interpreter's `Dispatch` arm: count it, run the
        // handler, then either take the completed value (the callee ran
        // natively too) or interpret the specialized function.
        vm.stats.dispatches += 1;
        let mut out_args = Vec::new();
        match self.dispatch(point, args, &mut out_args, module, vm)? {
            DispatchOutcome::Completed { value } => Ok(value),
            DispatchOutcome::Invoke { func } => vm.call_with_handler(module, self, func, &out_args),
        }
    }

    fn native_call(
        &mut self,
        func: FuncId,
        args: &[Value],
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<Option<Value>, VmError> {
        if let Some(entry) = self.native.entry(func) {
            return exec_entry(&entry, args, self, module, vm);
        }
        vm.call_with_handler(module, self, func, args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyc_bta::OptConfig;
    use dyc_vm::CostModel;

    fn staged(src: &str) -> StagedProgram {
        let mut ir = dyc_ir::lower_program(&dyc_lang::parse_program(src).unwrap()).unwrap();
        dyc_ir::opt::optimize_program(&mut ir);
        dyc_stage::stage_program(ir, OptConfig::all())
    }

    const POWER: &str = "int pow(int b, int e) { make_static(e);
        int r = 1; while (e > 0) { r = r * b; e = e - 1; } return r; }";

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn shared_runtime_is_send_and_sync() {
        assert_send_sync::<SharedRuntime>();
        assert_send_sync::<ThreadRuntime>();
    }

    #[test]
    fn sharded_cache_basics() {
        let c: ShardedCache<u32> = ShardedCache::new(3); // rounds to 4
        assert_eq!(c.n_shards(), 4);
        assert!(c.is_empty());
        for i in 0..100u64 {
            c.insert(vec![i % 7, i], i as u32);
        }
        assert_eq!(c.len(), 100);
        for i in 0..100u64 {
            assert_eq!(c.get(&[i % 7, i]).value, Some(i as u32));
        }
        assert_eq!(c.remove(&[0, 0]), Some(0));
        assert_eq!(c.get(&[0, 0]).value, None);
        // Purge everything with site prefix 3.
        let purged = c.purge_prefix(3);
        assert!(purged > 0);
        assert!(c.snapshot().iter().all(|(k, _)| k[0] != 3));
        let m = c.meters();
        assert_eq!(m.len(), 4);
        assert!(m.iter().map(|s| s.lookups).sum::<u64>() >= 101);
    }

    #[test]
    fn single_thread_end_to_end_with_cache_hits() {
        let shared = Arc::new(SharedRuntime::new(staged(POWER)));
        let mut t = SharedRuntime::thread(&shared);
        let mut module = shared.base_module();
        let mut vm = Vm::new(CostModel::alpha21164());
        let id = module.func_by_name("pow").unwrap();
        for _ in 0..4 {
            let out = vm
                .call_with_handler(&mut module, &mut t, id, &[Value::I(3), Value::I(4)])
                .unwrap();
            assert_eq!(out, Some(Value::I(81)));
        }
        let s = shared.stats();
        assert_eq!(s.specializations, 1);
        assert_eq!(s.published, 1);
        assert_eq!(s.single_flight_suppressed(), 0);
        assert_eq!(t.stats.specializations, 1);
        assert_eq!(t.stats.runtime_bta_calls, 0);
        // New key, new specialization.
        let out = vm
            .call_with_handler(&mut module, &mut t, id, &[Value::I(2), Value::I(10)])
            .unwrap();
        assert_eq!(out, Some(Value::I(1024)));
        assert_eq!(shared.stats().specializations, 2);
    }

    #[test]
    fn threads_race_without_duplicate_specializations() {
        let shared = Arc::new(SharedRuntime::new(staged(POWER)));
        let n = 8;
        let barrier = Arc::new(std::sync::Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut t = SharedRuntime::thread(&shared);
                    let mut module = shared.base_module();
                    let mut vm = Vm::new(CostModel::alpha21164());
                    let id = module.func_by_name("pow").unwrap();
                    barrier.wait();
                    for e in [4i64, 4, 7, 7, 4, 9] {
                        let out = vm
                            .call_with_handler(&mut module, &mut t, id, &[Value::I(2), Value::I(e)])
                            .unwrap();
                        assert_eq!(out, Some(Value::I(1i64 << e)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Three distinct keys → exactly three specializations globally,
        // no matter how the eight threads interleaved.
        let s = shared.stats();
        assert_eq!(s.specializations, 3);
        assert_eq!(s.published, 3);
        assert_eq!(shared.cache_snapshot().len(), 3);
    }

    #[test]
    fn fallback_policy_produces_correct_results_under_races() {
        let shared = Arc::new(SharedRuntime::with_options(
            staged(POWER),
            SharedOptions {
                miss_policy: MissPolicy::Fallback,
                ..SharedOptions::default()
            },
        ));
        let n = 8;
        let barrier = Arc::new(std::sync::Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut t = SharedRuntime::thread(&shared);
                    let mut module = shared.base_module();
                    let mut vm = Vm::new(CostModel::alpha21164());
                    let id = module.func_by_name("pow").unwrap();
                    barrier.wait();
                    for e in [5i64, 5, 8, 8, 5] {
                        let out = vm
                            .call_with_handler(&mut module, &mut t, id, &[Value::I(2), Value::I(e)])
                            .unwrap();
                        assert_eq!(out, Some(Value::I(1i64 << e)));
                    }
                    t.stats.single_flight_fallbacks
                })
            })
            .collect();
        let fallbacks: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let s = shared.stats();
        assert_eq!(s.specializations, 2); // two distinct keys
        assert_eq!(s.single_flight_fallbacks, fallbacks);
        // Whether any race actually happened is scheduling-dependent, but
        // a compiled continuation implies at least one fallback occurred.
        assert!(s.generic_continuations <= 1);
        assert!((s.generic_continuations == 0) == (fallbacks == 0));
    }

    #[test]
    fn generic_continuation_matches_specialized_results() {
        let shared = Arc::new(SharedRuntime::new(staged(POWER)));
        let mut t = SharedRuntime::thread(&shared);
        let mut module = shared.base_module();
        let mut vm = Vm::new(CostModel::alpha21164());
        // Force-build the continuation for the entry site and run it with
        // the full dispatch arguments [b, e] (arg order).
        let sites = shared.sites.read().unwrap();
        let entry = Arc::clone(&sites[0]);
        drop(sites);
        let gid = shared.generic_continuation(&entry);
        let fid = t.materialize(0, gid, &mut module, &mut vm);
        for (b, e) in [(3i64, 4i64), (2, 0), (5, 3), (-2, 5)] {
            let args: Vec<Value> = entry
                .site
                .arg_vars
                .iter()
                .map(|v| {
                    // pow's arg_vars are its two params in order (b, e).
                    let idx = entry.site.arg_vars.iter().position(|x| x == v).unwrap();
                    if idx == 0 {
                        Value::I(b)
                    } else {
                        Value::I(e)
                    }
                })
                .collect();
            let generic = vm.call(&mut module, fid, &args).unwrap();
            assert_eq!(generic, Some(Value::I(b.pow(e as u32))), "pow({b},{e})");
        }
        // Only one continuation is ever compiled per site.
        assert_eq!(shared.generic_continuation(&entry), gid);
        assert_eq!(shared.stats().generic_continuations, 1);
    }

    #[test]
    fn bounded_sites_evict_and_respecialize() {
        let src = "int pow(int b, int e) { make_static(e: cache_all(2));
            int r = 1; while (e > 0) { r = r * b; e = e - 1; } return r; }";
        let shared = Arc::new(SharedRuntime::new(staged(src)));
        let mut t = SharedRuntime::thread(&shared);
        let mut module = shared.base_module();
        let mut vm = Vm::new(CostModel::alpha21164());
        let id = module.func_by_name("pow").unwrap();
        let mut run = |e: i64| {
            let out = vm
                .call_with_handler(&mut module, &mut t, id, &[Value::I(2), Value::I(e)])
                .unwrap();
            assert_eq!(out, Some(Value::I(1i64 << e)));
        };
        run(1);
        run(2);
        run(3); // capacity 2: someone is evicted
        let s = shared.stats();
        assert_eq!(s.specializations, 3);
        assert_eq!(s.cache_evictions, 1);
        assert!(shared.cache_snapshot().len() <= 2);
        // The evicted key re-specializes correctly (never a stale id).
        let before = shared.stats().specializations;
        run(1);
        run(2);
        run(3);
        let after = shared.stats().specializations;
        assert!(after > before, "an evicted key must re-specialize");
        assert!(shared.cache_snapshot().len() <= 2);
    }

    #[test]
    fn invalidate_site_forces_respecialization() {
        let shared = Arc::new(SharedRuntime::new(staged(POWER)));
        let mut t = SharedRuntime::thread(&shared);
        let mut module = shared.base_module();
        let mut vm = Vm::new(CostModel::alpha21164());
        let id = module.func_by_name("pow").unwrap();
        let args = [Value::I(3), Value::I(4)];
        vm.call_with_handler(&mut module, &mut t, id, &args)
            .unwrap();
        assert_eq!(shared.stats().specializations, 1);
        shared.invalidate_site(0);
        assert!(shared.cache_snapshot().is_empty());
        let out = vm
            .call_with_handler(&mut module, &mut t, id, &args)
            .unwrap();
        assert_eq!(out, Some(Value::I(81)));
        let s = shared.stats();
        assert_eq!(s.specializations, 2);
        assert_eq!(s.cache_invalidations, 1);
    }

    #[test]
    fn steady_state_hits_do_not_allocate_in_dispatch() {
        let shared = Arc::new(SharedRuntime::new(staged(POWER)));
        let mut t = SharedRuntime::thread(&shared);
        let mut module = shared.base_module();
        let mut vm = Vm::new(CostModel::alpha21164());
        let id = module.func_by_name("pow").unwrap();
        let args = [Value::I(3), Value::I(4)];
        // Warm up: specialize + materialize + grow the scratch key.
        vm.call_with_handler(&mut module, &mut t, id, &args)
            .unwrap();
        vm.call_with_handler(&mut module, &mut t, id, &args)
            .unwrap();
        let allocs = t.stats.dispatch_allocs;
        for _ in 0..50 {
            vm.call_with_handler(&mut module, &mut t, id, &args)
                .unwrap();
        }
        assert_eq!(
            t.stats.dispatch_allocs, allocs,
            "hit path must not allocate"
        );
    }

    #[test]
    fn conc_snapshot_covers_every_meter() {
        // Size accounting: adding an atomic to ConcStats or a field to
        // ConcSnapshot without updating the other (and `stats()`) trips
        // one of these, which forces the round-trip list below — and
        // therefore the snapshot plumbing — to stay complete.
        assert_eq!(std::mem::size_of::<ConcStats>(), 14 * 8);
        assert_eq!(
            std::mem::size_of::<ConcSnapshot>(),
            std::mem::size_of::<Vec<ShardMeter>>() + 15 * 8
        );
        let shared = SharedRuntime::new(staged(POWER));
        let fields: [&AtomicU64; 14] = [
            &shared.stats.specializations,
            &shared.stats.single_flight_waits,
            &shared.stats.single_flight_fallbacks,
            &shared.stats.single_flight_races,
            &shared.stats.cache_evictions,
            &shared.stats.cache_invalidations,
            &shared.stats.generic_continuations,
            &shared.stats.cache_warm_loads,
            &shared.stats.cache_warm_rejects,
            &shared.stats.native_installs,
            &shared.stats.native_fallbacks,
            &shared.stats.policy_defers,
            &shared.stats.policy_promotes,
            &shared.stats.policy_throttled,
        ];
        for (i, f) in fields.iter().enumerate() {
            f.store(i as u64 + 1, Ordering::Relaxed);
        }
        let s = shared.stats();
        let got = [
            s.specializations,
            s.single_flight_waits,
            s.single_flight_fallbacks,
            s.single_flight_races,
            s.cache_evictions,
            s.cache_invalidations,
            s.generic_continuations,
            s.cache_warm_loads,
            s.cache_warm_rejects,
            s.native_installs,
            s.native_fallbacks,
            s.policy_defers,
            s.policy_promotes,
            s.policy_throttled,
        ];
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1, "meter {i} dropped by stats()");
        }
        assert_eq!(s.published, 0);
    }

    #[test]
    fn adaptive_policy_defers_then_promotes() {
        let shared = Arc::new(SharedRuntime::with_options(
            staged(POWER),
            SharedOptions {
                policy: PolicyMode::Adaptive,
                ..SharedOptions::default()
            },
        ));
        let mut t = SharedRuntime::thread(&shared);
        let mut module = shared.base_module();
        let mut vm = Vm::new(CostModel::alpha21164());
        let id = module.func_by_name("pow").unwrap();
        let run = |t: &mut ThreadRuntime, module: &mut Module, vm: &mut Vm| {
            vm.call_with_handler(module, t, id, &[Value::I(3), Value::I(4)])
                .unwrap()
        };
        // First dispatch: below the cold-start threshold (2) → the
        // generic continuation runs, with the right answer.
        assert_eq!(run(&mut t, &mut module, &mut vm), Some(Value::I(81)));
        let s = shared.stats();
        assert_eq!(
            (s.specializations, s.policy_defers, s.generic_continuations),
            (0, 1, 1)
        );
        // Second: crosses the threshold → promoted and specialized.
        assert_eq!(run(&mut t, &mut module, &mut vm), Some(Value::I(81)));
        let s = shared.stats();
        assert_eq!((s.specializations, s.policy_promotes), (1, 1));
        // Third: a plain cache hit.
        assert_eq!(run(&mut t, &mut module, &mut vm), Some(Value::I(81)));
        assert_eq!(shared.stats().specializations, 1);
        // Per-thread meters agree with the global atomics.
        assert_eq!((t.stats.policy_defers, t.stats.policy_promotes), (1, 1));
    }

    #[test]
    fn adaptive_policy_counts_exactly_under_contention() {
        let shared = Arc::new(SharedRuntime::with_options(
            staged(POWER),
            SharedOptions {
                policy: PolicyMode::Adaptive,
                ..SharedOptions::default()
            },
        ));
        let n = 8;
        let barrier = Arc::new(std::sync::Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut t = SharedRuntime::thread(&shared);
                    let mut module = shared.base_module();
                    let mut vm = Vm::new(CostModel::alpha21164());
                    let id = module.func_by_name("pow").unwrap();
                    barrier.wait();
                    for _ in 0..50 {
                        let out = vm
                            .call_with_handler(&mut module, &mut t, id, &[Value::I(2), Value::I(6)])
                            .unwrap();
                        assert_eq!(out, Some(Value::I(64)));
                    }
                    (t.stats.policy_defers, t.stats.policy_promotes)
                })
            })
            .collect();
        let (mut defers, mut promotes) = (0u64, 0u64);
        for h in handles {
            let (d, p) = h.join().unwrap();
            defers += d;
            promotes += p;
        }
        // Every per-key decision is serialized by the engine's map
        // mutex, so for one shared key exactly one miss defers (count 1)
        // and exactly one promotes (count 2), no matter how the eight
        // threads interleave — and single-flight still collapses the
        // post-promotion races into one specialization.
        let s = shared.stats();
        assert_eq!((s.policy_defers, s.policy_promotes), (1, 1));
        assert_eq!((defers, promotes), (1, 1));
        assert_eq!(s.specializations, 1);
        assert_eq!(s.policy_throttled, 0);
    }

    #[test]
    fn adaptive_grows_bounded_caps_to_fit_the_working_set() {
        let src = "int pow(int b, int e) { make_static(e: cache_all(2));
            int r = 1; while (e > 0) { r = r * b; e = e - 1; } return r; }";
        let shared = Arc::new(SharedRuntime::with_options(
            staged(src),
            SharedOptions {
                policy: PolicyMode::Adaptive,
                ..SharedOptions::default()
            },
        ));
        let mut t = SharedRuntime::thread(&shared);
        let mut module = shared.base_module();
        let mut vm = Vm::new(CostModel::alpha21164());
        let id = module.func_by_name("pow").unwrap();
        // Working set of 3 cycled through a declared bound of 2: each
        // eviction's victim comes back (a revival), growing the
        // effective cap until all three variants are co-resident.
        for _round in 0..6 {
            for e in [1i64, 2, 3] {
                let out = vm
                    .call_with_handler(&mut module, &mut t, id, &[Value::I(2), Value::I(e)])
                    .unwrap();
                assert_eq!(out, Some(Value::I(1i64 << e)));
            }
        }
        assert_eq!(shared.cache_snapshot().len(), 3);
        // Steady state: a further round is all hits — no re-specialization,
        // no eviction (impossible under the fixed cap of 2).
        let s0 = shared.stats();
        for e in [1i64, 2, 3] {
            vm.call_with_handler(&mut module, &mut t, id, &[Value::I(2), Value::I(e)])
                .unwrap();
        }
        let s1 = shared.stats();
        assert_eq!(s1.specializations, s0.specializations);
        assert_eq!(s1.cache_evictions, s0.cache_evictions);
    }
}
