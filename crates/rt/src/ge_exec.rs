//! The staged generating-extension executor — the run-time half of true
//! staging.
//!
//! Where the online `Specializer` re-derives
//! binding times, liveness, and unroll legality on every specialization,
//! this executor just **interprets a precompiled GE program**
//! ([`dyc_stage::GeProgram`], built once at static compile time): a flat
//! list of ops per *division* (program point + static-variable set), with
//! all decisions that depend only on the set already taken. What remains
//! at run time is exactly the value-dependent work (§2.1's "the only
//! remaining work is to execute the static computations and copy the
//! pre-optimized templates"):
//!
//! * executing `Eval` ops against the static store and live VM state,
//! * copying fused `EmitTemplate` runs — `extend_from_slice` plus a hole-
//!   patch loop — after checking their value guards,
//! * filling holes while emitting unfused `EmitHole` templates (with
//!   dynamic zero/copy propagation and strength reduction on the actual
//!   values),
//! * folding `StaticBr`/`StaticSwitch` on store values — complete loop
//!   unrolling — and memoizing units by `(division, value vector)`,
//! * materializing demotions listed in the precomputed `EdgePlan`s.
//!
//! It performs **zero** run-time binding-time classifications or liveness
//! queries (`RtStats::runtime_bta_calls` stays untouched here) and emits
//! code byte-identical to the online path, because all value-dependent
//! machinery is the shared `Emitter`, driven in the same order. Units
//! are interned to dense ids on first sight, so the worklist, labels, and
//! edge instrumentation do no repeated key hashing.

use crate::costs::DynCosts;
use crate::emitter::{mov_const, opnd_value, Emitted, Emitter, Opnd, RegSet};
use crate::native::NativeArtifact;
use crate::runtime::{Site, Store};
use crate::sink::{InstallSink, NativeSink};
use crate::stats::RtStats;
use dyc_ir::{BlockId, VReg};
use dyc_obs::{EventKind, Trace};
use dyc_stage::{
    ibin_special_case, AbsAlias, EdgePlan, GeDivision, GeFunc, GeOp, GeTerm, Guard, PatchOp, Slot,
    StagedProgram, Template,
};
use dyc_vm::{Cc, FuncId, Instr, Module, Operand, Reg, Value, Vm, VmError};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Where freshly created internal promotion sites are registered.
///
/// The GE executor itself is host-agnostic: the single-threaded
/// [`crate::Runtime`] appends to its private site vector, while the
/// concurrent runtime ([`crate::concurrent`]) appends to an `Arc`-shared
/// site table under a write lock. Returns the new site's dispatch point
/// id — the id is embedded in the emitted `Dispatch` instruction, so
/// hosts must hand out ids from the same numbering the dispatch handler
/// resolves later.
pub(crate) trait SpecHost {
    /// Register `site`, returning its dispatch point id.
    fn add_site(&mut self, site: Site) -> u32;
}

/// The read/metering context a specialization runs against, split off
/// from the runtime so the executor never borrows a whole `&mut Runtime`
/// (the concurrent runtime has no such object to lend).
pub(crate) struct SpecEnv<'a> {
    /// The staged program (GE programs, IR, config).
    pub staged: &'a StagedProgram,
    /// Cost constants.
    pub costs: DynCosts,
    /// Specialization instruction budget.
    pub budget: u64,
    /// Statistics sink (thread-local in the concurrent runtime).
    pub stats: &'a mut RtStats,
    /// Event sink (a no-op unless the owning runtime enabled tracing).
    pub trace: &'a mut Trace,
}

impl SpecEnv<'_> {
    pub(crate) fn charge(&mut self, vm: &mut Vm, cycles: u64) {
        self.stats.dyncomp_cycles += cycles;
        vm.stats.dyncomp_cycles += cycles;
    }
}

/// Unit identity in the staged path: the division (which *is* the program
/// point plus static-variable set, interned at stage time) plus the
/// concrete values, in the division's sorted variable order. Bijective
/// with the online path's `(block, start, sorted store)` key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GeKey {
    division: u32,
    vals: Vec<u64>,
}

fn ge_key(division: u32, store: &Store) -> GeKey {
    GeKey {
        division,
        vals: store.values().map(|v| v.key_bits()).collect(),
    }
}

/// The flat GE-program executor. See the module docs for what it stages
/// away; it is driven by the dispatch handlers ([`crate::Runtime`] and
/// the concurrent runtime) on cache misses and is not invoked directly.
///
/// # Examples
///
/// The executor is exercised through the staged dynamic path; the
/// `runtime_bta_calls` counter proves no binding-time analysis ran at
/// dynamic-compile time:
///
/// ```
/// use dyc_bta::OptConfig;
/// use dyc_rt::Runtime;
/// use dyc_vm::{CostModel, Value, Vm};
///
/// let src = "int pow(int b, int e) { make_static(e);
///            int r = 1; while (e > 0) { r = r * b; e = e - 1; } return r; }";
/// let mut ir = dyc_ir::lower_program(&dyc_lang::parse_program(src).unwrap()).unwrap();
/// dyc_ir::opt::optimize_program(&mut ir);
/// let staged = dyc_stage::stage_program(ir, OptConfig::all());
/// let mut module = staged.build_module();
/// let mut rt = Runtime::new(staged);
/// let mut vm = Vm::new(CostModel::alpha21164());
/// let id = module.func_by_name("pow").unwrap();
/// let out = vm
///     .call_with_handler(&mut module, &mut rt, id, &[Value::I(3), Value::I(4)])
///     .unwrap();
/// assert_eq!(out, Some(Value::I(81)));
/// assert_eq!(rt.stats.specializations, 1);
/// assert_eq!(rt.stats.runtime_bta_calls, 0); // all BTA happened at stage time
/// ```
pub struct GeExecutor {
    gef: Arc<GeFunc>,
    fidx: usize,
    em: Emitter<GeKey, InstallSink>,
    worklist: Vec<(u32, Store)>,
    budget: u64,
    /// The dispatch point being specialized (tags trace events).
    point: u32,
    /// Hash of the entry store's value vector (tags trace events).
    key_hash: u64,
    /// Division of each interned unit id (parallel to the emitter's
    /// label table).
    unit_division: Vec<u32>,
    // Instrumentation (mirrors the online specializer exactly).
    header_units: HashMap<BlockId, HashSet<u32>>,
    unit_edges: Vec<(u32, u32)>,
    cur_unit: Option<u32>,
    division_sets: HashMap<BlockId, HashSet<Vec<u32>>>,
}

impl GeExecutor {
    /// Specialize `site` for the given store by executing its function's
    /// GE program from `division`. New internal promotion sites are
    /// registered through `host`; everything read or metered comes from
    /// `env`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run(
        env: &mut SpecEnv<'_>,
        host: &mut dyn SpecHost,
        point: u32,
        site: &Site,
        store: Store,
        division: u32,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<(FuncId, Option<NativeArtifact>), VmError> {
        let gef = env.staged.ge.funcs[site.func]
            .as_ref()
            .expect("site carries a division only for staged functions")
            .clone();
        let fname = env.staged.ir.funcs[site.func].name.clone();
        let key_hash = if env.trace.is_on() {
            let vals: Vec<u64> = store.values().map(|v| v.key_bits()).collect();
            dyc_obs::key_hash(&vals)
        } else {
            0
        };
        let mut ex = GeExecutor {
            fidx: site.func,
            em: Emitter::new(env.staged.cfg, gef.float_vreg.clone()),
            worklist: Vec::new(),
            budget: env.budget,
            point,
            key_hash,
            unit_division: Vec::new(),
            header_units: HashMap::new(),
            unit_edges: Vec::new(),
            cur_unit: None,
            division_sets: HashMap::new(),
            gef,
        };
        if env.staged.cfg.native {
            // Upgrade the install backend: lower each sealed
            // instruction to x86-64 bytes as it lands. The VM mirror
            // stays authoritative and byte-identical either way.
            ex.em.sink = InstallSink::Native(NativeSink::default());
        }

        // Dynamic pass-through parameters, in arg order.
        let dyn_params: Vec<VReg> = site
            .arg_vars
            .iter()
            .filter(|v| !store.contains_key(v))
            .copied()
            .collect();
        for (i, v) in dyn_params.iter().enumerate() {
            ex.em.set_reg(*v, i as u32);
        }
        ex.em.next_reg = dyn_params.len() as u32;

        let entry = ex.unit_id(division, &store);
        ex.worklist.push((entry, store));
        while let Some((id, st)) = ex.worklist.pop() {
            if ex.em.sealed(id) {
                continue;
            }
            ex.emit_chain(id, st, env, host, module, vm)?;
        }

        ex.em.patch_fixups(&env.costs);

        for (h, units) in &ex.header_units {
            if units.len() < 2 {
                continue;
            }
            env.stats.loops_unrolled += 1;
            if ex.loop_is_multiway(*h, units) {
                env.stats.multi_way_unroll = true;
            }
        }

        env.stats.divisions_observed +=
            ex.division_sets.values().filter(|s| s.len() >= 2).count() as u64;
        env.stats.instrs_generated += ex.em.emitted() as u64;
        env.stats.ge_exec_cycles += ex.em.exec_cycles;
        env.stats.emit_cycles += ex.em.emit_cycles;
        let cycles = ex.em.total_cycles();
        env.charge(vm, cycles);

        let name = format!("{fname}$spec{}", module.len());
        let mut cf = dyc_vm::CodeFunc::new(name, dyn_params.len(), ex.em.next_reg.max(1) as usize);
        let (code, native) = ex.em.take_install();
        cf.code = code;
        Ok((module.add_func(cf), native))
    }

    /// Record a seal-time event tagged with this specialization's point
    /// and key hash.
    fn trace_rec(&self, env: &mut SpecEnv<'_>, kind: EventKind, cycle: u64, a: u64) {
        env.trace.rec(kind, self.point, self.key_hash, cycle, a, 0);
    }

    /// Intern the unit `(division, store values)`, recording the id's
    /// division on first sight.
    fn unit_id(&mut self, division: u32, store: &Store) -> u32 {
        let key = ge_key(division, store);
        let id = self.em.intern(&key);
        if id as usize == self.unit_division.len() {
            self.unit_division.push(division);
        }
        id
    }

    fn division_of(&self, id: u32) -> u32 {
        self.unit_division[id as usize]
    }

    fn emit_chain(
        &mut self,
        id: u32,
        store: Store,
        env: &mut SpecEnv<'_>,
        host: &mut dyn SpecHost,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<(), VmError> {
        let mut cur = Some((id, store));
        while let Some((id, store)) = cur.take() {
            if self.em.sealed(id) {
                break;
            }
            if self.em.emitted() as u64 > self.budget {
                return Err(VmError::Dispatch(
                    "specialization exceeded its instruction budget (non-terminating static control flow?)"
                        .into(),
                ));
            }
            let d = &self.gef.divisions[self.division_of(id) as usize];
            let block = d.block;
            if self.gef.loop_headers.contains(&block) && !d.vars.is_empty() {
                self.header_units.entry(block).or_default().insert(id);
            }
            let var_set: Vec<u32> = d.vars.iter().map(|v| v.0).collect();
            self.division_sets.entry(block).or_default().insert(var_set);
            cur = self.emit_unit(id, store, env, host, module, vm)?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn emit_unit(
        &mut self,
        id: u32,
        mut store: Store,
        env: &mut SpecEnv<'_>,
        host: &mut dyn SpecHost,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<Option<(u32, Store)>, VmError> {
        let d: GeDivision = self.gef.divisions[self.division_of(id) as usize].clone();
        self.cur_unit = Some(id);
        let mut rename: HashMap<VReg, Opnd> = HashMap::new();
        let mut scratch: HashMap<u64, Reg> = HashMap::new();
        let mut buf: Vec<Emitted> = Vec::new();
        let costs = env.costs;
        self.em.exec_cycles += costs.per_unit;
        env.stats.units_emitted += 1;
        // Set to false by the first failed template guard: a value hit an
        // emit-time special case the templates preassumed away, so the
        // concrete rename state diverges from what later templates were
        // compiled against. The rest of the unit then re-emits every
        // template's `fallback` ops per-instruction (the pre-fusion path).
        let mut templates_ok = true;

        for op in &d.ops {
            // One table fetch + dispatch per precompiled GE op — the whole
            // per-instruction decision cost of the staged path.
            self.em.exec_cycles += costs.ge_op;
            match op {
                GeOp::Eval(inst) => {
                    self.em.exec_static(
                        inst,
                        &mut store,
                        &mut rename,
                        &costs,
                        env.stats,
                        module,
                        vm,
                    )?;
                }
                GeOp::EmitHole { inst, reads_after } => {
                    let rl = |v: VReg| reads_after.binary_search(&v).is_ok();
                    self.em.emit_dynamic(
                        inst,
                        &rl,
                        &mut store,
                        &mut rename,
                        &mut scratch,
                        &mut buf,
                        &costs,
                        env.stats,
                    );
                }
                GeOp::DemoteMaterialize { vars } => {
                    for v in vars {
                        let val = store
                            .remove(v)
                            .expect("demoted variables are static in their division");
                        let r = self.em.reg_of(*v);
                        buf.push(Emitted {
                            ins: mov_const(r, val),
                            deletable: true,
                            fixup: None,
                            templated: false,
                            patches: 0,
                            shape: 0,
                        });
                    }
                }
                GeOp::EmitTemplate(t) => self.exec_template(
                    t,
                    &mut templates_ok,
                    &mut store,
                    &mut rename,
                    &mut scratch,
                    &mut buf,
                    &costs,
                    env.stats,
                ),
            }
        }

        // Regs that must survive the unit (for dead-assignment elimination).
        let mut live_regs = RegSet::new();
        let mut chain: Option<(u32, Store)> = None;

        if let GeTerm::Promote(p) = &d.term {
            // Internal dynamic-to-static promotion, fully precomputed: the
            // unit ends with a dispatch resuming at `p.resume_division`.
            self.em.flush_renames(
                &mut rename,
                &mut buf,
                |v| p.live.binary_search(&v).is_ok(),
                None,
            );
            let base_store: Store = p.carried.iter().map(|v| (*v, store[v])).collect();
            env.stats.internal_promotions += 1;
            let new_site = host.add_site(Site {
                func: self.fidx,
                block: d.block,
                inst_idx: p.at,
                base_store,
                key_vars: p.key_vars.clone(),
                arg_vars: p.args.clone(),
                policy: p.policy,
                division: Some(p.resume_division),
                key_pos: Vec::new(),
                dyn_pos: Vec::new(),
            });
            self.em.exec_cycles += costs.new_site;
            env.trace.rec(
                EventKind::Promotion,
                self.point,
                self.key_hash,
                vm.stats.total_cycles(),
                u64::from(new_site),
                0,
            );
            let args: Vec<Reg> = p.args.iter().map(|v| self.em.reg_of(*v)).collect();
            for r in &args {
                live_regs.insert(*r);
            }
            let dst = self.gef.ret_has_value.then(|| self.em.fresh_reg());
            buf.push(Emitted {
                ins: Instr::Dispatch {
                    point: new_site,
                    dst,
                    args,
                },
                deletable: false,
                fixup: None,
                templated: false,
                patches: 0,
                shape: 0,
            });
            buf.push(Emitted {
                ins: Instr::Ret { src: dst },
                deletable: false,
                fixup: None,
                templated: false,
                patches: 0,
                shape: 0,
            });
        } else {
            // Terminator: precomputed flush/keep sets, then the edge plans.
            self.em.flush_renames(
                &mut rename,
                &mut buf,
                |v| d.flush_keep.binary_search(&v).is_ok(),
                Some(&mut live_regs),
            );
            for v in &d.live_out_dyn {
                let r = self.em.reg_of(*v);
                live_regs.insert(r);
            }
            match &d.term {
                GeTerm::Jmp(plan) => {
                    chain = self.take_edge(plan, &store, &mut buf, &mut live_regs);
                }
                GeTerm::StaticBr { cond, t, f } => {
                    env.stats.branches_folded += 1;
                    let taken = match store[cond] {
                        Value::I(v) => v != 0,
                        Value::F(v) => v != 0.0,
                    };
                    let plan = if taken { t } else { f };
                    chain = self.take_edge(plan, &store, &mut buf, &mut live_regs);
                }
                GeTerm::DynBr { cond, t, f } => {
                    match self.em.resolve(*cond, &store, &rename) {
                        // The rename table can still fold a "dynamic"
                        // branch when the condition renamed to a constant.
                        Opnd::KI(v) => {
                            env.stats.branches_folded += 1;
                            let plan = if v != 0 { t } else { f };
                            chain = self.take_edge(plan, &store, &mut buf, &mut live_regs);
                        }
                        Opnd::KF(v) => {
                            env.stats.branches_folded += 1;
                            let plan = if v != 0.0 { t } else { f };
                            chain = self.take_edge(plan, &store, &mut buf, &mut live_regs);
                        }
                        Opnd::R(r) => {
                            live_regs.insert(r);
                            let (id_t, store_t) =
                                self.apply_edge(t, &store, &mut buf, &mut live_regs);
                            let (id_f, store_f) =
                                self.apply_edge(f, &store, &mut buf, &mut live_regs);
                            buf.push(Emitted {
                                ins: Instr::Brnz { cond: r, target: 0 },
                                deletable: false,
                                fixup: Some(id_t),
                                templated: false,
                                patches: 0,
                                shape: 0,
                            });
                            if !self.em.sealed(id_t) {
                                self.worklist.push((id_t, store_t));
                            }
                            if self.em.sealed(id_f) {
                                buf.push(Emitted {
                                    ins: Instr::Jmp { target: 0 },
                                    deletable: false,
                                    fixup: Some(id_f),
                                    templated: false,
                                    patches: 0,
                                    shape: 0,
                                });
                            } else {
                                chain = Some((id_f, store_f));
                            }
                        }
                    }
                }
                GeTerm::StaticSwitch { on, cases, default } => {
                    env.stats.branches_folded += 1;
                    let v = store[on].as_i();
                    let plan = cases
                        .iter()
                        .find_map(|(k, p)| (*k == v).then_some(p))
                        .unwrap_or(default);
                    chain = self.take_edge(plan, &store, &mut buf, &mut live_regs);
                }
                GeTerm::DynSwitch { on, cases, default } => {
                    match self.em.resolve(*on, &store, &rename) {
                        Opnd::KI(v) => {
                            env.stats.branches_folded += 1;
                            let plan = cases
                                .iter()
                                .find_map(|(k, p)| (*k == v).then_some(p))
                                .unwrap_or(default);
                            chain = self.take_edge(plan, &store, &mut buf, &mut live_regs);
                        }
                        Opnd::KF(_) => unreachable!("switch scrutinee is int"),
                        Opnd::R(r) => {
                            live_regs.insert(r);
                            let tmp = self.em.fresh_reg();
                            for (k, plan) in cases {
                                let (cid, st) =
                                    self.apply_edge(plan, &store, &mut buf, &mut live_regs);
                                buf.push(Emitted {
                                    ins: Instr::ICmp {
                                        cc: Cc::Eq,
                                        dst: tmp,
                                        a: r,
                                        b: Operand::Imm(*k),
                                    },
                                    deletable: false,
                                    fixup: None,
                                    templated: false,
                                    patches: 0,
                                    shape: 0,
                                });
                                buf.push(Emitted {
                                    ins: Instr::Brnz {
                                        cond: tmp,
                                        target: 0,
                                    },
                                    deletable: false,
                                    fixup: Some(cid),
                                    templated: false,
                                    patches: 0,
                                    shape: 0,
                                });
                                if !self.em.sealed(cid) {
                                    self.worklist.push((cid, st));
                                }
                            }
                            let (id_d, store_d) =
                                self.apply_edge(default, &store, &mut buf, &mut live_regs);
                            if self.em.sealed(id_d) {
                                buf.push(Emitted {
                                    ins: Instr::Jmp { target: 0 },
                                    deletable: false,
                                    fixup: Some(id_d),
                                    templated: false,
                                    patches: 0,
                                    shape: 0,
                                });
                            } else {
                                chain = Some((id_d, store_d));
                            }
                        }
                    }
                }
                GeTerm::Ret(v) => {
                    let src = v.map(|v| match self.em.resolve(v, &store, &rename) {
                        Opnd::R(r) => r,
                        k => {
                            let r = self.em.fresh_reg();
                            buf.push(Emitted {
                                ins: mov_const(r, opnd_value(k)),
                                deletable: false,
                                fixup: None,
                                templated: false,
                                patches: 0,
                                shape: 0,
                            });
                            r
                        }
                    });
                    if let Some(r) = src {
                        live_regs.insert(r);
                    }
                    buf.push(Emitted {
                        ins: Instr::Ret { src },
                        deletable: false,
                        fixup: None,
                        templated: false,
                        patches: 0,
                        shape: 0,
                    });
                }
                GeTerm::Promote(_) => unreachable!("handled above"),
            }
        }

        let (tmpl, holes) = self.em.seal_unit(id, buf, live_regs, &costs, env.stats);
        if tmpl > 0 {
            let cyc = vm.stats.total_cycles();
            self.trace_rec(env, EventKind::TemplateCopy, cyc, tmpl);
            if holes > 0 {
                self.trace_rec(env, EventKind::HolePatch, cyc, holes);
            }
        }
        Ok(chain)
    }

    /// Execute one fused template: check its value guards, copy the
    /// prebuilt instruction block wholesale, replay the patch list, and
    /// apply the run's net rename/store effects. On a failed guard — or
    /// any earlier failure in this unit — re-emit the template's original
    /// ops per-instruction instead (the exact pre-fusion path).
    #[allow(clippy::too_many_arguments)]
    fn exec_template(
        &mut self,
        t: &Template,
        templates_ok: &mut bool,
        store: &mut Store,
        rename: &mut HashMap<VReg, Opnd>,
        scratch: &mut HashMap<u64, Reg>,
        buf: &mut Vec<Emitted>,
        costs: &DynCosts,
        stats: &mut RtStats,
    ) {
        if *templates_ok {
            for g in &t.guards {
                let Guard::IBinFoldFree { op, var } = g;
                let k = store[var].as_i();
                if ibin_special_case(
                    self.em.cfg.zero_copy_propagation,
                    self.em.cfg.strength_reduction,
                    *op,
                    k,
                ) {
                    stats.template_fallbacks += 1;
                    *templates_ok = false;
                    break;
                }
            }
            if *templates_ok {
                // The guard pass replaces the emitter's per-op special-case
                // checks, so it is charged at the same rate — but only on
                // success: when a guard fails, the fallback's `emit_dynamic`
                // redoes (and re-charges) the same classification, so the
                // failed attempt must not pay for it twice.
                self.em.exec_cycles += costs.opt_check * t.guards.len() as u64;
            }
        }
        if !*templates_ok {
            for (i, (inst, reads_after)) in t.fallback.iter().enumerate() {
                // Interpreting the constituent ops individually replaces
                // the template op's own `ge_op` charge (already paid by the
                // op loop), so the first one rides on that.
                if i > 0 {
                    self.em.exec_cycles += costs.ge_op;
                }
                let rl = |v: VReg| reads_after.binary_search(&v).is_ok();
                self.em
                    .emit_dynamic(inst, &rl, store, rename, scratch, buf, costs, stats);
            }
            return;
        }

        // Copy: one contiguous extend into the unit buffer. The copy and
        // patch work is metered at seal time against the instructions
        // that survive the dead-assignment sweep (see
        // `Emitter::seal_unit`), so here each instruction only records
        // how many holes were patched into it.
        let base = buf.len();
        buf.extend(t.instrs.iter().map(|ti| Emitted {
            ins: ti.ins.clone(),
            deletable: ti.deletable,
            fixup: None,
            templated: true,
            patches: 0,
            shape: ti.shape,
        }));

        // Patch: registers through the first-touch allocator (in the same
        // order the unfused path would touch them), immediates from the
        // static store.
        for p in &t.patches {
            match p {
                PatchOp::Touch { v } => {
                    self.em.reg_of(*v);
                }
                PatchOp::Reg { at, slot, v } => {
                    let r = self.em.reg_of(*v);
                    let e = &mut buf[base + *at as usize];
                    patch_reg(&mut e.ins, *slot, r);
                    e.patches += 1;
                }
                PatchOp::ImmI { at, slot, var } => {
                    let k = store[var].as_i();
                    let e = &mut buf[base + *at as usize];
                    patch_imm_i(&mut e.ins, *slot, k);
                    e.patches += 1;
                }
                PatchOp::ImmF { at, var } => {
                    let k = store[var].as_f();
                    let e = &mut buf[base + *at as usize];
                    patch_imm_f(&mut e.ins, k);
                    e.patches += 1;
                }
            }
        }

        // Net bookkeeping of the whole run: kills first, then inserts
        // (which may read the pre-kill store), then store removals.
        for v in &t.effects.rename_kill {
            rename.remove(v);
        }
        for (v, a) in &t.effects.rename_set {
            let o = match a {
                AbsAlias::Reg(w) => Opnd::R(self.em.reg_of(*w)),
                AbsAlias::LitI(k) => Opnd::KI(*k),
                AbsAlias::LitF(k) => Opnd::KF(*k),
                AbsAlias::FromStore(w) => match store[w] {
                    Value::I(i) => Opnd::KI(i),
                    Value::F(f) => Opnd::KF(f),
                },
            };
            rename.insert(*v, o);
        }
        for v in &t.effects.store_kill {
            store.remove(v);
        }
        stats.zero_copy_folds += t.zcp_folds;
    }

    /// Apply a precomputed edge plan: materialize the planned demotions
    /// (values cross into run time here), build the successor's store from
    /// the carry list, and form its unit id. The per-variable *decisions*
    /// were all taken at static compile time.
    fn apply_edge(
        &mut self,
        plan: &EdgePlan,
        store: &Store,
        buf: &mut Vec<Emitted>,
        live_regs: &mut RegSet,
    ) -> (u32, Store) {
        // carry and demote are each sorted by variable; the online path
        // interleaves them in one sorted walk of the store, and demotions
        // are the only ones that emit code — so emitting all demotions in
        // their sorted order reproduces the online instruction order.
        for v in &plan.demote {
            let val = store[v];
            let r = self.em.reg_of(*v);
            buf.push(Emitted {
                ins: mov_const(r, val),
                deletable: true,
                fixup: None,
                templated: false,
                patches: 0,
                shape: 0,
            });
            live_regs.insert(r);
        }
        let out: Store = plan.carry.iter().map(|v| (*v, store[v])).collect();
        let id = self.unit_id(plan.target, &out);
        if let Some(from) = self.cur_unit {
            self.unit_edges.push((from, id));
        }
        (id, out)
    }

    /// Take an unconditional edge: tail-continue if the target is fresh,
    /// emit a jump otherwise.
    fn take_edge(
        &mut self,
        plan: &EdgePlan,
        store: &Store,
        buf: &mut Vec<Emitted>,
        live_regs: &mut RegSet,
    ) -> Option<(u32, Store)> {
        let (id, st) = self.apply_edge(plan, store, buf, live_regs);
        if self.em.sealed(id) {
            buf.push(Emitted {
                ins: Instr::Jmp { target: 0 },
                deletable: false,
                fixup: Some(id),
                templated: false,
                patches: 0,
                shape: 0,
            });
            None
        } else {
            Some((id, st))
        }
    }

    /// Multi-way-unroll classification over the emitted unit graph —
    /// identical in structure to the online specializer's, with blocks
    /// read off the divisions.
    fn loop_is_multiway(&self, header: BlockId, units: &HashSet<u32>) -> bool {
        let Some(l) = self.gef.loops.iter().find(|l| l.header == header) else {
            return false;
        };
        let block_of = |id: u32| self.gef.divisions[self.division_of(id) as usize].block;
        let mut succs: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut in_deg: HashMap<u32, u32> = HashMap::new();
        for (from, to) in &self.unit_edges {
            if !l.body.contains(&block_of(*from)) {
                continue;
            }
            if units.contains(to) {
                *in_deg.entry(*to).or_insert(0) += 1;
            }
            succs.entry(*from).or_default().push(*to);
        }
        if in_deg.values().any(|d| *d >= 2) {
            return true;
        }
        for k in units {
            let mut reached: HashSet<u32> = HashSet::new();
            let mut seen: HashSet<u32> = HashSet::new();
            let mut stack: Vec<u32> = vec![*k];
            while let Some(u) = stack.pop() {
                for v in succs.get(&u).map(Vec::as_slice).unwrap_or(&[]) {
                    if !l.body.contains(&block_of(*v)) {
                        continue;
                    }
                    if units.contains(v) {
                        reached.insert(*v);
                        continue;
                    }
                    if seen.insert(*v) {
                        stack.push(*v);
                    }
                }
            }
            if reached.len() >= 2 {
                return true;
            }
        }
        false
    }
}

/// Write register `r` into `slot` of a template instruction.
fn patch_reg(ins: &mut Instr, slot: Slot, r: Reg) {
    match (&mut *ins, slot) {
        (
            Instr::Mov { dst, .. }
            | Instr::FMov { dst, .. }
            | Instr::MovI { dst, .. }
            | Instr::MovF { dst, .. }
            | Instr::IAlu { dst, .. }
            | Instr::FAlu { dst, .. }
            | Instr::ICmp { dst, .. }
            | Instr::FCmp { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Load { dst, .. },
            Slot::Dst,
        ) => *dst = r,
        (Instr::Call { dst, .. } | Instr::CallHost { dst, .. }, Slot::Dst) => *dst = Some(r),
        (
            Instr::Mov { src, .. }
            | Instr::FMov { src, .. }
            | Instr::Un { src, .. }
            | Instr::Store { src, .. },
            Slot::Src,
        ) => *src = r,
        (
            Instr::IAlu { a, .. }
            | Instr::ICmp { a, .. }
            | Instr::FAlu { a, .. }
            | Instr::FCmp { a, .. },
            Slot::A,
        ) => *a = r,
        (
            Instr::IAlu {
                b: Operand::Reg(b), ..
            }
            | Instr::ICmp {
                b: Operand::Reg(b), ..
            },
            Slot::B,
        ) => *b = r,
        (Instr::FAlu { b, .. } | Instr::FCmp { b, .. }, Slot::B) => *b = r,
        (Instr::Load { base, .. } | Instr::Store { base, .. }, Slot::Base) => *base = r,
        (
            Instr::Load {
                idx: Operand::Reg(x),
                ..
            }
            | Instr::Store {
                idx: Operand::Reg(x),
                ..
            },
            Slot::Idx,
        ) => *x = r,
        (Instr::Call { args, .. } | Instr::CallHost { args, .. }, Slot::Arg(i)) => {
            args[i as usize] = r;
        }
        (other, slot) => unreachable!("register hole {slot:?} does not exist on {other:?}"),
    }
}

/// Write integer immediate `k` into `slot` of a template instruction.
fn patch_imm_i(ins: &mut Instr, slot: Slot, k: i64) {
    match (&mut *ins, slot) {
        (Instr::MovI { imm, .. }, Slot::Imm) => *imm = k,
        (
            Instr::IAlu {
                b: Operand::Imm(b), ..
            }
            | Instr::ICmp {
                b: Operand::Imm(b), ..
            },
            Slot::B,
        ) => *b = k,
        (
            Instr::Load {
                idx: Operand::Imm(x),
                ..
            }
            | Instr::Store {
                idx: Operand::Imm(x),
                ..
            },
            Slot::Idx,
        ) => *x = k,
        (other, slot) => unreachable!("immediate hole {slot:?} does not exist on {other:?}"),
    }
}

/// Write float immediate `k` into a template `MovF`.
fn patch_imm_f(ins: &mut Instr, k: f64) {
    match ins {
        Instr::MovF { imm, .. } => *imm = k,
        other => unreachable!("float immediate hole on {other:?}"),
    }
}
