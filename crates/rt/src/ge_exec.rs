//! The staged generating-extension executor — the run-time half of true
//! staging.
//!
//! Where the online [`crate::specializer::Specializer`] re-derives
//! binding times, liveness, and unroll legality on every specialization,
//! this executor just **interprets a precompiled GE program**
//! ([`dyc_stage::GeProgram`], built once at static compile time): a flat
//! list of ops per *division* (program point + static-variable set), with
//! all decisions that depend only on the set already taken. What remains
//! at run time is exactly the value-dependent work (§2.1's "the only
//! remaining work is to execute the static computations and copy the
//! pre-optimized templates"):
//!
//! * executing `Eval` ops against the static store and live VM state,
//! * filling holes while emitting `EmitHole` templates (with dynamic
//!   zero/copy propagation and strength reduction on the actual values),
//! * folding `StaticBr`/`StaticSwitch` on store values — complete loop
//!   unrolling — and memoizing units by `(division, value vector)`,
//! * materializing demotions listed in the precomputed `EdgePlan`s.
//!
//! It performs **zero** run-time binding-time classifications or liveness
//! queries (`RtStats::runtime_bta_calls` stays untouched here) and emits
//! code byte-identical to the online path, because all value-dependent
//! machinery is the shared [`Emitter`], driven in the same order.

use crate::emitter::{mov_const, opnd_value, Emitted, Emitter, Opnd};
use crate::runtime::{Runtime, Site, Store};
use dyc_ir::{BlockId, VReg};
use dyc_stage::{EdgePlan, GeDivision, GeFunc, GeOp, GeTerm};
use dyc_vm::{Cc, FuncId, Instr, Module, Operand, Reg, Value, Vm, VmError};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Unit identity in the staged path: the division (which *is* the program
/// point plus static-variable set, interned at stage time) plus the
/// concrete values, in the division's sorted variable order. Bijective
/// with the online path's `(block, start, sorted store)` key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GeKey {
    division: u32,
    vals: Vec<u64>,
}

fn ge_key(division: u32, store: &Store) -> GeKey {
    GeKey {
        division,
        vals: store.values().map(|v| v.key_bits()).collect(),
    }
}

/// The flat GE-program executor. See module docs.
pub(crate) struct GeExecutor {
    gef: Arc<GeFunc>,
    fidx: usize,
    em: Emitter<GeKey>,
    worklist: Vec<(GeKey, Store)>,
    budget: u64,
    // Instrumentation (mirrors the online specializer exactly).
    header_units: HashMap<BlockId, HashSet<GeKey>>,
    unit_edges: Vec<(GeKey, GeKey)>,
    cur_unit: Option<GeKey>,
    division_sets: HashMap<BlockId, HashSet<Vec<u32>>>,
}

impl GeExecutor {
    /// Specialize `site` for the given store by executing its function's
    /// GE program from `division`.
    pub(crate) fn run(
        rt: &mut Runtime,
        site: &Site,
        store: Store,
        division: u32,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<FuncId, VmError> {
        let gef = rt.staged.ge.funcs[site.func]
            .as_ref()
            .expect("site carries a division only for staged functions")
            .clone();
        let fname = rt.staged.ir.funcs[site.func].name.clone();
        let mut ex = GeExecutor {
            fidx: site.func,
            em: Emitter::new(rt.staged.cfg, gef.float_vreg.clone()),
            worklist: Vec::new(),
            budget: rt.spec_budget,
            header_units: HashMap::new(),
            unit_edges: Vec::new(),
            cur_unit: None,
            division_sets: HashMap::new(),
            gef,
        };

        // Dynamic pass-through parameters, in arg order.
        let dyn_params: Vec<VReg> = site
            .arg_vars
            .iter()
            .filter(|v| !store.contains_key(v))
            .copied()
            .collect();
        for (i, v) in dyn_params.iter().enumerate() {
            ex.em.set_reg(*v, i as u32);
        }
        ex.em.next_reg = dyn_params.len() as u32;

        let entry = ge_key(division, &store);
        ex.worklist.push((entry, store));
        while let Some((key, st)) = ex.worklist.pop() {
            if ex.em.labels.contains_key(&key) {
                continue;
            }
            ex.emit_chain(key, st, rt, module, vm)?;
        }

        ex.em.patch_fixups(&rt.costs);

        for (h, units) in &ex.header_units {
            if units.len() < 2 {
                continue;
            }
            rt.stats.loops_unrolled += 1;
            if ex.loop_is_multiway(*h, units) {
                rt.stats.multi_way_unroll = true;
            }
        }

        rt.stats.divisions_observed +=
            ex.division_sets.values().filter(|s| s.len() >= 2).count() as u64;
        rt.stats.instrs_generated += ex.em.code.len() as u64;
        rt.stats.ge_exec_cycles += ex.em.exec_cycles;
        rt.stats.emit_cycles += ex.em.emit_cycles;
        let cycles = ex.em.total_cycles();
        rt.charge(vm, cycles);

        let name = format!("{fname}$spec{}", module.len());
        let mut cf = dyc_vm::CodeFunc::new(name, dyn_params.len(), ex.em.next_reg.max(1) as usize);
        cf.code = ex.em.code;
        Ok(module.add_func(cf))
    }

    fn emit_chain(
        &mut self,
        key: GeKey,
        store: Store,
        rt: &mut Runtime,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<(), VmError> {
        let mut cur = Some((key, store));
        while let Some((key, store)) = cur.take() {
            if self.em.labels.contains_key(&key) {
                break;
            }
            if self.em.code.len() as u64 > self.budget {
                return Err(VmError::Dispatch(
                    "specialization exceeded its instruction budget (non-terminating static control flow?)"
                        .into(),
                ));
            }
            let d = &self.gef.divisions[key.division as usize];
            let block = d.block;
            if self.gef.loop_headers.contains(&block) && !d.vars.is_empty() {
                self.header_units
                    .entry(block)
                    .or_default()
                    .insert(key.clone());
            }
            let var_set: Vec<u32> = d.vars.iter().map(|v| v.0).collect();
            self.division_sets.entry(block).or_default().insert(var_set);
            cur = self.emit_unit(key, store, rt, module, vm)?;
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn emit_unit(
        &mut self,
        key: GeKey,
        mut store: Store,
        rt: &mut Runtime,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<Option<(GeKey, Store)>, VmError> {
        let d: GeDivision = self.gef.divisions[key.division as usize].clone();
        self.cur_unit = Some(key.clone());
        let mut rename: HashMap<VReg, Opnd> = HashMap::new();
        let mut scratch: HashMap<u64, Reg> = HashMap::new();
        let mut buf: Vec<Emitted<GeKey>> = Vec::new();
        let costs = rt.costs;
        self.em.exec_cycles += costs.per_unit;
        rt.stats.units_emitted += 1;

        for op in &d.ops {
            // One table fetch + dispatch per precompiled GE op — the whole
            // per-instruction decision cost of the staged path.
            self.em.exec_cycles += costs.ge_op;
            match op {
                GeOp::Eval(inst) => {
                    self.em.exec_static(
                        inst,
                        &mut store,
                        &mut rename,
                        &costs,
                        &mut rt.stats,
                        module,
                        vm,
                    )?;
                }
                GeOp::EmitHole { inst, reads_after } => {
                    let rl = |v: VReg| reads_after.binary_search(&v).is_ok();
                    self.em.emit_dynamic(
                        inst,
                        &rl,
                        &mut store,
                        &mut rename,
                        &mut scratch,
                        &mut buf,
                        &costs,
                        &mut rt.stats,
                    );
                }
                GeOp::DemoteMaterialize { vars } => {
                    for v in vars {
                        let val = store
                            .remove(v)
                            .expect("demoted variables are static in their division");
                        let r = self.em.reg_of(*v);
                        buf.push(Emitted {
                            ins: mov_const(r, val),
                            deletable: true,
                            fixup: None,
                        });
                    }
                }
            }
        }

        // Regs that must survive the unit (for dead-assignment elimination).
        let mut live_regs: HashSet<Reg> = HashSet::new();
        let mut chain: Option<(GeKey, Store)> = None;

        if let GeTerm::Promote(p) = &d.term {
            // Internal dynamic-to-static promotion, fully precomputed: the
            // unit ends with a dispatch resuming at `p.resume_division`.
            self.em.flush_renames(
                &mut rename,
                &mut buf,
                |v| p.live.binary_search(&v).is_ok(),
                None,
            );
            let base_store: Store = p.carried.iter().map(|v| (*v, store[v])).collect();
            let site_id = rt.add_site(Site {
                func: self.fidx,
                block: d.block,
                inst_idx: p.at,
                base_store,
                key_vars: p.key_vars.clone(),
                arg_vars: p.args.clone(),
                policy: p.policy,
                division: Some(p.resume_division),
            });
            self.em.exec_cycles += costs.new_site;
            let args: Vec<Reg> = p.args.iter().map(|v| self.em.reg_of(*v)).collect();
            live_regs.extend(args.iter().copied());
            let dst = self.gef.ret_has_value.then(|| self.em.fresh_reg());
            buf.push(Emitted {
                ins: Instr::Dispatch {
                    point: site_id,
                    dst,
                    args,
                },
                deletable: false,
                fixup: None,
            });
            buf.push(Emitted {
                ins: Instr::Ret { src: dst },
                deletable: false,
                fixup: None,
            });
        } else {
            // Terminator: precomputed flush/keep sets, then the edge plans.
            self.em.flush_renames(
                &mut rename,
                &mut buf,
                |v| d.flush_keep.binary_search(&v).is_ok(),
                Some(&mut live_regs),
            );
            for v in &d.live_out_dyn {
                let r = self.em.reg_of(*v);
                live_regs.insert(r);
            }
            match &d.term {
                GeTerm::Jmp(plan) => {
                    chain = self.take_edge(plan, &store, &mut buf, &mut live_regs);
                }
                GeTerm::StaticBr { cond, t, f } => {
                    rt.stats.branches_folded += 1;
                    let taken = match store[cond] {
                        Value::I(v) => v != 0,
                        Value::F(v) => v != 0.0,
                    };
                    let plan = if taken { t } else { f };
                    chain = self.take_edge(plan, &store, &mut buf, &mut live_regs);
                }
                GeTerm::DynBr { cond, t, f } => {
                    match self.em.resolve(*cond, &store, &rename) {
                        // The rename table can still fold a "dynamic"
                        // branch when the condition renamed to a constant.
                        Opnd::KI(v) => {
                            rt.stats.branches_folded += 1;
                            let plan = if v != 0 { t } else { f };
                            chain = self.take_edge(plan, &store, &mut buf, &mut live_regs);
                        }
                        Opnd::KF(v) => {
                            rt.stats.branches_folded += 1;
                            let plan = if v != 0.0 { t } else { f };
                            chain = self.take_edge(plan, &store, &mut buf, &mut live_regs);
                        }
                        Opnd::R(r) => {
                            live_regs.insert(r);
                            let (key_t, store_t) =
                                self.apply_edge(t, &store, &mut buf, &mut live_regs);
                            let (key_f, store_f) =
                                self.apply_edge(f, &store, &mut buf, &mut live_regs);
                            buf.push(Emitted {
                                ins: Instr::Brnz { cond: r, target: 0 },
                                deletable: false,
                                fixup: Some(key_t.clone()),
                            });
                            if !self.em.labels.contains_key(&key_t) {
                                self.worklist.push((key_t, store_t));
                            }
                            if self.em.labels.contains_key(&key_f) {
                                buf.push(Emitted {
                                    ins: Instr::Jmp { target: 0 },
                                    deletable: false,
                                    fixup: Some(key_f),
                                });
                            } else {
                                chain = Some((key_f, store_f));
                            }
                        }
                    }
                }
                GeTerm::StaticSwitch { on, cases, default } => {
                    rt.stats.branches_folded += 1;
                    let v = store[on].as_i();
                    let plan = cases
                        .iter()
                        .find_map(|(k, p)| (*k == v).then_some(p))
                        .unwrap_or(default);
                    chain = self.take_edge(plan, &store, &mut buf, &mut live_regs);
                }
                GeTerm::DynSwitch { on, cases, default } => {
                    match self.em.resolve(*on, &store, &rename) {
                        Opnd::KI(v) => {
                            rt.stats.branches_folded += 1;
                            let plan = cases
                                .iter()
                                .find_map(|(k, p)| (*k == v).then_some(p))
                                .unwrap_or(default);
                            chain = self.take_edge(plan, &store, &mut buf, &mut live_regs);
                        }
                        Opnd::KF(_) => unreachable!("switch scrutinee is int"),
                        Opnd::R(r) => {
                            live_regs.insert(r);
                            let tmp = self.em.fresh_reg();
                            for (k, plan) in cases {
                                let (key, st) =
                                    self.apply_edge(plan, &store, &mut buf, &mut live_regs);
                                buf.push(Emitted {
                                    ins: Instr::ICmp {
                                        cc: Cc::Eq,
                                        dst: tmp,
                                        a: r,
                                        b: Operand::Imm(*k),
                                    },
                                    deletable: false,
                                    fixup: None,
                                });
                                buf.push(Emitted {
                                    ins: Instr::Brnz {
                                        cond: tmp,
                                        target: 0,
                                    },
                                    deletable: false,
                                    fixup: Some(key.clone()),
                                });
                                if !self.em.labels.contains_key(&key) {
                                    self.worklist.push((key, st));
                                }
                            }
                            let (key_d, store_d) =
                                self.apply_edge(default, &store, &mut buf, &mut live_regs);
                            if self.em.labels.contains_key(&key_d) {
                                buf.push(Emitted {
                                    ins: Instr::Jmp { target: 0 },
                                    deletable: false,
                                    fixup: Some(key_d),
                                });
                            } else {
                                chain = Some((key_d, store_d));
                            }
                        }
                    }
                }
                GeTerm::Ret(v) => {
                    let src = v.map(|v| match self.em.resolve(v, &store, &rename) {
                        Opnd::R(r) => r,
                        k => {
                            let r = self.em.fresh_reg();
                            buf.push(Emitted {
                                ins: mov_const(r, opnd_value(k)),
                                deletable: false,
                                fixup: None,
                            });
                            r
                        }
                    });
                    if let Some(r) = src {
                        live_regs.insert(r);
                    }
                    buf.push(Emitted {
                        ins: Instr::Ret { src },
                        deletable: false,
                        fixup: None,
                    });
                }
                GeTerm::Promote(_) => unreachable!("handled above"),
            }
        }

        self.em
            .seal_unit(key, buf, live_regs, &costs, &mut rt.stats);
        Ok(chain)
    }

    /// Apply a precomputed edge plan: materialize the planned demotions
    /// (values cross into run time here), build the successor's store from
    /// the carry list, and form its unit key. The per-variable *decisions*
    /// were all taken at static compile time.
    fn apply_edge(
        &mut self,
        plan: &EdgePlan,
        store: &Store,
        buf: &mut Vec<Emitted<GeKey>>,
        live_regs: &mut HashSet<Reg>,
    ) -> (GeKey, Store) {
        // carry and demote are each sorted by variable; the online path
        // interleaves them in one sorted walk of the store, and demotions
        // are the only ones that emit code — so emitting all demotions in
        // their sorted order reproduces the online instruction order.
        for v in &plan.demote {
            let val = store[v];
            let r = self.em.reg_of(*v);
            buf.push(Emitted {
                ins: mov_const(r, val),
                deletable: true,
                fixup: None,
            });
            live_regs.insert(r);
        }
        let out: Store = plan.carry.iter().map(|v| (*v, store[v])).collect();
        let key = ge_key(plan.target, &out);
        if let Some(from) = &self.cur_unit {
            self.unit_edges.push((from.clone(), key.clone()));
        }
        (key, out)
    }

    /// Take an unconditional edge: tail-continue if the target is fresh,
    /// emit a jump otherwise.
    fn take_edge(
        &mut self,
        plan: &EdgePlan,
        store: &Store,
        buf: &mut Vec<Emitted<GeKey>>,
        live_regs: &mut HashSet<Reg>,
    ) -> Option<(GeKey, Store)> {
        let (key, st) = self.apply_edge(plan, store, buf, live_regs);
        if self.em.labels.contains_key(&key) {
            buf.push(Emitted {
                ins: Instr::Jmp { target: 0 },
                deletable: false,
                fixup: Some(key),
            });
            None
        } else {
            Some((key, st))
        }
    }

    /// Multi-way-unroll classification over the emitted unit graph —
    /// identical in structure to the online specializer's, with blocks
    /// read off the divisions.
    fn loop_is_multiway(&self, header: BlockId, units: &HashSet<GeKey>) -> bool {
        let Some(l) = self.gef.loops.iter().find(|l| l.header == header) else {
            return false;
        };
        let block_of = |k: &GeKey| self.gef.divisions[k.division as usize].block;
        let mut succs: HashMap<&GeKey, Vec<&GeKey>> = HashMap::new();
        let mut in_deg: HashMap<&GeKey, u32> = HashMap::new();
        for (from, to) in &self.unit_edges {
            if !l.body.contains(&block_of(from)) {
                continue;
            }
            if units.contains(to) {
                *in_deg.entry(to).or_insert(0) += 1;
            }
            succs.entry(from).or_default().push(to);
        }
        if in_deg.values().any(|d| *d >= 2) {
            return true;
        }
        for k in units {
            let mut reached: HashSet<&GeKey> = HashSet::new();
            let mut seen: HashSet<&GeKey> = HashSet::new();
            let mut stack: Vec<&GeKey> = vec![k];
            while let Some(u) = stack.pop() {
                for v in succs.get(u).map(Vec::as_slice).unwrap_or(&[]) {
                    if !l.body.contains(&block_of(v)) {
                        continue;
                    }
                    if units.contains(*v) {
                        reached.insert(v);
                        continue;
                    }
                    if seen.insert(v) {
                        stack.push(v);
                    }
                }
            }
            if reached.len() >= 2 {
                return true;
            }
        }
        false
    }
}
