//! The run-time system: dispatch sites, code caches, and the
//! [`DispatchHandler`] that connects running code to the specializer.
//!
//! "At run time, a dynamic region's custom dynamic compiler is invoked to
//! generate the region's code. The dynamic compiler first checks an
//! internal cache of previously dynamically generated code for a version
//! that was compiled for the values of the annotated variables. If one is
//! found, it is reused." (§2.1)

use crate::artifact::{self, CacheBundle, SiteSpec, ARTIFACT_VERSION};
use crate::cache::{CacheEntry, DoubleHashCache};
use crate::costs::DynCosts;
use crate::ge_exec::{GeExecutor, SpecEnv, SpecHost};
use crate::native::{exec_entry, lower_func, NativeArtifact, NativeDispatch, NativeEngine};
use crate::policy::{PolicyDecision, PolicyEngine, PolicyParams};
use crate::specializer::Specializer;
use crate::stats::RtStats;
use dyc_bta::PolicyMode;
use dyc_ir::{BlockId, VReg};
use dyc_obs::{EventKind, Trace};
use dyc_stage::{SitePolicy, StagedProgram};
use dyc_vm::{DispatchHandler, DispatchOutcome, FuncId, Module, Value, Vm, VmError};
use std::collections::BTreeMap;

/// The static store: concrete values of the static variables.
pub type Store = BTreeMap<VReg, Value>;

/// A dispatch site: a dynamic-region entry or an internal
/// dynamic-to-static promotion point.
#[derive(Debug, Clone)]
pub struct Site {
    /// Function containing the site.
    pub func: usize,
    /// Block of the resume point.
    pub block: BlockId,
    /// Instruction index of the resume point (the annotation).
    pub inst_idx: usize,
    /// Static context baked in at emit time (empty for entry sites).
    pub base_store: Store,
    /// Variables promoted at this site (their values form the cache key).
    pub key_vars: Vec<VReg>,
    /// Dispatch argument layout (all live variables at the point for entry
    /// sites; the live *dynamic* variables for internal sites).
    pub arg_vars: Vec<VReg>,
    /// Caching policy.
    pub policy: SitePolicy,
    /// Entry division in the function's precompiled GE program, when one
    /// exists: specialization runs through the staged [`GeExecutor`].
    /// `None` routes through the online `Specializer` (staging disabled
    /// or the function fell back).
    pub division: Option<u32>,
    /// Position of each `key_vars` entry within `arg_vars`. Derived once
    /// when the site is registered, so a dispatch extracts its cache key
    /// by direct indexing instead of per-call position searches.
    pub key_pos: Vec<usize>,
    /// Positions of the pass-through (dynamic) arguments within
    /// `arg_vars`: everything not in `base_store` or `key_vars`. Derived
    /// once, so the cache-hit path subsets the arguments without
    /// rebuilding the static store.
    pub dyn_pos: Vec<usize>,
}

impl Site {
    pub(crate) fn precompute_layout(&mut self) {
        self.key_pos = self
            .key_vars
            .iter()
            .map(|kv| {
                self.arg_vars
                    .iter()
                    .position(|a| a == kv)
                    .expect("key vars are live at their own promotion point")
            })
            .collect();
        self.dyn_pos = self
            .arg_vars
            .iter()
            .enumerate()
            .filter(|(_, v)| !self.base_store.contains_key(v) && !self.key_vars.contains(v))
            .map(|(i, _)| i)
            .collect();
    }
}

#[derive(Debug)]
enum CacheState {
    All(DoubleHashCache),
    One(Option<FuncId>),
    /// Array-indexed lookup for byte-ranged keys (§3.1 extension), with a
    /// hashed overflow table for out-of-range values.
    Indexed {
        slots: Box<[Option<FuncId>; 256]>,
        overflow: DoubleHashCache,
    },
    /// Bounded `cache_all(k)`: the hashed table holds at most `cap`
    /// specializations; the clock runs second-chance eviction over them.
    /// Cached values carry their clock index so a hit can set the
    /// reference bit without a second hash.
    Bounded {
        cache: DoubleHashCache<(FuncId, u32)>,
        cap: usize,
        /// Second-chance state: `(key, referenced)` per retained entry.
        clock: Vec<(Vec<u64>, bool)>,
        hand: usize,
    },
}

impl CacheState {
    fn for_policy(policy: SitePolicy) -> CacheState {
        match policy {
            SitePolicy::CacheAll => CacheState::All(DoubleHashCache::new()),
            SitePolicy::CacheAllBounded(k) => CacheState::Bounded {
                cache: DoubleHashCache::new(),
                cap: k.max(1) as usize,
                clock: Vec::new(),
                hand: 0,
            },
            SitePolicy::CacheOneUnchecked => CacheState::One(None),
            SitePolicy::CacheIndexed => CacheState::Indexed {
                slots: Box::new([None; 256]),
                overflow: DoubleHashCache::new(),
            },
        }
    }
}

/// [`SpecHost`] over plain site/cache vectors — the single-threaded
/// runtime's storage for internal promotion sites.
struct VecSiteHost<'a> {
    sites: &'a mut Vec<Site>,
    caches: &'a mut Vec<CacheState>,
}

impl SpecHost for VecSiteHost<'_> {
    fn add_site(&mut self, mut site: Site) -> u32 {
        let id = self.sites.len() as u32;
        site.precompute_layout();
        self.caches.push(CacheState::for_policy(site.policy));
        self.sites.push(site);
        id
    }
}

/// The run-time system. Implements [`DispatchHandler`]; attach it to a
/// [`Vm`] run with [`Vm::call_with_handler`].
#[derive(Debug)]
pub struct Runtime {
    /// The staged program (IR + plans) produced by `dyc-stage`.
    pub staged: StagedProgram,
    /// Cost constants for overhead accounting.
    pub costs: DynCosts,
    /// Run-time statistics (Table 2/3 instrumentation).
    pub stats: RtStats,
    /// Event recorder, enabled by `OptConfig::trace` (off by default).
    /// Purely observational: recording never touches [`RtStats`], the
    /// emitted code, or results.
    pub trace: Trace,
    sites: Vec<Site>,
    caches: Vec<CacheState>,
    /// Reusable cache-key buffer: hashed dispatches build their key here
    /// instead of allocating per call.
    scratch_key: Vec<u64>,
    /// Reusable promoted-value buffer for the miss path.
    scratch_vals: Vec<Value>,
    /// Specialization instruction budget (guards non-terminating static
    /// loops).
    pub spec_budget: u64,
    /// Native x86-64 engine: owns the executable code arena and the map
    /// from specialized functions to their installed machine-code
    /// entries. Inert (a no-op stub) on platforms without the backend.
    native: NativeEngine,
    /// Adaptive specialization policy (`OptConfig::policy`), `None` in
    /// the default `Always` mode — the engine is consulted only on the
    /// dispatch miss path, so `Always` behavior is bit-for-bit today's.
    policy: Option<PolicyEngine>,
    /// Per-site generic continuation, compiled on first deferral. The
    /// continuation is ordinary unspecialized code (mirrors
    /// `SharedRuntime`'s fallback path), charged like statically
    /// compiled code — no dynamic-compilation cycles.
    generic: Vec<Option<FuncId>>,
}

impl Runtime {
    /// Build the run-time system for a staged program.
    pub fn new(staged: StagedProgram) -> Runtime {
        let mut sites = Vec::new();
        let mut caches = Vec::new();
        for (i, e) in staged.entry_sites.iter().enumerate() {
            let mut site = Site {
                func: e.func,
                block: e.block,
                inst_idx: e.inst_idx,
                base_store: Store::new(),
                key_vars: e.key_vars.iter().map(|(v, _)| *v).collect(),
                arg_vars: e.arg_vars.clone(),
                policy: e.policy,
                division: staged.ge.entry_divisions[i],
                key_pos: Vec::new(),
                dyn_pos: Vec::new(),
            };
            site.precompute_layout();
            sites.push(site);
            caches.push(CacheState::for_policy(e.policy));
        }
        let trace = if staged.cfg.trace {
            Trace::on(0)
        } else {
            Trace::off()
        };
        let policy = (staged.cfg.policy == PolicyMode::Adaptive)
            .then(|| PolicyEngine::new(PolicyParams::default()));
        Runtime {
            staged,
            costs: DynCosts::calibrated(),
            stats: RtStats::new(),
            trace,
            sites,
            caches,
            scratch_key: Vec::new(),
            scratch_vals: Vec::new(),
            spec_budget: 4_000_000,
            native: NativeEngine::new(),
            policy,
            generic: Vec::new(),
        }
    }

    /// The adaptive policy engine, when `OptConfig::policy` is
    /// [`PolicyMode::Adaptive`] (diagnostics and tests).
    pub fn policy_engine(&self) -> Option<&PolicyEngine> {
        self.policy.as_ref()
    }

    /// Register an internal promotion site created during specialization;
    /// returns its dispatch point id.
    pub(crate) fn add_site(&mut self, site: Site) -> u32 {
        self.stats.internal_promotions += 1;
        let mut host = VecSiteHost {
            sites: &mut self.sites,
            caches: &mut self.caches,
        };
        host.add_site(site)
    }

    /// Number of dispatch sites (entries + internal promotions so far).
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    /// Number of entry (statically splice-created) dispatch sites. Site
    /// ids at or above this are internal promotion sites, numbered in
    /// the order their parent specializations first created them.
    pub fn n_entry_sites(&self) -> usize {
        self.staged.entry_sites.len()
    }

    /// Number of specializations with an installed native machine-code
    /// entry (always zero unless `OptConfig::native` is set, and on
    /// platforms without the backend).
    pub fn native_installed(&self) -> usize {
        self.native.installed()
    }

    /// The site table (diagnostics).
    pub fn site(&self, id: u32) -> &Site {
        &self.sites[id as usize]
    }

    /// Drop every specialization cached at `point`. The next dispatch
    /// through the site re-specializes from scratch; the already-installed
    /// code stays in the module (it is never re-entered through this site)
    /// and cumulative probe meters survive via
    /// [`DoubleHashCache::clear`]'s explicit-reset contract.
    pub fn invalidate_site(&mut self, point: u32) {
        self.stats.cache_invalidations += 1;
        self.trace
            .rec(EventKind::CacheInvalidate, point, 0, 0, 0, 0);
        match &mut self.caches[point as usize] {
            CacheState::All(c) => c.clear(),
            CacheState::One(f) => *f = None,
            CacheState::Indexed { slots, overflow } => {
                **slots = [None; 256];
                overflow.clear();
            }
            CacheState::Bounded {
                cache, clock, hand, ..
            } => {
                cache.clear();
                clock.clear();
                *hand = 0;
            }
        }
    }

    /// Snapshot of every `(site, key, code)` binding currently cached —
    /// the differential harnesses compare this against the concurrent
    /// runtime's shared cache. `CacheOneUnchecked` sites report an empty
    /// key; indexed sites report the canonical hashed key they would use.
    pub fn cache_entries(&self) -> Vec<(u32, Vec<u64>, FuncId)> {
        let mut out = Vec::new();
        for (i, c) in self.caches.iter().enumerate() {
            let site = i as u32;
            match c {
                CacheState::All(c) => {
                    out.extend(c.iter().map(|(k, v)| (site, k.to_vec(), v)));
                }
                CacheState::Bounded { cache, .. } => {
                    out.extend(cache.iter().map(|(k, (f, _))| (site, k.to_vec(), f)));
                }
                CacheState::One(f) => {
                    if let Some(f) = f {
                        out.push((site, Vec::new(), *f));
                    }
                }
                CacheState::Indexed { slots, overflow } => {
                    for (v, f) in slots.iter().enumerate() {
                        if let Some(f) = f {
                            out.push((site, vec![Value::I(v as i64).key_bits()], *f));
                        }
                    }
                    out.extend(overflow.iter().map(|(k, v)| (site, k.to_vec(), v)));
                }
            }
        }
        out
    }

    /// Serialize the entire dynamic-code cache — every `(site, key,
    /// code)` binding plus the internal promotion sites created while
    /// specializing — as a versioned, fingerprinted [`CacheBundle`].
    /// `module` must be the module this runtime installed its code into
    /// (the bundle captures the cached functions' instruction streams).
    pub fn snapshot_bundle(&self, module: &Module) -> CacheBundle {
        let cfg = artifact::config_hash(&self.staged.cfg);
        let prog = artifact::program_hash(&self.staged);
        let n_entry = self.staged.entry_sites.len();
        let sites = self.sites[n_entry..]
            .iter()
            .map(SiteSpec::from_site)
            .collect();
        let entries = self
            .cache_entries()
            .into_iter()
            .map(|(site, key, fid)| {
                let schema = self.sites[site as usize]
                    .key_vars
                    .iter()
                    .map(|v| v.0)
                    .collect();
                artifact::artifact_for_func(cfg, prog, site, key, schema, module.func(fid))
            })
            .collect();
        CacheBundle {
            version: ARTIFACT_VERSION,
            config_hash: cfg,
            program_hash: prog,
            n_entry_sites: n_entry as u32,
            sites,
            entries,
        }
    }

    /// Warm-start: re-install a snapshot bundle's specializations into
    /// this (fresh) runtime and `module`, so their first dispatches hit
    /// the cache instead of re-specializing.
    ///
    /// Verification is layered and *never* fatal. The bundle header's
    /// `(version, config-hash, program-hash)` triple and site layout
    /// must match this runtime exactly, and the runtime must not have
    /// specialized yet (internal promotion sites are restored with
    /// their snapshot ids, which emitted `Dispatch` instructions bake
    /// in); otherwise every entry is rejected. Each entry then
    /// re-verifies its own triple plus its site binding, so a corrupted
    /// entry is dropped individually. Every rejection is metered in
    /// [`RtStats::cache_warm_rejects`]; every installed entry in
    /// [`RtStats::cache_warm_loads`] (and traced as a
    /// [`EventKind::CacheWarmLoad`] event). A rejected key simply
    /// re-specializes on its first dispatch.
    pub fn restore_bundle(&mut self, bundle: &CacheBundle, module: &mut Module) {
        let expect_cfg = artifact::config_hash(&self.staged.cfg);
        let expect_prog = artifact::program_hash(&self.staged);
        let fresh = self.sites.len() == self.staged.entry_sites.len();
        let header_ok = bundle.version == ARTIFACT_VERSION
            && bundle.config_hash == expect_cfg
            && bundle.program_hash == expect_prog
            && bundle.n_entry_sites as usize == self.staged.entry_sites.len()
            && fresh;
        // Internal sites must all be reconstructible before any is
        // registered — a partial site table would shift every later id.
        let internal: Option<Vec<Site>> = if header_ok {
            bundle.sites.iter().map(|s| s.to_site().ok()).collect()
        } else {
            None
        };
        let Some(internal) = internal else {
            self.stats.cache_warm_rejects += bundle.entries.len() as u64;
            return;
        };
        {
            // Through the host, not `add_site`: restored sites are not
            // *new* promotions and must not inflate that Table 2 counter.
            let mut host = VecSiteHost {
                sites: &mut self.sites,
                caches: &mut self.caches,
            };
            for site in internal {
                host.add_site(site);
            }
        }
        let trace_on = self.trace.is_on();
        for art in &bundle.entries {
            let site_ok = (art.site as usize) < self.sites.len()
                && art.key_schema
                    == self.sites[art.site as usize]
                        .key_vars
                        .iter()
                        .map(|v| v.0)
                        .collect::<Vec<_>>();
            if art.verify(expect_cfg, expect_prog).is_err() || !site_ok {
                self.stats.cache_warm_rejects += 1;
                continue;
            }
            let installed = match &mut self.caches[art.site as usize] {
                CacheState::All(c) => {
                    let fid = module.add_func(art.to_func());
                    c.insert(art.key.clone(), fid);
                    Some(fid)
                }
                CacheState::One(slot) => {
                    let fid = module.add_func(art.to_func());
                    *slot = Some(fid);
                    Some(fid)
                }
                CacheState::Indexed { slots, overflow } => {
                    let fid = module.add_func(art.to_func());
                    match art.key.as_slice() {
                        [v] if *v < 256 => slots[*v as usize] = Some(fid),
                        key => overflow.insert(key.to_vec(), fid),
                    }
                    Some(fid)
                }
                CacheState::Bounded {
                    cache, cap, clock, ..
                } => {
                    // An over-capacity bundle (snapshotted under a larger
                    // bound, say) cannot be admitted without evicting —
                    // the surplus is rejected, not installed.
                    if clock.len() < *cap {
                        let fid = module.add_func(art.to_func());
                        clock.push((art.key.clone(), true));
                        cache.insert(art.key.clone(), (fid, (clock.len() - 1) as u32));
                        Some(fid)
                    } else {
                        None
                    }
                }
            };
            if let Some(fid) = installed {
                self.stats.cache_warm_loads += 1;
                if let Some(eng) = &self.policy {
                    // Restored entries are already-proven keys: seed the
                    // engine so they never defer (their dispatches are
                    // hits anyway) and re-specialize immediately if ever
                    // evicted.
                    let mut pkey = Vec::with_capacity(art.key.len() + 1);
                    pkey.push(u64::from(art.site));
                    pkey.extend_from_slice(&art.key);
                    eng.seed_promoted(pkey);
                }
                if self.staged.cfg.native {
                    // Warm-started code never passed through a
                    // NativeSink; lower the restored function directly.
                    let nat = lower_func(module.func(fid));
                    self.native_install(art.site, fid, nat);
                }
                if trace_on {
                    let kh = dyc_obs::key_hash(&art.key);
                    self.trace.rec(
                        EventKind::CacheWarmLoad,
                        art.site,
                        kh,
                        0,
                        art.code.len() as u64,
                        0,
                    );
                }
            } else {
                self.stats.cache_warm_rejects += 1;
            }
        }
    }

    /// This site's generic continuation, compiled and installed in
    /// `module` on first use. Like the concurrent fallback path, the
    /// continuation is ordinary unspecialized code, so it is charged
    /// like statically compiled code — no dynamic-compilation cycles.
    fn generic_continuation(&mut self, point: u32, module: &mut Module) -> FuncId {
        if point as usize >= self.generic.len() {
            self.generic.resize(point as usize + 1, None);
        }
        if let Some(f) = self.generic[point as usize] {
            return f;
        }
        let site = &self.sites[point as usize];
        let consts: Vec<_> = site.base_store.iter().map(|(v, val)| (*v, *val)).collect();
        let cf = dyc_ir::codegen::codegen_region_generic(
            &self.staged.ir.funcs[site.func],
            site.block,
            site.inst_idx,
            &site.arg_vars,
            &consts,
        );
        let fid = module.add_func(cf);
        if self.staged.cfg.native {
            // Deferred dispatches should enjoy the native backend too;
            // the continuation is lowered once, like any installed code.
            let art = lower_func(module.func(fid));
            self.native_install(point, fid, art);
        }
        self.generic[point as usize] = Some(fid);
        fid
    }

    /// Adaptive-mode hit hook: feeds the policy engine's throttling
    /// heuristic. A no-op (no locks, no atomics) in `Always` mode.
    fn policy_note_hit(&mut self, point: u32) {
        if let Some(eng) = &self.policy {
            eng.note_hit(point);
        }
    }

    /// Adaptive-mode miss gate. Consulted after a cache miss is
    /// detected and metered: returns the generic continuation to run
    /// when the policy defers or throttles this specialization, `None`
    /// when the miss should specialize as usual (always the case in
    /// `Always` mode). `key_bits` is the site-relative cache key.
    fn policy_gate(
        &mut self,
        point: u32,
        key_bits: &[u64],
        module: &mut Module,
        vm: &mut Vm,
    ) -> Option<FuncId> {
        let eng = self.policy.as_ref()?;
        let entry_site = (point as usize) < self.staged.entry_sites.len();
        let mut pkey = Vec::with_capacity(key_bits.len() + 1);
        pkey.push(u64::from(point));
        pkey.extend_from_slice(key_bits);
        let decision = eng.on_miss(&pkey, entry_site);
        let count = u64::from(eng.count_of(&pkey));
        let trace_on = self.trace.is_on();
        let kh = if trace_on {
            dyc_obs::key_hash(key_bits)
        } else {
            0
        };
        match decision {
            PolicyDecision::Specialize { promoted } => {
                if promoted {
                    self.stats.policy_promotes += 1;
                    if trace_on {
                        self.trace.rec(
                            EventKind::PolicyPromote,
                            point,
                            kh,
                            vm.stats.total_cycles(),
                            count,
                            0,
                        );
                    }
                }
                None
            }
            PolicyDecision::Defer => {
                self.stats.policy_defers += 1;
                if trace_on {
                    self.trace.rec(
                        EventKind::PolicyDefer,
                        point,
                        kh,
                        vm.stats.total_cycles(),
                        count,
                        0,
                    );
                }
                Some(self.generic_continuation(point, module))
            }
            PolicyDecision::Throttle => {
                self.stats.policy_throttled += 1;
                if trace_on {
                    self.trace.rec(
                        EventKind::PolicyThrottle,
                        point,
                        kh,
                        vm.stats.total_cycles(),
                        count,
                        0,
                    );
                }
                Some(self.generic_continuation(point, module))
            }
        }
    }

    /// Finish a deferred dispatch: the generic continuation takes every
    /// dispatch argument (nothing is baked in but the base store).
    fn finish_generic(
        &mut self,
        func: FuncId,
        args: &[Value],
        out_args: &mut Vec<Value>,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<DispatchOutcome, VmError> {
        out_args.extend_from_slice(args);
        if self.staged.cfg.native {
            if let Some(entry) = self.native.entry(func) {
                let value = exec_entry(&entry, out_args, self, module, vm)?;
                return Ok(DispatchOutcome::Completed { value });
            }
        }
        Ok(DispatchOutcome::Invoke { func })
    }

    fn specialize(
        &mut self,
        point: u32,
        key_vals: &[Value],
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<FuncId, VmError> {
        let site = self.sites[point as usize].clone();
        let mut store = site.base_store.clone();
        for (v, val) in site.key_vars.iter().zip(key_vals) {
            store.insert(*v, *val);
        }
        self.stats.specializations += 1;
        let key_hash = if self.trace.is_on() {
            let kb: Vec<u64> = key_vals.iter().map(|v| v.key_bits()).collect();
            dyc_obs::key_hash(&kb)
        } else {
            0
        };
        let (dyn0, instr0) = (self.stats.dyncomp_cycles, self.stats.instrs_generated);
        self.trace.rec(
            EventKind::GeExecBegin,
            point,
            key_hash,
            vm.stats.total_cycles(),
            0,
            0,
        );
        // True staging: sites with a precompiled entry division run the
        // flat GE program; everything else falls back to the online
        // specializer. Both paths emit byte-identical code.
        let (func, native_art) = match site.division {
            Some(d) => {
                // Disjoint field borrows: the executor reads the staged
                // program and meters into stats, while new promotion
                // sites land in the site/cache vectors through the host.
                let mut env = SpecEnv {
                    staged: &self.staged,
                    costs: self.costs,
                    budget: self.spec_budget,
                    stats: &mut self.stats,
                    trace: &mut self.trace,
                };
                let mut host = VecSiteHost {
                    sites: &mut self.sites,
                    caches: &mut self.caches,
                };
                GeExecutor::run(&mut env, &mut host, point, &site, store, d, module, vm)?
            }
            None => (Specializer::run(self, &site, store, module, vm)?, None),
        };
        // Install: i-cache coherence + bookkeeping.
        vm.flush_icache();
        let install = self.costs.install;
        self.charge(vm, install);
        if self.staged.cfg.native {
            // The GE path lowered during emission (through NativeSink);
            // the online specializer's code is lowered here from the
            // finished function. Either way the VM code stays installed
            // as the always-correct fallback.
            let art = native_art.or_else(|| lower_func(module.func(func)));
            self.native_install(point, func, art);
        }
        self.trace.rec(
            EventKind::GeExecEnd,
            point,
            key_hash,
            vm.stats.total_cycles(),
            self.stats.dyncomp_cycles - dyn0,
            self.stats.instrs_generated - instr0,
        );
        if let Some(eng) = &self.policy {
            // Feed the measured cost into the site's break-even
            // threshold estimate.
            eng.note_spec(point, self.stats.dyncomp_cycles - dyn0);
        }
        Ok(func)
    }

    /// Hand a lowered artifact to the native engine, metering the
    /// outcome: a successful publication counts as a native install
    /// (traced with the machine-code size); a declined lowering or an
    /// inert platform backend counts as a fallback to the VM.
    fn native_install(&mut self, point: u32, func: FuncId, art: Option<NativeArtifact>) {
        match self.native.install(func, art) {
            Some(len) => {
                self.stats.native_installs += 1;
                self.trace
                    .rec(EventKind::NativeInstall, point, 0, 0, len as u64, 0);
            }
            None => {
                self.stats.native_fallbacks += 1;
                self.trace.rec(EventKind::NativeFallback, point, 0, 0, 0, 0);
            }
        }
    }

    pub(crate) fn charge(&mut self, vm: &mut Vm, cycles: u64) {
        self.stats.dyncomp_cycles += cycles;
        vm.stats.dyncomp_cycles += cycles;
    }

    fn charge_dispatch(&mut self, vm: &mut Vm, cycles: u64) {
        self.stats.dispatch_cycles += cycles;
        vm.stats.dispatch_cycles += cycles;
    }

    /// Cache-miss path: gather the promoted values (through the reusable
    /// scratch buffer) and specialize.
    fn miss(
        &mut self,
        point: u32,
        args: &[Value],
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<FuncId, VmError> {
        let mut key_vals = std::mem::take(&mut self.scratch_vals);
        key_vals.clear();
        key_vals.extend(self.sites[point as usize].key_pos.iter().map(|&p| args[p]));
        let r = self.specialize(point, &key_vals, module, vm);
        self.scratch_vals = key_vals;
        r
    }
}

impl DispatchHandler for Runtime {
    fn dispatch(
        &mut self,
        point: u32,
        args: &[Value],
        out_args: &mut Vec<Value>,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<DispatchOutcome, VmError> {
        let site = &self.sites[point as usize];
        if args.len() != site.arg_vars.len() {
            return Err(VmError::Dispatch(format!(
                "site {point}: expected {} args, got {}",
                site.arg_vars.len(),
                args.len()
            )));
        }
        let policy = site.policy;
        let trace_on = self.trace.is_on();

        let func = match policy {
            SitePolicy::CacheOneUnchecked => {
                let unchecked = self.costs.dispatch_unchecked;
                self.charge_dispatch(vm, unchecked);
                self.stats.dispatch_unchecked += 1;
                let cached = match &self.caches[point as usize] {
                    CacheState::One(f) => *f,
                    _ => unreachable!("policy/cache mismatch"),
                };
                // Unchecked dispatch never builds a key; events carry the
                // empty key's hash (the FNV offset basis).
                let kh = dyc_obs::key_hash(&[]);
                match cached {
                    Some(f) => {
                        self.policy_note_hit(point);
                        self.trace.rec(
                            EventKind::DispatchUnchecked,
                            point,
                            kh,
                            vm.stats.total_cycles(),
                            unchecked,
                            0,
                        );
                        f
                    }
                    None => {
                        vm.stats.dispatch_misses += 1;
                        self.trace.rec(
                            EventKind::DispatchMiss,
                            point,
                            kh,
                            vm.stats.total_cycles(),
                            unchecked,
                            0,
                        );
                        if let Some(g) = self.policy_gate(point, &[], module, vm) {
                            return self.finish_generic(g, args, out_args, module, vm);
                        }
                        let f = self.miss(point, args, module, vm)?;
                        self.caches[point as usize] = CacheState::One(Some(f));
                        f
                    }
                }
            }
            SitePolicy::CacheIndexed => {
                // §3.1's proposed fast dispatch: "the lookup could be
                // implemented as a simple array indexing, in place of
                // DyC's current general-purpose hash-table lookup."
                let kv = args[self.sites[point as usize].key_pos[0]];
                let v = kv.as_i();
                if (0..256).contains(&v) {
                    let idx = v as usize;
                    let cost = self.costs.dispatch_indexed;
                    self.charge_dispatch(vm, cost);
                    self.stats.dispatch_indexed += 1;
                    let cached = match &self.caches[point as usize] {
                        CacheState::Indexed { slots, .. } => slots[idx],
                        _ => unreachable!("policy/cache mismatch"),
                    };
                    let kh = if trace_on {
                        dyc_obs::key_hash(&[kv.key_bits()])
                    } else {
                        0
                    };
                    match cached {
                        Some(f) => {
                            self.policy_note_hit(point);
                            self.trace.rec(
                                EventKind::DispatchIndexed,
                                point,
                                kh,
                                vm.stats.total_cycles(),
                                cost,
                                0,
                            );
                            f
                        }
                        None => {
                            vm.stats.dispatch_misses += 1;
                            self.trace.rec(
                                EventKind::DispatchMiss,
                                point,
                                kh,
                                vm.stats.total_cycles(),
                                cost,
                                0,
                            );
                            if let Some(g) = self.policy_gate(point, &[kv.key_bits()], module, vm) {
                                return self.finish_generic(g, args, out_args, module, vm);
                            }
                            let f = self.miss(point, args, module, vm)?;
                            match &mut self.caches[point as usize] {
                                CacheState::Indexed { slots, .. } => slots[idx] = Some(f),
                                _ => unreachable!(),
                            }
                            f
                        }
                    }
                } else {
                    // Out of the indexed range: safe hashed fallback. One
                    // probe sequence serves both hit and miss — a miss
                    // reserves the slot the post-specialization fill uses.
                    let kb = [kv.key_bits()];
                    let entry = match &mut self.caches[point as usize] {
                        CacheState::Indexed { overflow, .. } => overflow.lookup_or_reserve(&kb),
                        _ => unreachable!("policy/cache mismatch"),
                    };
                    let probes = match entry {
                        CacheEntry::Hit { probes, .. } | CacheEntry::Vacant { probes, .. } => {
                            probes
                        }
                    };
                    let cost = self.costs.hashed_dispatch(1, probes);
                    self.charge_dispatch(vm, cost);
                    self.stats.dispatch_hashed += 1;
                    let kh = if trace_on { dyc_obs::key_hash(&kb) } else { 0 };
                    match entry {
                        CacheEntry::Hit { value, .. } => {
                            self.policy_note_hit(point);
                            self.trace.rec(
                                EventKind::DispatchHit,
                                point,
                                kh,
                                vm.stats.total_cycles(),
                                cost,
                                u64::from(probes),
                            );
                            value
                        }
                        CacheEntry::Vacant { slot, .. } => {
                            vm.stats.dispatch_misses += 1;
                            self.stats.dispatch_allocs += 1;
                            self.trace.rec(
                                EventKind::DispatchMiss,
                                point,
                                kh,
                                vm.stats.total_cycles(),
                                cost,
                                u64::from(probes),
                            );
                            if let Some(g) = self.policy_gate(point, &kb, module, vm) {
                                // The reserved slot is just an index —
                                // leaving it unfilled is harmless.
                                return self.finish_generic(g, args, out_args, module, vm);
                            }
                            let f = self.miss(point, args, module, vm)?;
                            match &mut self.caches[point as usize] {
                                CacheState::Indexed { overflow, .. } => {
                                    overflow.fill(slot, kb.to_vec(), f);
                                }
                                _ => unreachable!(),
                            }
                            f
                        }
                    }
                }
            }
            SitePolicy::CacheAll => {
                let mut key = std::mem::take(&mut self.scratch_key);
                key.clear();
                if key.capacity() < self.sites[point as usize].key_pos.len() {
                    self.stats.dispatch_allocs += 1;
                }
                key.extend(
                    self.sites[point as usize]
                        .key_pos
                        .iter()
                        .map(|&p| args[p].key_bits()),
                );
                let entry = match &mut self.caches[point as usize] {
                    CacheState::All(c) => c.lookup_or_reserve(&key),
                    _ => unreachable!("policy/cache mismatch"),
                };
                let probes = match entry {
                    CacheEntry::Hit { probes, .. } | CacheEntry::Vacant { probes, .. } => probes,
                };
                let cost = self.costs.hashed_dispatch(key.len(), probes);
                self.charge_dispatch(vm, cost);
                self.stats.dispatch_hashed += 1;
                self.stats.dispatch_probes += u64::from(probes);
                let kh = if trace_on { dyc_obs::key_hash(&key) } else { 0 };
                let func = match entry {
                    CacheEntry::Hit { value, .. } => {
                        self.policy_note_hit(point);
                        self.trace.rec(
                            EventKind::DispatchHit,
                            point,
                            kh,
                            vm.stats.total_cycles(),
                            cost,
                            u64::from(probes),
                        );
                        value
                    }
                    CacheEntry::Vacant { slot, .. } => {
                        vm.stats.dispatch_misses += 1;
                        self.stats.dispatch_allocs += 1;
                        self.trace.rec(
                            EventKind::DispatchMiss,
                            point,
                            kh,
                            vm.stats.total_cycles(),
                            cost,
                            u64::from(probes),
                        );
                        if let Some(g) = self.policy_gate(point, &key, module, vm) {
                            self.scratch_key = key;
                            return self.finish_generic(g, args, out_args, module, vm);
                        }
                        let f = self.miss(point, args, module, vm)?;
                        match &mut self.caches[point as usize] {
                            CacheState::All(c) => c.fill(slot, key.clone(), f),
                            _ => unreachable!(),
                        }
                        f
                    }
                };
                self.scratch_key = key;
                func
            }
            SitePolicy::CacheAllBounded(_) => {
                let mut key = std::mem::take(&mut self.scratch_key);
                key.clear();
                if key.capacity() < self.sites[point as usize].key_pos.len() {
                    self.stats.dispatch_allocs += 1;
                }
                key.extend(
                    self.sites[point as usize]
                        .key_pos
                        .iter()
                        .map(|&p| args[p].key_bits()),
                );
                let entry = match &mut self.caches[point as usize] {
                    CacheState::Bounded { cache, .. } => cache.lookup_or_reserve(&key),
                    _ => unreachable!("policy/cache mismatch"),
                };
                let probes = match entry {
                    CacheEntry::Hit { probes, .. } | CacheEntry::Vacant { probes, .. } => probes,
                };
                let cost = self.costs.hashed_dispatch(key.len(), probes);
                self.charge_dispatch(vm, cost);
                self.stats.dispatch_hashed += 1;
                self.stats.dispatch_probes += u64::from(probes);
                let kh = if trace_on { dyc_obs::key_hash(&key) } else { 0 };
                let func = match entry {
                    CacheEntry::Hit {
                        value: (f, idx), ..
                    } => {
                        self.policy_note_hit(point);
                        // Second chance: mark the entry recently used.
                        match &mut self.caches[point as usize] {
                            CacheState::Bounded { clock, .. } => clock[idx as usize].1 = true,
                            _ => unreachable!(),
                        }
                        self.trace.rec(
                            EventKind::DispatchHit,
                            point,
                            kh,
                            vm.stats.total_cycles(),
                            cost,
                            u64::from(probes),
                        );
                        f
                    }
                    CacheEntry::Vacant { slot, .. } => {
                        vm.stats.dispatch_misses += 1;
                        self.stats.dispatch_allocs += 1;
                        self.trace.rec(
                            EventKind::DispatchMiss,
                            point,
                            kh,
                            vm.stats.total_cycles(),
                            cost,
                            u64::from(probes),
                        );
                        if let Some(g) = self.policy_gate(point, &key, module, vm) {
                            self.scratch_key = key;
                            return self.finish_generic(g, args, out_args, module, vm);
                        }
                        let f = self.miss(point, args, module, vm)?;
                        // Auto-sizing: a revival (promoted key missing
                        // again) grows the effective bound, so keys with
                        // reuse distance beyond the declared `k` stop
                        // thrashing. Bounded by `k * cap_growth_limit`.
                        let grown_cap = self.policy.as_ref().map(|eng| {
                            let base = match self.sites[point as usize].policy {
                                SitePolicy::CacheAllBounded(k) => k.max(1) as usize,
                                _ => unreachable!("policy/cache mismatch"),
                            };
                            eng.cap_for(point, base)
                        });
                        // `(evicted key hash, victim slot)` when the fill
                        // displaced a resident entry, recorded after the
                        // cache borrow ends.
                        let mut evicted: Option<(u64, u32)> = None;
                        match &mut self.caches[point as usize] {
                            CacheState::Bounded {
                                cache,
                                cap,
                                clock,
                                hand,
                            } => {
                                if let Some(nc) = grown_cap {
                                    if nc > *cap {
                                        *cap = nc;
                                    }
                                }
                                let idx = if clock.len() < *cap {
                                    clock.push((key.clone(), true));
                                    (clock.len() - 1) as u32
                                } else {
                                    // At capacity: sweep, clearing
                                    // reference bits until an unreferenced
                                    // victim is found (bounded by one full
                                    // revolution — every bit cleared means
                                    // the hand's own slot comes up clear).
                                    let victim = loop {
                                        if clock[*hand].1 {
                                            clock[*hand].1 = false;
                                            *hand = (*hand + 1) % *cap;
                                        } else {
                                            break *hand;
                                        }
                                    };
                                    *hand = (victim + 1) % *cap;
                                    cache.remove(&clock[victim].0);
                                    if trace_on {
                                        evicted = Some((
                                            dyc_obs::key_hash(&clock[victim].0),
                                            victim as u32,
                                        ));
                                    }
                                    clock[victim] = (key.clone(), true);
                                    self.stats.cache_evictions += 1;
                                    victim as u32
                                };
                                cache.fill(slot, key.clone(), (f, idx));
                            }
                            _ => unreachable!(),
                        }
                        if let Some((ek, slot_idx)) = evicted {
                            self.trace.rec(
                                EventKind::CacheEvict,
                                point,
                                ek,
                                vm.stats.total_cycles(),
                                u64::from(slot_idx),
                                0,
                            );
                        }
                        f
                    }
                };
                self.scratch_key = key;
                func
            }
        };

        // Pass-through arguments, subset by the precomputed layout into
        // the interpreter's reusable buffer.
        let site = &self.sites[point as usize];
        if out_args.capacity() < site.dyn_pos.len() {
            self.stats.dispatch_allocs += 1;
        }
        out_args.extend(site.dyn_pos.iter().map(|&i| args[i]));
        // Native fast path: when the specialized function has an
        // installed machine-code entry, run it right here and hand the
        // interpreter a completed result instead of a frame to push.
        // Deliberately charges nothing to the cycle model — the modeled
        // staged pipeline is unchanged; only wall-clock improves.
        if self.staged.cfg.native {
            if let Some(entry) = self.native.entry(func) {
                let value = exec_entry(&entry, out_args, self, module, vm)?;
                return Ok(DispatchOutcome::Completed { value });
            }
        }
        Ok(DispatchOutcome::Invoke { func })
    }
}

impl NativeDispatch for Runtime {
    fn native_dispatch(
        &mut self,
        point: u32,
        args: &[Value],
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<Option<Value>, VmError> {
        // Mirror of the interpreter's `Dispatch` arm: count it, run the
        // handler, then either take the completed value (the callee ran
        // natively too) or interpret the specialized function.
        vm.stats.dispatches += 1;
        let mut out_args = Vec::new();
        match self.dispatch(point, args, &mut out_args, module, vm)? {
            DispatchOutcome::Completed { value } => Ok(value),
            DispatchOutcome::Invoke { func } => vm.call_with_handler(module, self, func, &out_args),
        }
    }

    fn native_call(
        &mut self,
        func: FuncId,
        args: &[Value],
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<Option<Value>, VmError> {
        if let Some(entry) = self.native.entry(func) {
            return exec_entry(&entry, args, self, module, vm);
        }
        vm.call_with_handler(module, self, func, args)
    }
}
