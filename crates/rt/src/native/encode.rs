//! Portable x86-64 encoding of the VM ISA (copy-and-patch lowering).
//!
//! This module turns sealed [`Instr`]s into the byte payload of a
//! [`NativeArtifact`]. It is *pure data transformation* — no memory
//! mapping, no execution — so it compiles and its golden-byte tests run
//! on every platform; only installing and calling the bytes (see the
//! platform backend in [`super`]) is gated on x86-64.
//!
//! # Register file in memory
//!
//! Generated code keeps the VM register file in memory rather than
//! allocating machine registers: `r14` points at a `u64` array of raw
//! register bits, `r13` at a parallel `u8` tag array (0 = int,
//! 1 = float), and `r15` at the [`NatCtx`](super) context struct. Every
//! VM register access is a single mov with a disp32 of `8 * vreg` (or
//! `vreg` for tags), which is exactly what makes copy-and-patch work:
//! two instructions with the same [`instr_shape`] differ only in those
//! disp32 fields and in 64-bit immediates, so a prebuilt byte sequence
//! plus a hole-patch loop reproduces a full re-encode.
//!
//! # ABI
//!
//! An emitted function is `unsafe extern "C" fn(*mut NatCtx) -> i32`.
//! The prologue saves `r13`/`r14`/`r15`, loads them from the context,
//! and leaves the stack 16-byte aligned at every helper call site. The
//! return value is a status code ([`STATUS_OK`] etc.); guest errors
//! (divide by zero, out-of-bounds addresses) exit through tiny inline
//! stubs so every non-branch instruction is position-independent.
//!
//! Semantic fidelity notes (each pinned by a golden test and exercised
//! by the differential suites):
//!
//! * `Div`/`Rem` guard `0` (status exit, matching [`dyc_vm::VmError::DivideByZero`])
//!   and `-1` (hand-expanded, because `idiv` traps on
//!   `i64::MIN / -1` where the VM's `wrapping_div` wraps).
//! * `Shl`/`Shr` use the `cl` shift whose architectural `& 63` masking
//!   equals the interpreter's.
//! * `FCmp` is NaN-correct: `Eq`/`Ne` combine `ZF` with `PF`, the
//!   orderings use `seta`/`setae` after operand-directed `ucomisd`.
//! * `FToI` calls back into Rust (`as i64` saturates and maps NaN to 0;
//!   `cvttsd2si` does neither).
//! * `Brz`/`Brnz` truthiness shifts the raw bits left by the tag, so a
//!   float's sign bit is ignored (`-0.0` is falsy) while every other
//!   bit pattern (NaN included) stays truthy — exactly
//!   [`dyc_vm::Value::is_truthy`].
//! * `Load`/`Store` bounds-check against the context's word count with
//!   an unsigned compare (negative addresses become huge), matching the
//!   interpreter's `Vec` indexing.

use dyc_vm::{
    instr_shape, Cc, CodeFunc, FAluOp, FuncId, HostFn, IAluOp, Instr, Operand, Reg, Ty, UnOp,
};
use std::collections::HashMap;

/// Normal completion; the `Ret` fields of the context are valid.
pub const STATUS_OK: i32 = 0;
/// Integer division by zero (maps to [`dyc_vm::VmError::DivideByZero`]).
pub const STATUS_DIV0: i32 = 1;
/// Out-of-bounds memory access; the faulting address is in the
/// context's `fault_addr` (the caller reproduces the VM's panic).
pub const STATUS_OOB: i32 = 2;
/// A helper call (host call, static call, or re-entrant dispatch)
/// failed; the error or panic payload is stashed in the call
/// environment.
pub const STATUS_HELPER: i32 = 3;
/// Execution fell off the end of the function (maps to
/// [`dyc_vm::VmError::PcOutOfRange`]).
pub const STATUS_FELL_OFF: i32 = 4;

// Byte offsets of the leading `#[repr(C)]` fields of `NatCtx`, baked
// into generated code as `[r15 + disp8]` accesses. The platform
// backend asserts they match `mem::offset_of!` at test time.
pub(crate) const CTX_REGS: u8 = 0x00;
pub(crate) const CTX_TAGS: u8 = 0x08;
pub(crate) const CTX_MEM: u8 = 0x10;
pub(crate) const CTX_MEM_LEN: u8 = 0x18;
pub(crate) const CTX_RET_BITS: u8 = 0x20;
pub(crate) const CTX_RET_TAG: u8 = 0x28;
pub(crate) const CTX_HAS_RET: u8 = 0x30;
pub(crate) const CTX_FAULT: u8 = 0x38;
pub(crate) const CTX_CALL: u8 = 0x40;
pub(crate) const CTX_FTOI: u8 = 0x48;

/// Byte length of the function prologue (`push r13/r14/r15`, load
/// `r15`/`r14`/`r13` from the context argument).
pub(crate) const PROLOGUE_LEN: usize = 17;

// Scratch GPR encodings.
const RAX: u8 = 0;
const RCX: u8 = 1;
const RDX: u8 = 2;

/// One call-shaped instruction the generated code re-enters Rust for.
/// The byte stream only carries an index into this table; the runtime
/// helper reads the argument registers, performs the call (host
/// function, static VM call, or re-entrant dispatch), and writes the
/// destination register.
#[derive(Debug, Clone, PartialEq)]
pub enum CallDesc {
    /// A [`Instr::CallHost`].
    Host {
        /// The host function.
        f: HostFn,
        /// Destination register for the result, if any.
        dst: Option<Reg>,
        /// Argument registers.
        args: Vec<Reg>,
    },
    /// A [`Instr::Call`] to another VM function.
    Static {
        /// The callee.
        func: FuncId,
        /// Destination register for the result, if any.
        dst: Option<Reg>,
        /// Argument registers.
        args: Vec<Reg>,
    },
    /// A [`Instr::Dispatch`] re-entering the run-time system.
    Dispatch {
        /// The dispatch point.
        point: u32,
        /// Destination register for the result, if any.
        dst: Option<Reg>,
        /// Argument registers.
        args: Vec<Reg>,
    },
}

/// The lowered form of one specialized function: position-independent
/// machine code plus the call table its call sites index. Plain data —
/// installing it into executable memory is the platform backend's job.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeArtifact {
    /// The machine code (prologue + lowered instructions + fell-off-end
    /// stub), position-independent.
    pub bytes: Vec<u8>,
    /// Call descriptors, indexed by the `mov esi, imm32` at each call
    /// site.
    pub calls: Vec<CallDesc>,
    /// One past the highest VM register the code touches (the executor
    /// sizes the register/tag buffers from this and the argument count).
    pub n_regs: u32,
}

/// Which operand field of an instruction a hole's value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Dst,
    A,
    B,
    Src,
    Base,
    Idx,
    Cond,
}

/// One patchable field of a prebuilt byte sequence.
#[derive(Debug, Clone, Copy)]
enum HoleKind {
    /// disp32 = `8 * reg(slot)` (a register-bits access off `r14`).
    RegDisp(Slot),
    /// disp32 = `reg(slot)` (a tag access off `r13`).
    TagDisp(Slot),
    /// A 64-bit immediate (`movabs`).
    Imm64,
}

#[derive(Debug, Clone, Copy)]
struct Hole {
    off: u32,
    kind: HoleKind,
}

#[derive(Debug, Clone)]
struct PreLowered {
    bytes: Vec<u8>,
    holes: Vec<Hole>,
}

#[derive(Debug, Clone, Copy)]
struct Branch {
    /// Byte position of the rel32 field.
    pos: u32,
    /// Index of the branch instruction (its target is read from the
    /// final instruction mirror at `finish` time).
    instr: u32,
}

/// Incremental encoder for one function. Feed it every sealed
/// instruction in order (with the instruction's [`instr_shape`] to
/// enable the copy-and-patch fast path), then [`FnEncoder::finish`]
/// with the final instruction vector to resolve branch rel32s.
#[derive(Debug)]
pub struct FnEncoder {
    buf: Vec<u8>,
    /// Byte offset of each instruction's first byte, in order.
    instr_offs: Vec<u32>,
    branches: Vec<Branch>,
    calls: Vec<CallDesc>,
    unsupported: bool,
    /// Prebuilt byte sequences, keyed by [`instr_shape`]. Populated on
    /// first encounter (the canonical instance's bytes *are* the
    /// template: every instance-dependent byte is covered by a hole).
    cache: HashMap<u16, PreLowered>,
    /// Hole positions recorded while encoding a cache-miss instance.
    scratch_holes: Vec<Hole>,
    recording: bool,
    max_reg: u32,
    /// Instructions instantiated through the prebuilt-bytes path.
    prelowered_hits: u64,
}

impl Default for FnEncoder {
    fn default() -> Self {
        FnEncoder::new()
    }
}

impl FnEncoder {
    /// A fresh encoder with the prologue already emitted.
    pub fn new() -> FnEncoder {
        let mut e = FnEncoder {
            buf: Vec::with_capacity(256),
            instr_offs: Vec::new(),
            branches: Vec::new(),
            calls: Vec::new(),
            unsupported: false,
            cache: HashMap::new(),
            scratch_holes: Vec::new(),
            recording: false,
            max_reg: 0,
            prelowered_hits: 0,
        };
        // push r13; push r14; push r15 — also re-aligns rsp to 16 at
        // every helper call site (entry rsp ≡ 8 mod 16 per SysV).
        e.bs(&[0x41, 0x55, 0x41, 0x56, 0x41, 0x57]);
        // mov r15, rdi; mov r14, [r15 + CTX_REGS]; mov r13, [r15 + CTX_TAGS]
        e.bs(&[0x49, 0x89, 0xFF]);
        e.bs(&[0x4D, 0x8B, 0x77, CTX_REGS]);
        e.bs(&[0x4D, 0x8B, 0x6F, CTX_TAGS]);
        debug_assert_eq!(e.buf.len(), PROLOGUE_LEN);
        e
    }

    /// True once an unsupported construct was seen; the function must
    /// fall back to VM interpretation ([`FnEncoder::finish`] returns
    /// `None`).
    pub fn unsupported(&self) -> bool {
        self.unsupported
    }

    /// Instructions instantiated via prebuilt bytes + hole patching
    /// instead of a full re-encode.
    pub fn prelowered_hits(&self) -> u64 {
        self.prelowered_hits
    }

    /// Append one instruction. `shape` is the instruction's
    /// [`instr_shape`] if the caller pre-computed it (template
    /// pre-lowering), or `0` to force a plain encode.
    pub fn emit(&mut self, ins: &Instr, shape: u16) {
        self.instr_offs.push(self.buf.len() as u32);
        if self.unsupported {
            return;
        }
        if let Some(d) = ins.def() {
            self.max_reg = self.max_reg.max(d + 1);
        }
        for u in ins.uses() {
            self.max_reg = self.max_reg.max(u + 1);
        }
        if shape != 0 {
            debug_assert_eq!(shape, instr_shape(ins), "stale template shape for {ins:?}");
            if let Some(pl) = self.cache.get(&shape) {
                // Copy-and-patch fast path: memcpy the prebuilt bytes,
                // then write each hole from this instance's fields.
                let at = self.buf.len();
                self.buf.extend_from_slice(&pl.bytes);
                // `pl` borrows `self.cache`; holes are Copy and few.
                let holes: Vec<Hole> = pl.holes.clone();
                for h in holes {
                    let p = at + h.off as usize;
                    match h.kind {
                        HoleKind::RegDisp(s) => {
                            let v = slot_reg(ins, s) * 8;
                            self.buf[p..p + 4].copy_from_slice(&v.to_le_bytes());
                        }
                        HoleKind::TagDisp(s) => {
                            let v = slot_reg(ins, s);
                            self.buf[p..p + 4].copy_from_slice(&v.to_le_bytes());
                        }
                        HoleKind::Imm64 => {
                            let v = imm_bits(ins);
                            self.buf[p..p + 8].copy_from_slice(&v.to_le_bytes());
                        }
                    }
                }
                self.prelowered_hits += 1;
                return;
            }
            // Cache miss: encode this instance with hole recording on.
            // Its bytes become the shape's template — every variable
            // byte is a recorded hole, so any later same-shape instance
            // patches to exactly what a re-encode would produce.
            self.recording = true;
            self.scratch_holes.clear();
            let start = self.buf.len();
            self.encode(ins);
            self.recording = false;
            let bytes = self.buf[start..].to_vec();
            let holes = self
                .scratch_holes
                .iter()
                .map(|h| Hole {
                    off: h.off - start as u32,
                    kind: h.kind,
                })
                .collect();
            self.cache.insert(shape, PreLowered { bytes, holes });
            return;
        }
        self.encode(ins);
    }

    /// Resolve every branch rel32 against the final instruction vector
    /// (branch targets may have been patched after emission), append
    /// the fell-off-end stub, and return the artifact. `None` if any
    /// construct was unsupported or a branch target is out of range —
    /// the caller falls back to VM interpretation.
    pub fn finish(mut self, code: &[Instr]) -> Option<NativeArtifact> {
        if self.unsupported {
            return None;
        }
        // A branch to one-past-the-last instruction lands here and
        // reports PcOutOfRange, exactly like the interpreter's fetch.
        let end = self.buf.len() as u32;
        self.exit_stub(STATUS_FELL_OFF as u8);
        for br in std::mem::take(&mut self.branches) {
            let target = match code.get(br.instr as usize) {
                Some(Instr::Jmp { target })
                | Some(Instr::Brz { target, .. })
                | Some(Instr::Brnz { target, .. }) => *target,
                other => unreachable!("branch fixup on non-branch {other:?}"),
            };
            let toff = if (target as usize) < self.instr_offs.len() {
                self.instr_offs[target as usize]
            } else if target as usize == self.instr_offs.len() {
                end
            } else {
                return None;
            };
            let rel = i64::from(toff) - (i64::from(br.pos) + 4);
            let rel = i32::try_from(rel).ok()?;
            let p = br.pos as usize;
            self.buf[p..p + 4].copy_from_slice(&rel.to_le_bytes());
        }
        Some(NativeArtifact {
            bytes: self.buf,
            calls: self.calls,
            n_regs: self.max_reg.max(1),
        })
    }

    // --- byte-level helpers -------------------------------------------

    fn b(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bs(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    fn le32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn hole32(&mut self, kind: HoleKind, v: u32) {
        if self.recording {
            self.scratch_holes.push(Hole {
                off: self.buf.len() as u32,
                kind,
            });
        }
        self.le32(v);
    }

    fn hole64(&mut self, bits: u64) {
        if self.recording {
            self.scratch_holes.push(Hole {
                off: self.buf.len() as u32,
                kind: HoleKind::Imm64,
            });
        }
        self.buf.extend_from_slice(&bits.to_le_bytes());
    }

    /// `mov gpr, [r14 + 8*r]` — load a VM register's raw bits.
    fn load_reg(&mut self, gpr: u8, slot: Slot, r: Reg) {
        self.bs(&[0x49, 0x8B, modrm(2, gpr, 6)]);
        self.hole32(HoleKind::RegDisp(slot), r * 8);
    }

    /// `mov [r14 + 8*r], gpr` — store raw bits to a VM register.
    fn store_reg(&mut self, gpr: u8, slot: Slot, r: Reg) {
        self.bs(&[0x49, 0x89, modrm(2, gpr, 6)]);
        self.hole32(HoleKind::RegDisp(slot), r * 8);
    }

    /// `movabs gpr, bits` with a 64-bit immediate hole.
    fn movabs_hole(&mut self, gpr: u8, bits: u64) {
        self.bs(&[0x48, 0xB8 + gpr]);
        self.hole64(bits);
    }

    /// `movabs gpr, bits` with a shape-constant immediate (no hole).
    fn movabs_const(&mut self, gpr: u8, bits: u64) {
        self.bs(&[0x48, 0xB8 + gpr]);
        self.buf.extend_from_slice(&bits.to_le_bytes());
    }

    /// `movsd xmm, [r14 + 8*r]`.
    fn xmm_load(&mut self, xmm: u8, slot: Slot, r: Reg) {
        self.bs(&[0xF2, 0x41, 0x0F, 0x10, modrm(2, xmm, 6)]);
        self.hole32(HoleKind::RegDisp(slot), r * 8);
    }

    /// `movsd [r14 + 8*r], xmm`.
    fn xmm_store(&mut self, xmm: u8, slot: Slot, r: Reg) {
        self.bs(&[0xF2, 0x41, 0x0F, 0x11, modrm(2, xmm, 6)]);
        self.hole32(HoleKind::RegDisp(slot), r * 8);
    }

    /// `mov byte [r13 + r], tag` — set a destination tag.
    fn tag_set(&mut self, slot: Slot, r: Reg, tag: u8) {
        self.bs(&[0x41, 0xC6, 0x85]);
        self.hole32(HoleKind::TagDisp(slot), r);
        self.b(tag);
    }

    /// `mov cl, [r13 + r]` — read a tag into `cl`.
    fn tag_to_cl(&mut self, slot: Slot, r: Reg) {
        self.bs(&[0x41, 0x8A, 0x8D]);
        self.hole32(HoleKind::TagDisp(slot), r);
    }

    /// `mov [r13 + r], cl` — copy a tag from `cl`.
    fn tag_from_cl(&mut self, slot: Slot, r: Reg) {
        self.bs(&[0x41, 0x88, 0x8D]);
        self.hole32(HoleKind::TagDisp(slot), r);
    }

    /// `mov eax, status; pop r15; pop r14; pop r13; ret` — 12 bytes,
    /// position-independent, inline at every guarded exit.
    fn exit_stub(&mut self, status: u8) {
        self.b(0xB8);
        self.le32(u32::from(status));
        self.bs(&[0x41, 0x5F, 0x41, 0x5E, 0x41, 0x5D, 0xC3]);
    }

    /// Load the second IAlu/ICmp operand into `rcx`.
    fn operand_to_rcx(&mut self, b: &Operand) {
        match *b {
            Operand::Reg(r) => self.load_reg(RCX, Slot::B, r),
            Operand::Imm(v) => self.movabs_hole(RCX, v as u64),
        }
    }

    /// Compute a memory address (`base` bits + `idx`) into `rax`,
    /// wrapping like the release-mode interpreter.
    fn addr_to_rax(&mut self, base: Reg, idx: &Operand) {
        self.load_reg(RAX, Slot::Base, base);
        match *idx {
            // add rax, [r14 + 8*r]
            Operand::Reg(r) => {
                self.bs(&[0x49, 0x03, modrm(2, RAX, 6)]);
                self.hole32(HoleKind::RegDisp(Slot::Idx), r * 8);
            }
            Operand::Imm(v) => {
                self.movabs_hole(RCX, v as u64);
                self.bs(&[0x48, 0x01, 0xC8]); // add rax, rcx
            }
        }
    }

    /// Bounds check `rax` against the context word count and load the
    /// memory base into `rcx`. Out of bounds exits with [`STATUS_OOB`]
    /// after stashing the faulting address.
    fn bounds_check(&mut self) {
        self.bs(&[0x49, 0x8B, 0x4F, CTX_MEM]); // mov rcx, [r15 + mem]
        self.bs(&[0x49, 0x3B, 0x47, CTX_MEM_LEN]); // cmp rax, [r15 + mem_len]
        self.bs(&[0x72, 0x10]); // jb +16 (over the stub)
        self.bs(&[0x49, 0x89, 0x47, CTX_FAULT]); // mov [r15 + fault], rax
        self.exit_stub(STATUS_OOB as u8);
    }

    /// Record a rel32 branch site (placeholder 0) for the *current*
    /// instruction; resolved in [`FnEncoder::finish`].
    fn branch_here(&mut self) {
        self.branches.push(Branch {
            pos: self.buf.len() as u32,
            instr: self.instr_offs.len() as u32 - 1,
        });
        self.le32(0);
    }

    /// `mov rdi, r15; mov esi, idx; call [r15 + call]; test eax, eax;
    /// jz +7; pop×3; ret` — the helper-call sequence shared by host
    /// calls, static calls, and re-entrant dispatch.
    fn call_desc(&mut self, desc: CallDesc) {
        let idx = self.calls.len() as u32;
        self.calls.push(desc);
        self.bs(&[0x4C, 0x89, 0xFF, 0xBE]);
        self.le32(idx);
        self.bs(&[0x41, 0xFF, 0x57, CTX_CALL]);
        self.bs(&[0x85, 0xC0, 0x74, 0x07]);
        self.bs(&[0x41, 0x5F, 0x41, 0x5E, 0x41, 0x5D, 0xC3]);
    }

    // --- per-instruction encoders -------------------------------------

    fn encode(&mut self, ins: &Instr) {
        match ins {
            Instr::MovI { dst, imm } => {
                self.movabs_hole(RAX, *imm as u64);
                self.store_reg(RAX, Slot::Dst, *dst);
                self.tag_set(Slot::Dst, *dst, 0);
            }
            Instr::MovF { dst, imm } => {
                self.movabs_hole(RAX, imm.to_bits());
                self.store_reg(RAX, Slot::Dst, *dst);
                self.tag_set(Slot::Dst, *dst, 1);
            }
            Instr::Mov { dst, src } | Instr::FMov { dst, src } => {
                self.load_reg(RAX, Slot::Src, *src);
                self.store_reg(RAX, Slot::Dst, *dst);
                self.tag_to_cl(Slot::Src, *src);
                self.tag_from_cl(Slot::Dst, *dst);
            }
            Instr::IAlu { op, dst, a, b } => {
                self.load_reg(RAX, Slot::A, *a);
                self.operand_to_rcx(b);
                match op {
                    IAluOp::Add => self.bs(&[0x48, 0x01, 0xC8]),
                    IAluOp::Sub => self.bs(&[0x48, 0x29, 0xC8]),
                    IAluOp::Mul => self.bs(&[0x48, 0x0F, 0xAF, 0xC1]),
                    IAluOp::And => self.bs(&[0x48, 0x21, 0xC8]),
                    IAluOp::Or => self.bs(&[0x48, 0x09, 0xC8]),
                    IAluOp::Xor => self.bs(&[0x48, 0x31, 0xC8]),
                    IAluOp::Shl => self.bs(&[0x48, 0xD3, 0xE0]), // shl rax, cl
                    IAluOp::Shr => self.bs(&[0x48, 0xD3, 0xF8]), // sar rax, cl
                    IAluOp::Div => {
                        self.bs(&[0x48, 0x85, 0xC9, 0x75, 0x0C]); // test; jnz +12
                        self.exit_stub(STATUS_DIV0 as u8);
                        // idiv traps on i64::MIN / -1; wrapping_div
                        // wraps to i64::MIN, i.e. neg rax.
                        self.bs(&[0x48, 0x83, 0xF9, 0xFF, 0x75, 0x05]); // cmp rcx,-1; jne +5
                        self.bs(&[0x48, 0xF7, 0xD8, 0xEB, 0x05]); // neg rax; jmp +5
                        self.bs(&[0x48, 0x99, 0x48, 0xF7, 0xF9]); // cqo; idiv rcx
                    }
                    IAluOp::Rem => {
                        self.bs(&[0x48, 0x85, 0xC9, 0x75, 0x0C]);
                        self.exit_stub(STATUS_DIV0 as u8);
                        // wrapping_rem(i64::MIN, -1) == 0.
                        self.bs(&[0x48, 0x83, 0xF9, 0xFF, 0x75, 0x04]); // cmp rcx,-1; jne +4
                        self.bs(&[0x31, 0xD2, 0xEB, 0x05]); // xor edx,edx; jmp +5
                        self.bs(&[0x48, 0x99, 0x48, 0xF7, 0xF9]); // cqo; idiv rcx
                        self.bs(&[0x48, 0x89, 0xD0]); // mov rax, rdx
                    }
                }
                self.store_reg(RAX, Slot::Dst, *dst);
                self.tag_set(Slot::Dst, *dst, 0);
            }
            Instr::ICmp { cc, dst, a, b } => {
                self.load_reg(RAX, Slot::A, *a);
                self.operand_to_rcx(b);
                self.bs(&[0x48, 0x39, 0xC8]); // cmp rax, rcx
                let setcc = match cc {
                    Cc::Eq => 0x94,
                    Cc::Ne => 0x95,
                    Cc::Lt => 0x9C, // setl (signed)
                    Cc::Le => 0x9E,
                    Cc::Gt => 0x9F,
                    Cc::Ge => 0x9D,
                };
                self.bs(&[0x0F, setcc, 0xC0]); // setcc al
                self.bs(&[0x0F, 0xB6, 0xC0]); // movzx eax, al
                self.store_reg(RAX, Slot::Dst, *dst);
                self.tag_set(Slot::Dst, *dst, 0);
            }
            Instr::FAlu { op, dst, a, b } => {
                self.xmm_load(0, Slot::A, *a);
                self.xmm_load(1, Slot::B, *b);
                let opc = match op {
                    FAluOp::Add => 0x58,
                    FAluOp::Sub => 0x5C,
                    FAluOp::Mul => 0x59,
                    FAluOp::Div => 0x5E,
                };
                self.bs(&[0xF2, 0x0F, opc, 0xC1]); // opsd xmm0, xmm1
                self.xmm_store(0, Slot::Dst, *dst);
                self.tag_set(Slot::Dst, *dst, 1);
            }
            Instr::FCmp { cc, dst, a, b } => {
                self.xmm_load(0, Slot::A, *a);
                self.xmm_load(1, Slot::B, *b);
                match cc {
                    Cc::Eq => {
                        self.bs(&[0x66, 0x0F, 0x2E, 0xC1]); // ucomisd xmm0, xmm1
                        self.bs(&[0x0F, 0x9B, 0xC1]); // setnp cl (ordered)
                        self.bs(&[0x0F, 0x94, 0xC0]); // sete al
                        self.bs(&[0x20, 0xC8]); // and al, cl
                    }
                    Cc::Ne => {
                        self.bs(&[0x66, 0x0F, 0x2E, 0xC1]);
                        self.bs(&[0x0F, 0x9A, 0xC1]); // setp cl (unordered)
                        self.bs(&[0x0F, 0x95, 0xC0]); // setne al
                        self.bs(&[0x08, 0xC8]); // or al, cl
                    }
                    // a < b  ⇔  b > a: seta after ucomisd b, a is false
                    // on unordered (CF set), matching Rust's partial
                    // compare.
                    Cc::Lt => {
                        self.bs(&[0x66, 0x0F, 0x2E, 0xC8]); // ucomisd xmm1, xmm0
                        self.bs(&[0x0F, 0x97, 0xC0]); // seta al
                    }
                    Cc::Le => {
                        self.bs(&[0x66, 0x0F, 0x2E, 0xC8]);
                        self.bs(&[0x0F, 0x93, 0xC0]); // setae al
                    }
                    Cc::Gt => {
                        self.bs(&[0x66, 0x0F, 0x2E, 0xC1]);
                        self.bs(&[0x0F, 0x97, 0xC0]);
                    }
                    Cc::Ge => {
                        self.bs(&[0x66, 0x0F, 0x2E, 0xC1]);
                        self.bs(&[0x0F, 0x93, 0xC0]);
                    }
                }
                self.bs(&[0x0F, 0xB6, 0xC0]); // movzx eax, al
                self.store_reg(RAX, Slot::Dst, *dst);
                self.tag_set(Slot::Dst, *dst, 0);
            }
            Instr::Un { op, dst, src } => match op {
                UnOp::NegI => {
                    self.load_reg(RAX, Slot::Src, *src);
                    self.bs(&[0x48, 0xF7, 0xD8]); // neg rax
                    self.store_reg(RAX, Slot::Dst, *dst);
                    self.tag_set(Slot::Dst, *dst, 0);
                }
                UnOp::NotI => {
                    self.load_reg(RAX, Slot::Src, *src);
                    self.bs(&[0x48, 0xF7, 0xD0]); // not rax
                    self.store_reg(RAX, Slot::Dst, *dst);
                    self.tag_set(Slot::Dst, *dst, 0);
                }
                UnOp::NegF => {
                    // Sign-bit flip, exactly `-f` (NaN payloads kept).
                    self.load_reg(RAX, Slot::Src, *src);
                    self.movabs_const(RCX, 0x8000_0000_0000_0000);
                    self.bs(&[0x48, 0x31, 0xC8]); // xor rax, rcx
                    self.store_reg(RAX, Slot::Dst, *dst);
                    self.tag_set(Slot::Dst, *dst, 1);
                }
                UnOp::IToF => {
                    self.load_reg(RAX, Slot::Src, *src);
                    self.bs(&[0xF2, 0x48, 0x0F, 0x2A, 0xC0]); // cvtsi2sd xmm0, rax
                    self.xmm_store(0, Slot::Dst, *dst);
                    self.tag_set(Slot::Dst, *dst, 1);
                }
                UnOp::FToI => {
                    // Rust's `as i64` saturates and maps NaN to 0;
                    // cvttsd2si does neither, so call back into Rust.
                    self.xmm_load(0, Slot::Src, *src);
                    self.bs(&[0x41, 0xFF, 0x57, CTX_FTOI]); // call [r15 + ftoi]
                    self.store_reg(RAX, Slot::Dst, *dst);
                    self.tag_set(Slot::Dst, *dst, 0);
                }
            },
            Instr::Load { ty, dst, base, idx } => {
                self.addr_to_rax(*base, idx);
                self.bounds_check();
                self.bs(&[0x48, 0x8B, 0x04, 0xC1]); // mov rax, [rcx + rax*8]
                self.store_reg(RAX, Slot::Dst, *dst);
                self.tag_set(Slot::Dst, *dst, matches!(ty, Ty::Float) as u8);
            }
            Instr::Store {
                ty: _,
                base,
                idx,
                src,
            } => {
                // The interpreter's store writes raw bits regardless of
                // the declared type; so do we.
                self.addr_to_rax(*base, idx);
                self.bounds_check();
                self.load_reg(RDX, Slot::Src, *src);
                self.bs(&[0x48, 0x89, 0x14, 0xC1]); // mov [rcx + rax*8], rdx
            }
            Instr::Jmp { .. } => {
                self.b(0xE9);
                self.branch_here();
            }
            Instr::Brz { cond, .. } | Instr::Brnz { cond, .. } => {
                // Truthiness: shift the raw bits left by the tag (0 for
                // ints, 1 for floats) so a float's sign bit is dropped
                // (-0.0 falsy) while NaNs and i64::MIN stay truthy —
                // exactly `Value::is_truthy`.
                self.load_reg(RAX, Slot::Cond, *cond);
                self.tag_to_cl(Slot::Cond, *cond);
                self.bs(&[0x48, 0xD3, 0xE0]); // shl rax, cl
                self.bs(&[0x48, 0x85, 0xC0]); // test rax, rax
                let jcc = if matches!(ins, Instr::Brz { .. }) {
                    0x84 // jz
                } else {
                    0x85 // jnz
                };
                self.bs(&[0x0F, jcc]);
                self.branch_here();
            }
            Instr::Ret { src } => {
                match src {
                    Some(r) => {
                        self.load_reg(RAX, Slot::Src, *r);
                        self.bs(&[0x49, 0x89, 0x47, CTX_RET_BITS]);
                        self.tag_to_cl(Slot::Src, *r);
                        self.bs(&[0x41, 0x88, 0x4F, CTX_RET_TAG]);
                        self.bs(&[0x41, 0xC6, 0x47, CTX_HAS_RET, 0x01]);
                    }
                    None => {
                        self.bs(&[0x41, 0xC6, 0x47, CTX_HAS_RET, 0x00]);
                    }
                }
                self.bs(&[0x31, 0xC0]); // xor eax, eax (STATUS_OK)
                self.bs(&[0x41, 0x5F, 0x41, 0x5E, 0x41, 0x5D, 0xC3]);
            }
            Instr::CallHost { f, dst, args } => {
                self.call_desc(CallDesc::Host {
                    f: *f,
                    dst: *dst,
                    args: args.clone(),
                });
            }
            Instr::Call { func, dst, args } => {
                self.call_desc(CallDesc::Static {
                    func: *func,
                    dst: *dst,
                    args: args.clone(),
                });
            }
            Instr::Dispatch { point, dst, args } => {
                self.call_desc(CallDesc::Dispatch {
                    point: *point,
                    dst: *dst,
                    args: args.clone(),
                });
            }
            Instr::Halt => {
                // Only harness top-levels halt; specialized regions never
                // should. Bail to the VM rather than encode it.
                self.unsupported = true;
            }
        }
    }
}

const fn modrm(md: u8, reg: u8, rm: u8) -> u8 {
    (md << 6) | (reg << 3) | rm
}

/// The register an instruction carries in `slot` (hole patching).
fn slot_reg(ins: &Instr, slot: Slot) -> u32 {
    match (ins, slot) {
        (Instr::MovI { dst, .. } | Instr::MovF { dst, .. }, Slot::Dst) => *dst,
        (Instr::Mov { dst, .. } | Instr::FMov { dst, .. }, Slot::Dst) => *dst,
        (Instr::Mov { src, .. } | Instr::FMov { src, .. }, Slot::Src) => *src,
        (Instr::IAlu { dst, .. } | Instr::ICmp { dst, .. }, Slot::Dst) => *dst,
        (Instr::IAlu { a, .. } | Instr::ICmp { a, .. }, Slot::A) => *a,
        (
            Instr::IAlu {
                b: Operand::Reg(r), ..
            }
            | Instr::ICmp {
                b: Operand::Reg(r), ..
            },
            Slot::B,
        ) => *r,
        (Instr::FAlu { dst, .. } | Instr::FCmp { dst, .. }, Slot::Dst) => *dst,
        (Instr::FAlu { a, .. } | Instr::FCmp { a, .. }, Slot::A) => *a,
        (Instr::FAlu { b, .. } | Instr::FCmp { b, .. }, Slot::B) => *b,
        (Instr::Un { dst, .. }, Slot::Dst) => *dst,
        (Instr::Un { src, .. }, Slot::Src) => *src,
        (Instr::Load { dst, .. }, Slot::Dst) => *dst,
        (Instr::Load { base, .. } | Instr::Store { base, .. }, Slot::Base) => *base,
        (
            Instr::Load {
                idx: Operand::Reg(r),
                ..
            }
            | Instr::Store {
                idx: Operand::Reg(r),
                ..
            },
            Slot::Idx,
        ) => *r,
        (Instr::Store { src, .. }, Slot::Src) => *src,
        (Instr::Brz { cond, .. } | Instr::Brnz { cond, .. }, Slot::Cond) => *cond,
        (Instr::Ret { src: Some(r) }, Slot::Src) => *r,
        _ => unreachable!("no {slot:?} slot on {ins:?}"),
    }
}

/// The 64-bit immediate an instruction carries (hole patching).
fn imm_bits(ins: &Instr) -> u64 {
    match ins {
        Instr::MovI { imm, .. } => *imm as u64,
        Instr::MovF { imm, .. } => imm.to_bits(),
        Instr::IAlu {
            b: Operand::Imm(v), ..
        }
        | Instr::ICmp {
            b: Operand::Imm(v), ..
        }
        | Instr::Load {
            idx: Operand::Imm(v),
            ..
        }
        | Instr::Store {
            idx: Operand::Imm(v),
            ..
        } => *v as u64,
        _ => unreachable!("no 64-bit immediate on {ins:?}"),
    }
}

/// Lower a complete [`CodeFunc`] to a [`NativeArtifact`], or `None` if
/// it contains an unsupported construct. Used by the online-specializer
/// install path and warm-start restore, where code arrives as finished
/// instruction vectors rather than through a sink.
pub fn lower_func(cf: &CodeFunc) -> Option<NativeArtifact> {
    let mut enc = FnEncoder::new();
    for ins in &cf.code {
        enc.emit(ins, instr_shape(ins));
    }
    enc.finish(&cf.code)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        s.split_whitespace()
            .flat_map(|w| {
                (0..w.len())
                    .step_by(2)
                    .map(|i| u8::from_str_radix(&w[i..i + 2], 16).unwrap())
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Encode one instruction (plain path) and return its bytes.
    fn enc1(ins: &Instr) -> Vec<u8> {
        let mut e = FnEncoder::new();
        e.emit(ins, 0);
        assert!(!e.unsupported());
        e.buf[PROLOGUE_LEN..].to_vec()
    }

    #[test]
    fn prologue_bytes_are_pinned() {
        let e = FnEncoder::new();
        assert_eq!(
            e.buf,
            hex("4155 4156 4157 4989FF 4D8B7700 4D8B6F08"),
            "push r13/r14/r15; mov r15,rdi; mov r14,[r15]; mov r13,[r15+8]"
        );
    }

    #[test]
    fn golden_movi() {
        assert_eq!(
            enc1(&Instr::MovI { dst: 2, imm: 7 }),
            hex("48B8 0700000000000000 498986 10000000 41C685 02000000 00")
        );
    }

    #[test]
    fn golden_movf() {
        assert_eq!(
            enc1(&Instr::MovF { dst: 0, imm: 1.5 }),
            hex("48B8 000000000000F83F 498986 00000000 41C685 00000000 01")
        );
    }

    #[test]
    fn golden_mov_and_fmov_copy_bits_and_tag() {
        let want = hex("498B86 00000000 498986 08000000 418A8D 00000000 41888D 01000000");
        assert_eq!(enc1(&Instr::Mov { dst: 1, src: 0 }), want);
        assert_eq!(enc1(&Instr::FMov { dst: 1, src: 0 }), want);
    }

    #[test]
    fn golden_ialu_add_reg() {
        assert_eq!(
            enc1(&Instr::IAlu {
                op: IAluOp::Add,
                dst: 2,
                a: 0,
                b: Operand::Reg(1),
            }),
            hex("498B86 00000000 498B8E 08000000 4801C8 498986 10000000 41C685 02000000 00")
        );
    }

    #[test]
    fn golden_ialu_shifts_use_cl_masking() {
        assert_eq!(
            enc1(&Instr::IAlu {
                op: IAluOp::Shl,
                dst: 0,
                a: 0,
                b: Operand::Imm(3),
            }),
            hex("498B86 00000000 48B9 0300000000000000 48D3E0 498986 00000000 41C685 00000000 00")
        );
        // Shr is arithmetic (sar): i64 semantics.
        assert_eq!(
            enc1(&Instr::IAlu {
                op: IAluOp::Shr,
                dst: 0,
                a: 0,
                b: Operand::Reg(1),
            }),
            hex("498B86 00000000 498B8E 08000000 48D3F8 498986 00000000 41C685 00000000 00")
        );
    }

    #[test]
    fn golden_div_guards_zero_and_min_over_minus_one() {
        assert_eq!(
            enc1(&Instr::IAlu {
                op: IAluOp::Div,
                dst: 0,
                a: 1,
                b: Operand::Reg(2),
            }),
            hex("498B86 08000000 498B8E 10000000 \
                 4885C9 750C B8 01000000 415F415E415DC3 \
                 4883F9FF 7505 48F7D8 EB05 4899 48F7F9 \
                 498986 00000000 41C685 00000000 00")
        );
    }

    #[test]
    fn golden_rem_result_in_rdx() {
        assert_eq!(
            enc1(&Instr::IAlu {
                op: IAluOp::Rem,
                dst: 0,
                a: 1,
                b: Operand::Reg(2),
            }),
            hex("498B86 08000000 498B8E 10000000 \
                 4885C9 750C B8 01000000 415F415E415DC3 \
                 4883F9FF 7504 31D2 EB05 4899 48F7F9 4889D0 \
                 498986 00000000 41C685 00000000 00")
        );
    }

    #[test]
    fn golden_icmp_lt_imm_is_signed() {
        assert_eq!(
            enc1(&Instr::ICmp {
                cc: Cc::Lt,
                dst: 1,
                a: 0,
                b: Operand::Imm(5),
            }),
            hex(
                "498B86 00000000 48B9 0500000000000000 4839C8 0F9CC0 0FB6C0 \
                 498986 08000000 41C685 01000000 00"
            )
        );
    }

    #[test]
    fn golden_falu_mul() {
        assert_eq!(
            enc1(&Instr::FAlu {
                op: FAluOp::Mul,
                dst: 2,
                a: 0,
                b: 1,
            }),
            hex("F2410F10 86 00000000 F2410F10 8E 08000000 F20F59C1 \
                 F2410F11 86 10000000 41C685 02000000 01")
        );
    }

    #[test]
    fn golden_fcmp_eq_is_nan_aware() {
        assert_eq!(
            enc1(&Instr::FCmp {
                cc: Cc::Eq,
                dst: 0,
                a: 1,
                b: 2,
            }),
            hex("F2410F10 86 08000000 F2410F10 8E 10000000 \
                 660F2EC1 0F9BC1 0F94C0 20C8 0FB6C0 \
                 498986 00000000 41C685 00000000 00")
        );
    }

    #[test]
    fn golden_fcmp_lt_swaps_operands_for_seta() {
        assert_eq!(
            enc1(&Instr::FCmp {
                cc: Cc::Lt,
                dst: 0,
                a: 1,
                b: 2,
            }),
            hex("F2410F10 86 08000000 F2410F10 8E 10000000 \
                 660F2EC8 0F97C0 0FB6C0 \
                 498986 00000000 41C685 00000000 00")
        );
    }

    #[test]
    fn golden_unops() {
        assert_eq!(
            enc1(&Instr::Un {
                op: UnOp::NegI,
                dst: 0,
                src: 1,
            }),
            hex("498B86 08000000 48F7D8 498986 00000000 41C685 00000000 00")
        );
        assert_eq!(
            enc1(&Instr::Un {
                op: UnOp::NotI,
                dst: 0,
                src: 1,
            }),
            hex("498B86 08000000 48F7D0 498986 00000000 41C685 00000000 00")
        );
        assert_eq!(
            enc1(&Instr::Un {
                op: UnOp::NegF,
                dst: 0,
                src: 1,
            }),
            hex("498B86 08000000 48B9 0000000000000080 4831C8 498986 00000000 41C685 00000000 01")
        );
        assert_eq!(
            enc1(&Instr::Un {
                op: UnOp::IToF,
                dst: 1,
                src: 0,
            }),
            hex("498B86 00000000 F2480F2AC0 F2410F11 86 08000000 41C685 01000000 01")
        );
        assert_eq!(
            enc1(&Instr::Un {
                op: UnOp::FToI,
                dst: 0,
                src: 1,
            }),
            hex("F2410F10 86 08000000 41FF5748 498986 00000000 41C685 00000000 00")
        );
    }

    #[test]
    fn golden_load_bounds_checks_and_tags() {
        assert_eq!(
            enc1(&Instr::Load {
                ty: Ty::Int,
                dst: 2,
                base: 0,
                idx: Operand::Reg(1),
            }),
            hex("498B86 00000000 4903 86 08000000 \
                 498B4F10 493B4718 7210 49894738 B8 02000000 415F415E415DC3 \
                 488B04C1 498986 10000000 41C685 02000000 00")
        );
        // Float load differs only in the tag immediate.
        let f = enc1(&Instr::Load {
            ty: Ty::Float,
            dst: 2,
            base: 0,
            idx: Operand::Reg(1),
        });
        assert_eq!(f[f.len() - 1], 0x01);
    }

    #[test]
    fn golden_store_writes_raw_bits() {
        assert_eq!(
            enc1(&Instr::Store {
                ty: Ty::Int,
                base: 0,
                idx: Operand::Imm(3),
                src: 1,
            }),
            hex("498B86 00000000 48B9 0300000000000000 4801C8 \
                 498B4F10 493B4718 7210 49894738 B8 02000000 415F415E415DC3 \
                 498B96 08000000 488914C1")
        );
        // Store ignores the declared type entirely: same bytes.
        assert_eq!(
            enc1(&Instr::Store {
                ty: Ty::Float,
                base: 0,
                idx: Operand::Imm(3),
                src: 1,
            }),
            enc1(&Instr::Store {
                ty: Ty::Int,
                base: 0,
                idx: Operand::Imm(3),
                src: 1,
            })
        );
    }

    #[test]
    fn golden_ret_and_call_sequences() {
        assert_eq!(
            enc1(&Instr::Ret { src: Some(0) }),
            hex(
                "498B86 00000000 49894720 418A8D 00000000 41884F28 41C6473001 \
                 31C0 415F415E415DC3"
            )
        );
        assert_eq!(
            enc1(&Instr::Ret { src: None }),
            hex("41C6473000 31C0 415F415E415DC3")
        );
        assert_eq!(
            enc1(&Instr::CallHost {
                f: HostFn::Cos,
                dst: Some(0),
                args: vec![1],
            }),
            hex("4C89FF BE 00000000 41FF5740 85C0 7407 415F415E415DC3")
        );
    }

    #[test]
    fn branch_rel32_forward_and_backward() {
        // [0] Jmp → 1  (forward, rel = 0: lands right after the rel32)
        // [1] Jmp → 0  (backward)
        // [2] Ret
        let code = vec![
            Instr::Jmp { target: 1 },
            Instr::Jmp { target: 0 },
            Instr::Ret { src: None },
        ];
        let mut e = FnEncoder::new();
        for i in &code {
            e.emit(i, 0);
        }
        let art = e.finish(&code).unwrap();
        let b = &art.bytes;
        let p = PROLOGUE_LEN;
        assert_eq!(b[p], 0xE9);
        let rel0 = i32::from_le_bytes(b[p + 1..p + 5].try_into().unwrap());
        assert_eq!(rel0, 0, "jump to the next instruction");
        assert_eq!(b[p + 5], 0xE9);
        let rel1 = i32::from_le_bytes(b[p + 6..p + 10].try_into().unwrap());
        assert_eq!(rel1, -10, "back over both 5-byte jumps");
    }

    #[test]
    fn branch_to_one_past_the_end_hits_the_fell_off_stub() {
        // Brz → 2 with only 2 instructions: falls into the stub, which
        // reports STATUS_FELL_OFF (the interpreter's PcOutOfRange).
        let code = vec![Instr::Brz { cond: 0, target: 2 }, Instr::Ret { src: None }];
        let mut e = FnEncoder::new();
        for i in &code {
            e.emit(i, 0);
        }
        let art = e.finish(&code).unwrap();
        // The stub is the last 12 bytes: mov eax, 4; pop×3; ret.
        let n = art.bytes.len();
        assert_eq!(&art.bytes[n - 12..], &hex("B8 04000000 415F415E415DC3")[..]);
        // An out-of-range target (beyond end+1) refuses to lower.
        let bad = vec![Instr::Jmp { target: 9 }, Instr::Ret { src: None }];
        let mut e = FnEncoder::new();
        for i in &bad {
            e.emit(i, 0);
        }
        assert!(e.finish(&bad).is_none());
    }

    #[test]
    fn halt_is_unsupported() {
        let mut e = FnEncoder::new();
        e.emit(&Instr::Halt, 0);
        assert!(e.unsupported());
        assert!(e.finish(&[Instr::Halt]).is_none());
    }

    /// Every prelowerable shape: (canonical instance, different-field
    /// instance). The second must patch to exactly what a plain encode
    /// produces.
    fn shape_samples() -> Vec<(Instr, Instr)> {
        let mut v: Vec<(Instr, Instr)> = vec![
            (
                Instr::MovI { dst: 0, imm: 1 },
                Instr::MovI { dst: 5, imm: -77 },
            ),
            (
                Instr::MovF { dst: 0, imm: 1.0 },
                Instr::MovF { dst: 4, imm: -0.5 },
            ),
            (Instr::Mov { dst: 0, src: 1 }, Instr::Mov { dst: 7, src: 3 }),
            (
                Instr::FMov { dst: 0, src: 1 },
                Instr::FMov { dst: 2, src: 9 },
            ),
            (
                Instr::Un {
                    op: UnOp::FToI,
                    dst: 0,
                    src: 1,
                },
                Instr::Un {
                    op: UnOp::FToI,
                    dst: 3,
                    src: 8,
                },
            ),
        ];
        for op in [
            IAluOp::Add,
            IAluOp::Sub,
            IAluOp::Mul,
            IAluOp::Div,
            IAluOp::Rem,
            IAluOp::And,
            IAluOp::Or,
            IAluOp::Xor,
            IAluOp::Shl,
            IAluOp::Shr,
        ] {
            v.push((
                Instr::IAlu {
                    op,
                    dst: 0,
                    a: 1,
                    b: Operand::Reg(2),
                },
                Instr::IAlu {
                    op,
                    dst: 6,
                    a: 4,
                    b: Operand::Reg(9),
                },
            ));
            v.push((
                Instr::IAlu {
                    op,
                    dst: 0,
                    a: 1,
                    b: Operand::Imm(2),
                },
                Instr::IAlu {
                    op,
                    dst: 3,
                    a: 7,
                    b: Operand::Imm(-123456789),
                },
            ));
        }
        for op in [FAluOp::Add, FAluOp::Sub, FAluOp::Mul, FAluOp::Div] {
            v.push((
                Instr::FAlu {
                    op,
                    dst: 0,
                    a: 1,
                    b: 2,
                },
                Instr::FAlu {
                    op,
                    dst: 5,
                    a: 6,
                    b: 7,
                },
            ));
        }
        for cc in [Cc::Eq, Cc::Ne, Cc::Lt, Cc::Le, Cc::Gt, Cc::Ge] {
            v.push((
                Instr::ICmp {
                    cc,
                    dst: 0,
                    a: 1,
                    b: Operand::Reg(2),
                },
                Instr::ICmp {
                    cc,
                    dst: 8,
                    a: 2,
                    b: Operand::Reg(5),
                },
            ));
            v.push((
                Instr::ICmp {
                    cc,
                    dst: 0,
                    a: 1,
                    b: Operand::Imm(0),
                },
                Instr::ICmp {
                    cc,
                    dst: 1,
                    a: 9,
                    b: Operand::Imm(i64::MIN),
                },
            ));
            v.push((
                Instr::FCmp {
                    cc,
                    dst: 0,
                    a: 1,
                    b: 2,
                },
                Instr::FCmp {
                    cc,
                    dst: 4,
                    a: 8,
                    b: 3,
                },
            ));
        }
        for op in [UnOp::NegI, UnOp::NotI, UnOp::NegF, UnOp::IToF] {
            v.push((
                Instr::Un { op, dst: 0, src: 1 },
                Instr::Un { op, dst: 9, src: 2 },
            ));
        }
        for ty in [Ty::Int, Ty::Float] {
            v.push((
                Instr::Load {
                    ty,
                    dst: 0,
                    base: 1,
                    idx: Operand::Reg(2),
                },
                Instr::Load {
                    ty,
                    dst: 5,
                    base: 3,
                    idx: Operand::Reg(7),
                },
            ));
            v.push((
                Instr::Load {
                    ty,
                    dst: 0,
                    base: 1,
                    idx: Operand::Imm(0),
                },
                Instr::Load {
                    ty,
                    dst: 2,
                    base: 8,
                    idx: Operand::Imm(4096),
                },
            ));
            v.push((
                Instr::Store {
                    ty,
                    base: 0,
                    idx: Operand::Reg(1),
                    src: 2,
                },
                Instr::Store {
                    ty,
                    base: 4,
                    idx: Operand::Reg(6),
                    src: 9,
                },
            ));
            v.push((
                Instr::Store {
                    ty,
                    base: 0,
                    idx: Operand::Imm(1),
                    src: 2,
                },
                Instr::Store {
                    ty,
                    base: 3,
                    idx: Operand::Imm(-1),
                    src: 5,
                },
            ));
        }
        v
    }

    #[test]
    fn hole_patch_round_trips_every_shape() {
        for (a, b) in shape_samples() {
            let shape = instr_shape(&a);
            assert_ne!(shape, 0, "{a:?} should be prelowerable");
            assert_eq!(shape, instr_shape(&b), "samples must share a shape");
            let direct = enc1(&b);
            let mut e = FnEncoder::new();
            e.emit(&a, shape); // miss: builds the prebuilt bytes
            let start = e.buf.len();
            e.emit(&b, shape); // hit: memcpy + hole patch
            assert_eq!(e.prelowered_hits(), 1);
            assert_eq!(
                &e.buf[start..],
                &direct[..],
                "patched {b:?} must equal a plain encode"
            );
        }
    }

    #[test]
    fn shapes_are_distinct_across_samples() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for (a, _) in shape_samples() {
            assert!(
                seen.insert(instr_shape(&a)),
                "shape collision at {a:?} — two different encodings share a shape id"
            );
        }
    }

    #[test]
    fn lower_func_counts_registers() {
        let mut cf = CodeFunc::new("t", 1, 8);
        cf.push(Instr::MovI { dst: 6, imm: 3 });
        cf.push(Instr::Ret { src: Some(6) });
        let art = lower_func(&cf).unwrap();
        assert_eq!(art.n_regs, 7);
        assert!(art.calls.is_empty());
        assert!(art.bytes.len() > PROLOGUE_LEN);
    }
}
