//! Native x86-64 execution backend (copy-and-patch).
//!
//! Everything else in this crate measures dynamic compilation in
//! *modeled cycles*; this module is where the cycle-model speedups
//! become wall-clock speedups. Specialized functions are lowered from
//! VM instructions to real x86-64 machine code ([`encode`]), installed
//! into an mmap'd code arena under a strict W^X discipline (the
//! platform backend), and invoked directly from dispatch — with the VM
//! interpreter kept as both the semantic oracle (differential and fuzz
//! suites compare results, output, and memory word-for-word) and the
//! fallback for anything the encoder does not support.
//!
//! The module splits in two:
//!
//! * [`encode`] — pure byte generation, compiled and tested on every
//!   platform;
//! * a platform backend (x86-64 Unix only, and absent under
//!   `--cfg dyc_no_native`) that owns executable memory and actually
//!   calls the generated code. On other platforms a stub with the same
//!   surface is compiled instead: installs report "fallback" and
//!   dispatch never sees a native entry, so the runtime degrades to
//!   pure VM interpretation with no `cfg` in its own logic.
//!
//! Cycle accounting is deliberately untouched: a native call charges
//! nothing to the model (the paper's Table 3/5 numbers remain those of
//! the staged VM pipeline), and `OptConfig::native` is excluded from
//! artifact config hashes for the same reason. The new observability is
//! wall-clock: `native_installs`/`native_fallbacks` meters and the
//! `wall_clock` section of the benchmark report.

pub mod encode;

pub use encode::{lower_func, CallDesc, FnEncoder, NativeArtifact};

use dyc_vm::{FuncId, Module, Value, Vm, VmError};

/// Re-entry seam between generated native code and the run-time
/// system. The backend's call helper funnels every `Call`, `CallHost`,
/// and `Dispatch` instruction through this trait, so nested dispatches
/// hit the same code cache (and the same single-flight machinery) as
/// interpreted ones. Implemented by `Runtime` and `ThreadRuntime`.
pub trait NativeDispatch {
    /// Handle a `Dispatch` executed by native code: cache lookup,
    /// specialization on a miss, then run the specialized function
    /// (natively where possible) and return its result.
    fn native_dispatch(
        &mut self,
        point: u32,
        args: &[Value],
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<Option<Value>, VmError>;

    /// Handle a static `Call` executed by native code.
    fn native_call(
        &mut self,
        func: FuncId,
        args: &[Value],
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<Option<Value>, VmError>;
}

/// The backend is compiled only where it can actually run; this
/// predicate is repeated verbatim on the `use` below and in the stub's
/// negation.
#[cfg(all(target_arch = "x86_64", unix, not(dyc_no_native)))]
mod backend;

#[cfg(all(target_arch = "x86_64", unix, not(dyc_no_native)))]
pub use backend::{exec_entry, Entry, NativeEngine};

#[cfg(not(all(target_arch = "x86_64", unix, not(dyc_no_native))))]
mod stub {
    //! Uninhabited stand-in for the platform backend: same surface,
    //! no executable memory. `install` always reports fallback and
    //! `entry` never yields, so `exec_entry` is statically unreachable
    //! (its [`Entry`] is an empty enum).

    use super::{NativeArtifact, NativeDispatch};
    use dyc_vm::{FuncId, Module, Value, Vm, VmError};

    /// An installed native entry point. Uninhabited on platforms
    /// without the backend — no value of this type can exist.
    #[derive(Debug, Clone)]
    pub enum Entry {}

    /// No-op engine for platforms without the native backend.
    #[derive(Debug, Default)]
    pub struct NativeEngine {}

    impl NativeEngine {
        /// A new (inert) engine.
        pub fn new() -> NativeEngine {
            NativeEngine {}
        }

        /// Always `None`: every install is a fallback here.
        pub fn install(&mut self, _func: FuncId, _art: Option<NativeArtifact>) -> Option<usize> {
            None
        }

        /// Always `None`: nothing is ever installed.
        pub fn entry(&self, _func: FuncId) -> Option<Entry> {
            None
        }

        /// Number of installed functions (always zero).
        pub fn installed(&self) -> usize {
            0
        }
    }

    /// Statically unreachable: no [`Entry`] value can exist.
    pub fn exec_entry(
        entry: &Entry,
        _args: &[Value],
        _host: &mut dyn NativeDispatch,
        _module: &mut Module,
        _vm: &mut Vm,
    ) -> Result<Option<Value>, VmError> {
        match *entry {}
    }
}

#[cfg(not(all(target_arch = "x86_64", unix, not(dyc_no_native))))]
pub use stub::{exec_entry, Entry, NativeEngine};
