//! x86-64/Unix platform backend: executable-memory arena, call-helper
//! seam, and the native executor.
//!
//! # W^X discipline
//!
//! Code pages are mmap'd `PROT_READ|PROT_WRITE`, filled, then flipped
//! to `PROT_READ|PROT_EXEC` before publication. No page is ever
//! writable and executable at once: protection requests go through a
//! two-state machine ([`Prot`]) whose encoding simply has no W+X value,
//! and the `mprotect` wrapper asserts the invariant again at the call
//! site. Appending to a chunk that already holds published code flips
//! it RX→RW→RX; that is safe here because an engine (and so its arena)
//! is owned by one dispatch handler and never mid-execution while
//! installing — a nested install triggered from generated code happens
//! while control is in Rust, and the chunk is executable again before
//! control returns to guest code.
//!
//! Publication issues a sequentially-consistent fence after the RX
//! flip so the store of the entry pointer cannot be reordered before
//! the bytes and protections are visible; on x86-64 the instruction
//! cache is coherent after an mprotect round-trip (the kernel's TLB
//! shootdown serializes), so no explicit cache flush is required.
//!
//! # Executor
//!
//! [`exec_entry`] materializes the register file (`u64` bits + `u8`
//! tags) in pooled thread-local buffers, builds the [`NatCtx`] the
//! generated code addresses off `r15`, and maps the returned status
//! back onto VM semantics — including re-triggering the interpreter's
//! exact out-of-bounds panic and resuming panics that crossed the
//! native frame (unwinding through JIT frames would be undefined
//! behaviour, so helpers catch panics and the executor re-raises them).

use super::encode::{
    CallDesc, NativeArtifact, CTX_CALL, CTX_FAULT, CTX_FTOI, CTX_HAS_RET, CTX_MEM, CTX_MEM_LEN,
    CTX_REGS, CTX_RET_BITS, CTX_RET_TAG, CTX_TAGS, STATUS_DIV0, STATUS_FELL_OFF, STATUS_HELPER,
    STATUS_OK, STATUS_OOB,
};
use super::NativeDispatch;
use dyc_vm::{FuncId, Module, Reg, Value, Vm, VmError};
use std::cell::RefCell;
use std::collections::HashMap;
use std::ffi::c_void;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{fence, Ordering};
use std::sync::Arc;

// Minimal mmap surface, declared by hand: the workspace carries no
// external dependencies, and std already links libc.
extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut c_void;
    fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
    fn munmap(addr: *mut c_void, len: usize) -> i32;
}

const PROT_READ: i32 = 1;
const PROT_WRITE: i32 = 2;
const PROT_EXEC: i32 = 4;
const MAP_PRIVATE: i32 = 2;
#[cfg(target_os = "linux")]
const MAP_ANONYMOUS: i32 = 0x20;
#[cfg(not(target_os = "linux"))]
const MAP_ANONYMOUS: i32 = 0x1000; // BSD lineage (macOS et al.)

const PAGE: usize = 4096;
const MIN_CHUNK: usize = 64 * PAGE;

/// The only two protection states a code page can be in. There is no
/// W+X variant by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Prot {
    /// Readable + writable (filling).
    Rw,
    /// Readable + executable (published).
    Rx,
}

impl Prot {
    fn flags(self) -> i32 {
        match self {
            Prot::Rw => PROT_READ | PROT_WRITE,
            Prot::Rx => PROT_READ | PROT_EXEC,
        }
    }
}

#[derive(Debug)]
struct Chunk {
    base: *mut u8,
    cap: usize,
    len: usize,
    state: Prot,
}

/// Growable executable-memory arena. Chunks never move once mapped, so
/// published entry pointers stay valid for the arena's lifetime.
#[derive(Debug, Default)]
struct Arena {
    chunks: Vec<Chunk>,
}

// The arena is raw memory owned exclusively by its engine; the engine
// lives inside a single dispatch handler, which the concurrent runtime
// moves across threads (ThreadRuntime is Send). Nothing aliases the
// mapping.
unsafe impl Send for Arena {}
// SAFETY: every mutation (install, protect, growth) requires `&mut
// Arena`; through `&Arena` the mapping is only read, and published
// chunks are immutable RX memory behind a release fence.
unsafe impl Sync for Arena {}

impl Arena {
    /// Flip a chunk's protection, enforcing the W^X state machine.
    fn protect(chunk: &mut Chunk, to: Prot) {
        if chunk.state == to {
            return;
        }
        let flags = to.flags();
        // The invariant, restated at the call site: never W and X.
        debug_assert!(
            !(flags & PROT_WRITE != 0 && flags & PROT_EXEC != 0),
            "W^X violation requested"
        );
        let rc = unsafe { mprotect(chunk.base as *mut c_void, chunk.cap, flags) };
        assert_eq!(rc, 0, "mprotect failed on native code arena");
        chunk.state = to;
    }

    /// Copy `bytes` into executable memory and publish them. Returns
    /// the (16-byte aligned) entry pointer, or `None` if the kernel
    /// refuses memory.
    fn install(&mut self, bytes: &[u8]) -> Option<*const u8> {
        let need = (bytes.len() + 15) & !15;
        let idx = match self.chunks.iter().position(|c| c.cap - c.len >= need) {
            Some(i) => i,
            None => {
                let cap = need.max(MIN_CHUNK).next_multiple_of(PAGE);
                let base = unsafe {
                    mmap(
                        std::ptr::null_mut(),
                        cap,
                        Prot::Rw.flags(),
                        MAP_PRIVATE | MAP_ANONYMOUS,
                        -1,
                        0,
                    )
                };
                if base as isize == -1 || base.is_null() {
                    return None;
                }
                self.chunks.push(Chunk {
                    base: base as *mut u8,
                    cap,
                    len: 0,
                    state: Prot::Rw,
                });
                self.chunks.len() - 1
            }
        };
        let chunk = &mut self.chunks[idx];
        Self::protect(chunk, Prot::Rw);
        let at = unsafe { chunk.base.add(chunk.len) };
        unsafe { std::ptr::copy_nonoverlapping(bytes.as_ptr(), at, bytes.len()) };
        chunk.len += need;
        Self::protect(chunk, Prot::Rx);
        // Publication barrier: the entry pointer must not become
        // visible before the code bytes and the RX protection.
        fence(Ordering::SeqCst);
        Some(at as *const u8)
    }

    /// True when every chunk is at rest in the executable state (and,
    /// by the state machine, was never W+X at any point).
    #[cfg(test)]
    fn all_published(&self) -> bool {
        self.chunks.iter().all(|c| c.state == Prot::Rx)
    }
}

impl Drop for Arena {
    fn drop(&mut self) {
        for c in &self.chunks {
            unsafe { munmap(c.base as *mut c_void, c.cap) };
        }
    }
}

/// The context struct generated code addresses off `r15`. Field order
/// is ABI: the encoder bakes these offsets in as disp8 (asserted
/// against `offset_of!` below).
#[repr(C)]
struct NatCtx {
    regs: *mut u64,
    tags: *mut u8,
    mem: *mut u64,
    mem_len: u64,
    ret_bits: u64,
    ret_tag: u64,
    has_ret: u64,
    fault_addr: u64,
    call_fn: unsafe extern "C" fn(*mut NatCtx, u32) -> i32,
    ftoi_fn: unsafe extern "C" fn(f64) -> i64,
    env: *mut c_void,
}

const _: () = {
    use std::mem::offset_of;
    assert!(offset_of!(NatCtx, regs) == CTX_REGS as usize);
    assert!(offset_of!(NatCtx, tags) == CTX_TAGS as usize);
    assert!(offset_of!(NatCtx, mem) == CTX_MEM as usize);
    assert!(offset_of!(NatCtx, mem_len) == CTX_MEM_LEN as usize);
    assert!(offset_of!(NatCtx, ret_bits) == CTX_RET_BITS as usize);
    assert!(offset_of!(NatCtx, ret_tag) == CTX_RET_TAG as usize);
    assert!(offset_of!(NatCtx, has_ret) == CTX_HAS_RET as usize);
    assert!(offset_of!(NatCtx, fault_addr) == CTX_FAULT as usize);
    assert!(offset_of!(NatCtx, call_fn) == CTX_CALL as usize);
    assert!(offset_of!(NatCtx, ftoi_fn) == CTX_FTOI as usize);
};

/// Rust-side state reachable from a running native frame (via the
/// type-erased `NatCtx::env` pointer).
struct Env<'a> {
    calls: &'a [CallDesc],
    host: &'a mut dyn NativeDispatch,
    module: &'a mut Module,
    vm: &'a mut Vm,
    err: Option<VmError>,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// `Value::F(x) as i64` — Rust cast semantics (saturating, NaN → 0),
/// which `cvttsd2si` does not provide. Cannot panic.
unsafe extern "C" fn helper_ftoi(x: f64) -> i64 {
    x as i64
}

/// Entry point for every `Call`/`CallHost`/`Dispatch` in generated
/// code. Returns a status; panics are caught (unwinding through a JIT
/// frame is UB) and stashed for [`exec_entry`] to resume.
unsafe extern "C" fn helper_call(ctx: *mut NatCtx, idx: u32) -> i32 {
    match catch_unwind(AssertUnwindSafe(|| helper_call_inner(ctx, idx))) {
        Ok(status) => status,
        Err(p) => {
            let env = &mut *((*ctx).env as *mut Env);
            env.panic = Some(p);
            STATUS_HELPER
        }
    }
}

unsafe fn helper_call_inner(ctx: *mut NatCtx, idx: u32) -> i32 {
    let c = &mut *ctx;
    let env = &mut *(c.env as *mut Env);
    let read = |r: Reg| {
        let bits = *c.regs.add(r as usize);
        if *c.tags.add(r as usize) == 0 {
            Value::int_from_bits(bits)
        } else {
            Value::float_from_bits(bits)
        }
    };
    let (dst, result) = match &env.calls[idx as usize] {
        CallDesc::Host { f, dst, args } => {
            let vals: Vec<Value> = args.iter().map(|&r| read(r)).collect();
            (*dst, Ok(f.eval(&vals, &mut env.vm.output)))
        }
        CallDesc::Static { func, dst, args } => {
            let vals: Vec<Value> = args.iter().map(|&r| read(r)).collect();
            (*dst, env.host.native_call(*func, &vals, env.module, env.vm))
        }
        CallDesc::Dispatch { point, dst, args } => {
            let vals: Vec<Value> = args.iter().map(|&r| read(r)).collect();
            (
                *dst,
                env.host.native_dispatch(*point, &vals, env.module, env.vm),
            )
        }
    };
    // Re-entry may have grown guest memory; refresh the pointer the
    // generated bounds checks read.
    c.mem = env.vm.mem.as_mut_ptr();
    c.mem_len = env.vm.mem.len() as u64;
    match result {
        Ok(val) => {
            if let (Some(d), Some(v)) = (dst, val) {
                *c.regs.add(d as usize) = v.to_bits();
                *c.tags.add(d as usize) = !v.is_int() as u8;
            }
            STATUS_OK
        }
        Err(e) => {
            env.err = Some(e);
            STATUS_HELPER
        }
    }
}

/// An installed, published native entry point: code pointer, frame
/// size, and the call table the code indexes. Cheap to clone; the
/// bytes live in the engine's arena for as long as the engine does.
#[derive(Debug, Clone)]
pub struct Entry {
    code: *const u8,
    n_regs: u32,
    calls: Arc<[CallDesc]>,
}

// The code pointer targets immutable (RX) arena memory that outlives
// every Entry clone within the owning runtime; entries travel with
// their (Send) dispatch handler.
unsafe impl Send for Entry {}
// SAFETY: an Entry is an immutable description of published RX memory;
// sharing references cannot race (execution takes `&Entry`).
unsafe impl Sync for Entry {}

/// Owner of the code arena and the `FuncId → Entry` table. One engine
/// per dispatch handler (`Runtime` / `ThreadRuntime`).
#[derive(Debug, Default)]
pub struct NativeEngine {
    arena: Arena,
    entries: HashMap<FuncId, Entry>,
}

impl NativeEngine {
    /// A new engine with no mapped memory (the first install maps it).
    pub fn new() -> NativeEngine {
        NativeEngine::default()
    }

    /// Install a lowered function. Returns the installed byte count,
    /// or `None` (a recorded fallback) when the artifact is absent —
    /// the encoder bailed — or the kernel refuses executable memory.
    pub fn install(&mut self, func: FuncId, art: Option<NativeArtifact>) -> Option<usize> {
        let art = art?;
        let code = self.arena.install(&art.bytes)?;
        let n = art.bytes.len();
        self.entries.insert(
            func,
            Entry {
                code,
                n_regs: art.n_regs,
                calls: art.calls.into(),
            },
        );
        Some(n)
    }

    /// The published entry for `func`, if one was installed. Returns an
    /// owned clone so the caller can execute it while re-borrowing the
    /// runtime mutably.
    pub fn entry(&self, func: FuncId) -> Option<Entry> {
        self.entries.get(&func).cloned()
    }

    /// Number of installed functions.
    pub fn installed(&self) -> usize {
        self.entries.len()
    }

    /// W^X invariant probe for tests: every chunk at rest is RX.
    #[cfg(test)]
    fn wx_at_rest(&self) -> bool {
        self.arena.all_published()
    }
}

thread_local! {
    /// Register/tag buffer pool. A pool (rather than one buffer)
    /// because native execution re-enters through dispatch: a nested
    /// `exec_entry` pops its own pair.
    static POOL: RefCell<Vec<(Vec<u64>, Vec<u8>)>> = const { RefCell::new(Vec::new()) };
}

/// Execute a published native entry with VM call semantics: arguments
/// into registers `0..n`, result from the context's return slot, VM
/// errors (and guest panics) reproduced exactly as the interpreter
/// would raise them.
pub fn exec_entry(
    entry: &Entry,
    args: &[Value],
    host: &mut dyn NativeDispatch,
    module: &mut Module,
    vm: &mut Vm,
) -> Result<Option<Value>, VmError> {
    let n = (entry.n_regs as usize).max(args.len()).max(1);
    let (mut regs, mut tags) = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    regs.clear();
    regs.resize(n, 0);
    tags.clear();
    tags.resize(n, 0);
    for (i, a) in args.iter().enumerate() {
        regs[i] = a.to_bits();
        tags[i] = !a.is_int() as u8;
    }
    let mut env = Env {
        calls: &entry.calls,
        host,
        module,
        vm,
        err: None,
        panic: None,
    };
    let mut ctx = NatCtx {
        regs: regs.as_mut_ptr(),
        tags: tags.as_mut_ptr(),
        mem: env.vm.mem.as_mut_ptr(),
        mem_len: env.vm.mem.len() as u64,
        ret_bits: 0,
        ret_tag: 0,
        has_ret: 0,
        fault_addr: 0,
        call_fn: helper_call,
        ftoi_fn: helper_ftoi,
        env: &mut env as *mut Env as *mut c_void,
    };
    // SAFETY: `entry.code` points at published (RX) bytes produced by
    // the encoder for exactly this calling convention; the context
    // outlives the call; helpers never unwind across the frame.
    let status = {
        let f: unsafe extern "C" fn(*mut NatCtx) -> i32 =
            unsafe { std::mem::transmute(entry.code) };
        unsafe { f(&mut ctx) }
    };
    POOL.with(|p| p.borrow_mut().push((regs, tags)));
    match status {
        STATUS_OK => Ok(if ctx.has_ret != 0 {
            Some(if ctx.ret_tag == 0 {
                Value::int_from_bits(ctx.ret_bits)
            } else {
                Value::float_from_bits(ctx.ret_bits)
            })
        } else {
            None
        }),
        STATUS_DIV0 => Err(VmError::DivideByZero),
        STATUS_OOB => {
            // Reproduce the interpreter's out-of-bounds behaviour
            // exactly (debug: negative-address assertion; release: Vec
            // index panic) by performing the same faulting read.
            let addr = ctx.fault_addr as i64;
            let word = env.vm.mem.read_int(addr);
            unreachable!("native OOB status for in-bounds address {addr} (read {word})");
        }
        STATUS_HELPER => {
            if let Some(p) = env.panic.take() {
                resume_unwind(p);
            }
            Err(env.err.take().expect("helper failure recorded no error"))
        }
        STATUS_FELL_OFF => Err(VmError::PcOutOfRange),
        s => unreachable!("native code returned unknown status {s}"),
    }
}

#[cfg(test)]
mod tests {
    use super::super::encode::lower_func;
    use super::*;
    use dyc_vm::{Cc, CodeFunc, CostModel, IAluOp, Instr, Operand, Ty, UnOp};

    /// A host that refuses all re-entry (for leaf functions).
    struct NoCalls;
    impl NativeDispatch for NoCalls {
        fn native_dispatch(
            &mut self,
            _point: u32,
            _args: &[Value],
            _module: &mut Module,
            _vm: &mut Vm,
        ) -> Result<Option<Value>, VmError> {
            Err(VmError::Dispatch("no re-entry in this test".into()))
        }
        fn native_call(
            &mut self,
            _func: FuncId,
            _args: &[Value],
            _module: &mut Module,
            _vm: &mut Vm,
        ) -> Result<Option<Value>, VmError> {
            Err(VmError::Dispatch("no re-entry in this test".into()))
        }
    }

    fn run(cf: CodeFunc, args: &[Value]) -> Result<Option<Value>, VmError> {
        let mut engine = NativeEngine::new();
        let mut module = Module::new();
        let art = lower_func(&cf);
        let fid = module.add_func(cf);
        engine.install(fid, art).expect("installable");
        assert!(engine.wx_at_rest(), "W^X: chunk left writable");
        let entry = engine.entry(fid).unwrap();
        let mut vm = Vm::new(CostModel::alpha21164());
        exec_entry(&entry, args, &mut NoCalls, &mut module, &mut vm)
    }

    #[test]
    fn executes_arithmetic_natively() {
        let mut cf = CodeFunc::new("add", 2, 4);
        cf.push(Instr::IAlu {
            op: IAluOp::Add,
            dst: 2,
            a: 0,
            b: Operand::Reg(1),
        });
        cf.push(Instr::IAlu {
            op: IAluOp::Mul,
            dst: 3,
            a: 2,
            b: Operand::Imm(3),
        });
        cf.push(Instr::Ret { src: Some(3) });
        assert_eq!(run(cf, &[Value::I(5), Value::I(9)]), Ok(Some(Value::I(42))));
    }

    #[test]
    fn float_compare_and_branch_match_vm_truthiness() {
        // r2 = (r0 < r1); if r2 { ret 1.0 } else { ret 0.0 }
        let mut cf = CodeFunc::new("fcmp", 2, 3);
        cf.push(Instr::FCmp {
            cc: Cc::Lt,
            dst: 2,
            a: 0,
            b: 1,
        });
        cf.push(Instr::Brz { cond: 2, target: 4 });
        cf.push(Instr::MovF { dst: 2, imm: 1.0 });
        cf.push(Instr::Ret { src: Some(2) });
        cf.push(Instr::MovF { dst: 2, imm: 0.0 });
        cf.push(Instr::Ret { src: Some(2) });
        let lt = |a: f64, b: f64| run(cf.clone(), &[Value::F(a), Value::F(b)]).unwrap();
        assert_eq!(lt(1.0, 2.0), Some(Value::F(1.0)));
        assert_eq!(lt(2.0, 1.0), Some(Value::F(0.0)));
        assert_eq!(lt(f64::NAN, 1.0), Some(Value::F(0.0)), "NaN is unordered");
    }

    #[test]
    fn division_by_zero_maps_to_vm_error() {
        let mut cf = CodeFunc::new("div", 2, 3);
        cf.push(Instr::IAlu {
            op: IAluOp::Div,
            dst: 2,
            a: 0,
            b: Operand::Reg(1),
        });
        cf.push(Instr::Ret { src: Some(2) });
        assert_eq!(
            run(cf.clone(), &[Value::I(7), Value::I(0)]),
            Err(VmError::DivideByZero)
        );
        // And the i64::MIN / -1 idiv trap is defused to wrapping.
        assert_eq!(
            run(cf, &[Value::I(i64::MIN), Value::I(-1)]),
            Ok(Some(Value::I(i64::MIN)))
        );
    }

    #[test]
    fn ftoi_saturates_like_rust() {
        let mut cf = CodeFunc::new("ftoi", 1, 2);
        cf.push(Instr::Un {
            op: UnOp::FToI,
            dst: 1,
            src: 0,
        });
        cf.push(Instr::Ret { src: Some(1) });
        assert_eq!(
            run(cf.clone(), &[Value::F(1e300)]),
            Ok(Some(Value::I(i64::MAX)))
        );
        assert_eq!(run(cf, &[Value::F(f64::NAN)]), Ok(Some(Value::I(0))));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_load_panics_like_the_interpreter() {
        let mut cf = CodeFunc::new("oob", 1, 2);
        cf.push(Instr::Load {
            ty: Ty::Int,
            dst: 1,
            base: 0,
            idx: Operand::Imm(0),
        });
        cf.push(Instr::Ret { src: Some(1) });
        // Empty guest memory: address 5 is out of bounds.
        let _ = run(cf, &[Value::I(5)]);
    }

    #[test]
    fn memory_roundtrip_through_native_store_and_load() {
        let mut cf = CodeFunc::new("mem", 2, 4);
        cf.push(Instr::Store {
            ty: Ty::Int,
            base: 0,
            idx: Operand::Imm(1),
            src: 1,
        });
        cf.push(Instr::Load {
            ty: Ty::Int,
            dst: 2,
            base: 0,
            idx: Operand::Imm(1),
        });
        cf.push(Instr::Ret { src: Some(2) });
        let mut engine = NativeEngine::new();
        let mut module = Module::new();
        let art = lower_func(&cf);
        let fid = module.add_func(cf);
        engine.install(fid, art).unwrap();
        let entry = engine.entry(fid).unwrap();
        let mut vm = Vm::new(CostModel::alpha21164());
        let base = vm.mem.alloc(8);
        let out = exec_entry(
            &entry,
            &[Value::I(base), Value::I(777)],
            &mut NoCalls,
            &mut module,
            &mut vm,
        )
        .unwrap();
        assert_eq!(out, Some(Value::I(777)));
        assert_eq!(vm.mem.read_int(base + 1), 777);
    }

    #[test]
    fn arena_reuses_and_grows_without_wx_windows() {
        let mut engine = NativeEngine::new();
        let mut module = Module::new();
        let mut fids = Vec::new();
        for i in 0..40 {
            let mut cf = CodeFunc::new(format!("f{i}"), 1, 2);
            cf.push(Instr::IAlu {
                op: IAluOp::Add,
                dst: 1,
                a: 0,
                b: Operand::Imm(i),
            });
            cf.push(Instr::Ret { src: Some(1) });
            let art = lower_func(&cf);
            let fid = module.add_func(cf);
            assert!(engine.install(fid, art).is_some());
            assert!(engine.wx_at_rest(), "install {i} left a writable chunk");
            fids.push(fid);
        }
        assert_eq!(engine.installed(), 40);
        // Earlier entries still execute after later installs flipped
        // their chunk RX→RW→RX.
        let mut vm = Vm::new(CostModel::alpha21164());
        for (i, fid) in fids.iter().enumerate() {
            let entry = engine.entry(*fid).unwrap();
            let out = exec_entry(&entry, &[Value::I(100)], &mut NoCalls, &mut module, &mut vm);
            assert_eq!(out, Ok(Some(Value::I(100 + i as i64))));
        }
    }

    #[test]
    fn host_calls_reenter_rust() {
        use dyc_vm::HostFn;
        let mut cf = CodeFunc::new("sqrt", 1, 2);
        cf.push(Instr::CallHost {
            f: HostFn::Sqrt,
            dst: Some(1),
            args: vec![0],
        });
        cf.push(Instr::Ret { src: Some(1) });
        assert_eq!(run(cf, &[Value::F(9.0)]), Ok(Some(Value::F(3.0))));
    }
}
