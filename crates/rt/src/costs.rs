//! Cycle costs of the run-time system itself.
//!
//! §4.2 lists the contributors to dynamic-compilation overhead: "cache
//! lookups, memory allocation, handling of dynamic branches, checks for
//! dynamic zero and copy propagation, dead-assignment elimination, and
//! strength reduction, operations to ensure instruction-cache coherence,
//! instruction construction and emission, branch patching, hole patching,
//! and the static computations." Each of those has a constant here. §4.4.3
//! pins the dispatch costs: "An unchecked dispatch requires about 10
//! cycles … a general-purpose hash-table-based dispatch … requires on
//! average 90 cycles", rising to ~150 with collisions.

/// Cycle-cost constants for the dynamic compiler and dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynCosts {
    /// Executing one static computation in the set-up code.
    pub static_op: u64,
    /// A static load (adds a D-cache access on top of the ALU work).
    pub static_load: u64,
    /// Constructing and emitting one dynamic instruction (hole patching
    /// included — holes are filled as the instruction is built).
    pub emit_instr: u64,
    /// Specialization-unit cache maintenance per unit (memory allocation,
    /// unit-cache lookup).
    pub per_unit: u64,
    /// Patching one branch target after its destination is emitted.
    pub branch_patch: u64,
    /// The emit-time check for zero/copy propagation or strength reduction
    /// on one candidate instruction.
    pub opt_check: u64,
    /// Per-instruction dead-assignment-elimination bookkeeping.
    pub dae_check: u64,
    /// Creating an internal promotion site.
    pub new_site: u64,
    /// Installing a code unit: i-cache coherence (`imb`) and bookkeeping.
    pub install: u64,
    /// Unchecked (cache-one) dispatch: load + indirect jump.
    pub dispatch_unchecked: u64,
    /// Indexed dispatch (§3.1 extension): bounds check + table load +
    /// indirect jump.
    pub dispatch_indexed: u64,
    /// Hash-table dispatch base cost: storing the key values, calling the
    /// hash function, and the indirect jump.
    pub dispatch_hash_base: u64,
    /// Additional cost per key word hashed.
    pub dispatch_hash_per_key: u64,
    /// Additional cost per extra probe (collision).
    pub dispatch_probe: u64,
    /// Online specializer only: classifying one instruction's binding
    /// time at run time (the `inst_binding` walk the staged GE path does
    /// once at static compile time).
    pub classify: u64,
    /// Online specializer only: per-variable edge planning at a unit
    /// boundary (liveness / division / unroll-legality lookups).
    pub edge_plan_per_var: u64,
    /// Staged GE executor: interpreting one precompiled GE op (a table
    /// fetch and a jump through its discriminant).
    pub ge_op: u64,
    /// Copying one prebuilt template instruction into the emit buffer
    /// (the memcpy-style fast path of §2's "copy … templates"; no
    /// per-instruction classification or construction).
    pub template_copy: u64,
    /// Patching one template hole: a dense-table lookup (register hole)
    /// or a static-store read (immediate hole) plus the store into the
    /// copied instruction.
    pub hole_patch: u64,
}

impl DynCosts {
    /// Constants calibrated against the paper's reported overheads.
    pub fn calibrated() -> DynCosts {
        DynCosts {
            static_op: 3,
            static_load: 6,
            emit_instr: 12,
            per_unit: 20,
            branch_patch: 5,
            opt_check: 2,
            dae_check: 1,
            new_site: 40,
            install: 80,
            dispatch_unchecked: 10,
            dispatch_indexed: 14,
            dispatch_hash_base: 70,
            dispatch_hash_per_key: 8,
            dispatch_probe: 30,
            classify: 4,
            edge_plan_per_var: 2,
            ge_op: 1,
            template_copy: 2,
            hole_patch: 2,
        }
    }

    /// Cost of one hashed dispatch with `keys` key words and `probes`
    /// total slot inspections (first probe is part of the base cost).
    pub fn hashed_dispatch(&self, keys: usize, probes: u32) -> u64 {
        self.dispatch_hash_base
            + self.dispatch_hash_per_key * keys as u64
            + self.dispatch_probe * u64::from(probes.saturating_sub(1))
    }
}

impl Default for DynCosts {
    fn default() -> Self {
        DynCosts::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashed_dispatch_is_about_ninety_cycles() {
        // §4.4.3: ~90 cycles for a typical collision-free lookup with a
        // small key.
        let c = DynCosts::calibrated();
        let typical = c.hashed_dispatch(2, 1);
        assert!((80..=100).contains(&typical), "got {typical}");
    }

    #[test]
    fn collisions_push_cost_towards_mipsi_levels() {
        // §4.4.3: "this figure rises to 150 cycles per dispatch, due to
        // collisions in its hash table".
        let c = DynCosts::calibrated();
        let with_collisions = c.hashed_dispatch(2, 3);
        assert!(
            (130..=170).contains(&with_collisions),
            "got {with_collisions}"
        );
    }

    #[test]
    fn unchecked_dispatch_is_about_ten_cycles() {
        assert_eq!(DynCosts::calibrated().dispatch_unchecked, 10);
    }
}
