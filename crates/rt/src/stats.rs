//! Run-time-system statistics.
//!
//! These counters drive the reproduction's Table 2 (which optimizations
//! each program actually used), Table 3 (instructions generated,
//! dynamic-compilation overhead), and the §4.4.3 dispatch-cost analysis.

/// Counters accumulated by the run-time system.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RtStats {
    /// Specializations performed (dispatch misses).
    pub specializations: u64,
    /// Specialization units (block instances) emitted.
    pub units_emitted: u64,
    /// VM instructions generated (after dead-assignment elimination).
    pub instrs_generated: u64,
    /// Static computations executed at dynamic compile time.
    pub static_ops: u64,
    /// Static loads executed (§2.2.6).
    pub static_loads: u64,
    /// Static calls executed/memoized (§2.2.6).
    pub static_calls: u64,
    /// Conditional branches / switches folded on static values.
    pub branches_folded: u64,
    /// Dynamic zero/copy-propagation folds (§2.2.7).
    pub zero_copy_folds: u64,
    /// Instructions removed by dynamic dead-assignment elimination.
    pub dae_removed: u64,
    /// Dynamic strength reductions applied (§2.2.7).
    pub strength_reductions: u64,
    /// Internal dynamic-to-static promotion sites created (§2.2.2).
    pub internal_promotions: u64,
    /// Loop headers that were completely unrolled (≥2 specialized units).
    pub loops_unrolled: u64,
    /// True if multi-way unrolling was observed: the unrolled loop body
    /// formed a dag/graph rather than a chain (divergent static stores in
    /// one loop, or a return to a previously emitted iteration).
    pub multi_way_unroll: bool,
    /// Distinct static-variable *sets* observed per program point beyond
    /// the first — evidence of polyvariant division (§2.2.5).
    pub divisions_observed: u64,
    /// Dispatches served by the unchecked (cache-one) policy.
    pub dispatch_unchecked: u64,
    /// Dispatches served by the hashed cache-all policy.
    pub dispatch_hashed: u64,
    /// Dispatches served by the array-indexed policy (§3.1 extension).
    pub dispatch_indexed: u64,
    /// Total probe count across hashed dispatches.
    pub dispatch_probes: u64,
    /// Cycles charged to dynamic compilation (mirror of the VM counter).
    pub dyncomp_cycles: u64,
    /// Cycles charged to dispatching.
    pub dispatch_cycles: u64,
    /// Binding-time classifications and liveness queries performed at run
    /// time. The staged GE path must keep this at exactly zero — all of
    /// that work happens once, at static compile time.
    pub runtime_bta_calls: u64,
    /// Dynamic-compilation cycles spent executing the generating
    /// extension itself (static computations, decisions, bookkeeping).
    pub ge_exec_cycles: u64,
    /// Dynamic-compilation cycles spent constructing, emitting, and
    /// patching code.
    pub emit_cycles: u64,
    /// Instructions emitted through the copy-and-patch template path
    /// (before dead-assignment elimination).
    pub template_instrs: u64,
    /// Template holes patched (register and immediate holes).
    pub holes_patched: u64,
    /// Sub-split of [`RtStats::emit_cycles`]: cycles copying prebuilt
    /// template instructions.
    pub template_copy_cycles: u64,
    /// Sub-split of [`RtStats::emit_cycles`]: cycles patching template
    /// holes.
    pub hole_patch_cycles: u64,
    /// Templates whose guards failed at run time (a value hit an emit-time
    /// special case, e.g. a zero/copy fold), falling back to per-
    /// instruction emission for the rest of the unit.
    pub template_fallbacks: u64,
    /// Heap allocations attributable to dispatch (scratch-buffer growth).
    /// Zero on every cache-hit region entry once warm: the dispatch path
    /// reuses its key and argument buffers.
    pub dispatch_allocs: u64,
    /// Bounded `cache_all(k)` evictions: specializations dropped by the
    /// second-chance sweep when a site hit its capacity.
    pub cache_evictions: u64,
    /// Explicit site invalidations (all cached code for the site dropped).
    pub cache_invalidations: u64,
    /// Concurrent dispatch only: times this thread blocked on another
    /// thread's in-flight specialization of the same (site, key).
    pub single_flight_waits: u64,
    /// Concurrent dispatch only: times this thread, racing an in-flight
    /// specialization, took the generic (unspecialized) continuation
    /// instead of blocking.
    pub single_flight_fallbacks: u64,
    /// Cached specializations restored from a snapshot bundle at
    /// warm-start (each skips one future first-dispatch specialization).
    pub cache_warm_loads: u64,
    /// Snapshot entries rejected at warm-start — a stale or corrupted
    /// (config-hash, program-hash, artifact-version) fingerprint, or a
    /// malformed artifact. Rejection is per-entry and never fatal; the
    /// key simply re-specializes on first dispatch.
    pub cache_warm_rejects: u64,
    /// Specializations whose code was additionally lowered to native
    /// x86-64 machine code and installed in the executable arena.
    pub native_installs: u64,
    /// Specializations that stayed on the VM backend despite
    /// `OptConfig::native` — the lowering declined (an unsupported
    /// instruction or an out-of-range branch) or the platform lacks the
    /// native backend. The VM path is always a correct fallback.
    pub native_fallbacks: u64,
    /// Adaptive policy only: dispatch misses whose specialization was
    /// deferred (below the site's break-even threshold) — the dispatch
    /// ran the generic continuation instead. Always zero in
    /// `PolicyMode::Always`.
    pub policy_defers: u64,
    /// Adaptive policy only: keys specialized after at least one
    /// deferral (the miss that crossed the break-even threshold).
    pub policy_promotes: u64,
    /// Adaptive policy only: dispatch misses suppressed because the
    /// (internal) site's specializations were never re-dispatched — the
    /// dispatch ran the generic continuation instead.
    pub policy_throttled: u64,
}

/// Every `u64` counter field of [`RtStats`], listed once. `delta` and
/// `counters` both expand through this list, so a field added to the
/// struct but not here breaks the size-accounting test below.
macro_rules! counter_fields {
    ($with:ident) => {
        $with!(
            specializations,
            units_emitted,
            instrs_generated,
            static_ops,
            static_loads,
            static_calls,
            branches_folded,
            zero_copy_folds,
            dae_removed,
            strength_reductions,
            internal_promotions,
            loops_unrolled,
            divisions_observed,
            dispatch_unchecked,
            dispatch_hashed,
            dispatch_indexed,
            dispatch_probes,
            dyncomp_cycles,
            dispatch_cycles,
            runtime_bta_calls,
            ge_exec_cycles,
            emit_cycles,
            template_instrs,
            holes_patched,
            template_copy_cycles,
            hole_patch_cycles,
            template_fallbacks,
            dispatch_allocs,
            cache_evictions,
            cache_invalidations,
            single_flight_waits,
            single_flight_fallbacks,
            cache_warm_loads,
            cache_warm_rejects,
            native_installs,
            native_fallbacks,
            policy_defers,
            policy_promotes,
            policy_throttled
        )
    };
}

impl RtStats {
    /// Fresh counters.
    pub fn new() -> RtStats {
        RtStats::default()
    }

    /// Counter-wise difference `self - baseline` (saturating), for
    /// measuring what one phase of a run contributed: snapshot, run the
    /// phase, `after.delta(&snapshot)`. The `multi_way_unroll` flag is
    /// set only if it became true during the phase.
    pub fn delta(&self, baseline: &RtStats) -> RtStats {
        macro_rules! sub_each {
            ($($f:ident),*) => {
                RtStats {
                    $($f: self.$f.saturating_sub(baseline.$f),)*
                    multi_way_unroll: self.multi_way_unroll && !baseline.multi_way_unroll,
                }
            };
        }
        counter_fields!(sub_each)
    }

    /// Every counter as a `(name, value)` pair, in declaration order —
    /// the export surface for `dycstat`'s Prometheus exposition.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        macro_rules! list_each {
            ($($f:ident),*) => {
                vec![$((stringify!($f), self.$f),)*]
            };
        }
        counter_fields!(list_each)
    }

    /// Dynamic-compilation overhead per generated instruction — Table 3's
    /// "DC Overhead (cycles/instruction generated)".
    pub fn overhead_per_instr(&self) -> f64 {
        if self.instrs_generated == 0 {
            0.0
        } else {
            self.dyncomp_cycles as f64 / self.instrs_generated as f64
        }
    }

    /// True if complete loop unrolling fired.
    pub fn used_loop_unrolling(&self) -> bool {
        self.loops_unrolled > 0
    }

    /// Duplicate specializations *avoided* by single-flight: every time a
    /// racing thread either waited for or routed around another thread's
    /// in-flight specialization instead of redundantly running the GE
    /// executor itself.
    pub fn single_flight_suppressed(&self) -> u64 {
        self.single_flight_waits + self.single_flight_fallbacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_counterwise() {
        let mut before = RtStats::new();
        before.specializations = 3;
        before.dyncomp_cycles = 1000;
        before.dispatch_probes = 7;
        let mut after = before.clone();
        after.specializations = 5;
        after.dyncomp_cycles = 1800;
        after.dispatch_probes = 7;
        after.multi_way_unroll = true;
        let d = after.delta(&before);
        assert_eq!(d.specializations, 2);
        assert_eq!(d.dyncomp_cycles, 800);
        assert_eq!(d.dispatch_probes, 0);
        assert!(d.multi_way_unroll);
        // Identical snapshots difference to all-zero.
        assert_eq!(after.delta(&after), RtStats::new());
    }

    #[test]
    fn delta_saturates_instead_of_underflowing() {
        let mut a = RtStats::new();
        a.cache_evictions = 2;
        let mut b = RtStats::new();
        b.cache_evictions = 5;
        assert_eq!(a.delta(&b).cache_evictions, 0);
    }

    #[test]
    fn counters_cover_every_u64_field() {
        let s = RtStats::new();
        let counters = s.counters();
        // 39 u64 counters + the one bool (padded to 8 bytes) accounts
        // for the whole struct; a counter field missing from the macro
        // breaks this equation.
        assert_eq!(
            std::mem::size_of::<RtStats>(),
            (counters.len() + 1) * std::mem::size_of::<u64>()
        );
        let mut names: Vec<_> = counters.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), counters.len(), "duplicate counter names");
    }

    #[test]
    fn every_counter_round_trips_through_delta_and_counters() {
        // Give every counter a distinct nonzero value, positionally, so
        // a field silently dropped from `delta` (or swapped with a
        // neighbor) is caught — the latent gap that once let new meters
        // bypass phase accounting.
        let mut s = RtStats::new();
        let n = s.counters().len();
        {
            // Safety net: the size test above proves the struct is
            // exactly `n` u64s + one bool-in-a-u64-slot, and the macro
            // lists fields in declaration order.
            let fields: Vec<*mut u64> = {
                macro_rules! addrs {
                    ($($f:ident),*) => { vec![$(std::ptr::addr_of_mut!(s.$f),)*] };
                }
                counter_fields!(addrs)
            };
            assert_eq!(fields.len(), n);
            for (i, p) in fields.into_iter().enumerate() {
                unsafe { *p = (i + 1) as u64 };
            }
        }
        // counters() reports every value under its own name...
        for (i, (name, v)) in s.counters().into_iter().enumerate() {
            assert_eq!(v, (i + 1) as u64, "{name} lost its value");
        }
        // ...and delta against zero reproduces the struct exactly, so
        // no field is dropped by phase subtraction.
        assert_eq!(s.delta(&RtStats::new()), s);
        let names: Vec<&str> = s.counters().iter().map(|(n, _)| *n).collect();
        for meter in ["policy_defers", "policy_promotes", "policy_throttled"] {
            assert!(names.contains(&meter), "{meter} missing from counters()");
        }
    }

    #[test]
    fn overhead_per_instr_handles_zero() {
        assert_eq!(RtStats::new().overhead_per_instr(), 0.0);
        let s = RtStats {
            instrs_generated: 100,
            dyncomp_cycles: 5000,
            ..RtStats::new()
        };
        assert_eq!(s.overhead_per_instr(), 50.0);
    }
}
