//! Serializable specialized code: the [`ArtifactSink`] backend, the
//! versioned [`CodeArtifact`] format, and the [`CacheBundle`] that
//! persists a runtime's entire dynamic-code cache across process
//! restarts.
//!
//! DyC's payoff depends on amortizing specialization cost over reuse
//! (§4.2's break-even analysis) — yet a process restart re-pays full
//! first-dispatch specialization for every `(site, key)`. This module
//! closes that gap: [`crate::Runtime`] and
//! [`crate::concurrent::SharedRuntime`] can serialize every cached
//! specialization into a bundle, and a fresh runtime can *warm-start*
//! from it, re-installing each entry after verifying its
//! `(artifact-version, config-hash, program-hash)` fingerprint triple.
//! A stale or corrupted entry is rejected *per-entry* and metered
//! ([`crate::RtStats::cache_warm_rejects`]) — never a panic, never a
//! whole-bundle failure: the rejected key simply re-specializes on its
//! first dispatch.
//!
//! The wire format is JSON, written by hand and parsed with the
//! dependency-free [`dyc_obs::Json`] machinery (the workspace is
//! dependency-free by policy). Because that parser holds numbers as
//! `f64`, every 64-bit quantity is carried as a *string*: signed
//! immediates in decimal (`"-7"`), raw bit patterns (hashes, cache-key
//! words, float bits) in hex (`"0x0123..."`). Small indices (registers,
//! offsets, unit ids) ride as plain JSON numbers, which are exact below
//! 2^53.

use crate::runtime::{Site, Store};
use crate::sink::{fnv1a, CodeSink};
use dyc_bta::OptConfig;
use dyc_ir::{BlockId, VReg};
use dyc_obs::json::escape;
use dyc_obs::Json;
use dyc_stage::{SitePolicy, StagedProgram};
use dyc_vm::{Cc, CodeFunc, FAluOp, HostFn, IAluOp, Instr, Operand, Reg, Ty, UnOp};
use std::fmt::Write as _;

/// Version tag written into every artifact and bundle. Bump it whenever
/// the wire format or the meaning of any serialized field changes; a
/// version mismatch at warm-start rejects the entry (metered, not
/// fatal).
pub const ARTIFACT_VERSION: u32 = 1;

// ---------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------

/// FNV-1a fingerprint of an [`OptConfig`] — every flag that can change
/// emitted code or caching behavior, by name, in declaration order. The
/// `trace` flag is deliberately excluded: it is purely observational
/// (recording events never changes results, code bytes, or caches), so
/// a bundle snapshotted with tracing on warm-starts a traced *or*
/// untraced runtime. The `native` flag is excluded for the same reason:
/// the VM code bytes in a bundle are backend-independent (native
/// lowering happens after restore, per run), so a bundle snapshotted
/// with either backend warm-starts the other. `policy` is excluded
/// too: the adaptive policy changes only *when* specializations
/// happen, never their bytes, so bundles are portable across
/// `always`/`adaptive` runs (an adaptive restore seeds the restored
/// keys as already promoted — see
/// [`PolicyEngine::seed_promoted`](crate::PolicyEngine::seed_promoted)).
pub fn config_hash(cfg: &OptConfig) -> u64 {
    let flags: [(&str, bool); 11] = [
        ("complete_loop_unrolling", cfg.complete_loop_unrolling),
        ("static_loads", cfg.static_loads),
        ("unchecked_dispatching", cfg.unchecked_dispatching),
        ("static_calls", cfg.static_calls),
        ("zero_copy_propagation", cfg.zero_copy_propagation),
        (
            "dead_assignment_elimination",
            cfg.dead_assignment_elimination,
        ),
        ("strength_reduction", cfg.strength_reduction),
        ("internal_promotions", cfg.internal_promotions),
        ("polyvariant_division", cfg.polyvariant_division),
        ("staged_ge", cfg.staged_ge),
        ("template_fusion", cfg.template_fusion),
    ];
    let mut bytes = Vec::new();
    for (name, on) in flags {
        bytes.extend_from_slice(name.as_bytes());
        bytes.push(if on { b'1' } else { b'0' });
        bytes.push(b';');
    }
    fnv1a(&bytes)
}

/// FNV-1a fingerprint of a staged program: the disassembly of its
/// deterministically built base module. Any change to the source
/// program, the static optimizer, codegen, or the dispatch-site splices
/// changes this listing, invalidating stale bundles; cosmetic changes to
/// the runtime do not.
pub fn program_hash(staged: &StagedProgram) -> u64 {
    let module = staged.build_module();
    fnv1a(dyc_vm::pretty::module_to_string(&module).as_bytes())
}

// ---------------------------------------------------------------------
// ArtifactSink
// ---------------------------------------------------------------------

/// The artifact-producing [`CodeSink`]: records the identical
/// instruction stream a [`crate::sink::VmSink`] would hold *plus* the
/// structural metadata a self-contained artifact needs — unit
/// boundaries, resolved branch fixups, and per-instruction template-hole
/// counts.
#[derive(Debug, Default)]
pub struct ArtifactSink {
    /// The emitted instructions (branches patched in place, exactly like
    /// the VM backend).
    pub code: Vec<Instr>,
    /// `(unit id, start offset)` per sealed unit, in seal order.
    pub units: Vec<(u32, u32)>,
    /// `(instruction offset, resolved target)` per patched branch.
    pub fixups: Vec<(u32, u32)>,
    /// `(instruction offset, holes patched)` per template-copied
    /// instruction.
    pub holes: Vec<(u32, u16)>,
}

impl CodeSink for ArtifactSink {
    fn emitted(&self) -> usize {
        self.code.len()
    }

    fn begin_unit(&mut self, id: u32, label: u32) {
        self.units.push((id, label));
    }

    fn push(&mut self, ins: Instr, templated: bool, patches: u16) {
        if templated {
            self.holes.push((self.code.len() as u32, patches));
        }
        self.code.push(ins);
    }

    fn patch_branch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Instr::Jmp { target: t }
            | Instr::Brz { target: t, .. }
            | Instr::Brnz { target: t, .. } => *t = target,
            other => unreachable!("fixup on non-branch {other:?}"),
        }
        self.fixups.push((at as u32, target));
    }
}

impl ArtifactSink {
    /// Package the recorded stream as a [`CodeArtifact`] for the given
    /// cache binding. `key_schema` is the site's promoted-variable list
    /// (vreg numbers, in key order) — enough for a loader to sanity-check
    /// that `key` means what it meant at snapshot time.
    #[allow(clippy::too_many_arguments)]
    pub fn into_artifact(
        self,
        config_hash: u64,
        program_hash: u64,
        site: u32,
        key: Vec<u64>,
        key_schema: Vec<u32>,
        name: String,
        n_params: usize,
        n_regs: usize,
    ) -> CodeArtifact {
        CodeArtifact {
            version: ARTIFACT_VERSION,
            config_hash,
            program_hash,
            site,
            key,
            key_schema,
            name,
            n_params,
            n_regs,
            code: self.code,
            units: self.units,
            fixups: self.fixups,
            holes: self.holes,
        }
    }
}

// ---------------------------------------------------------------------
// CodeArtifact
// ---------------------------------------------------------------------

/// One serialized specialization: a self-contained, versioned record of
/// the emitted code for one `(site, key)` cache binding, carrying
/// everything needed to re-install it in a fresh runtime — and the
/// fingerprints needed to refuse to.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeArtifact {
    /// Wire-format version ([`ARTIFACT_VERSION`] at write time).
    pub version: u32,
    /// [`config_hash`] of the producing configuration.
    pub config_hash: u64,
    /// [`program_hash`] of the producing staged program.
    pub program_hash: u64,
    /// Dispatch site id this binding belongs to.
    pub site: u32,
    /// The cache key (promoted values' [`dyc_vm::Value::key_bits`]).
    pub key: Vec<u64>,
    /// The site's promoted vregs in key order (the key's schema).
    pub key_schema: Vec<u32>,
    /// Installed function name (`<region>$specN`).
    pub name: String,
    /// Parameter count of the specialized function.
    pub n_params: usize,
    /// Frame size of the specialized function.
    pub n_regs: usize,
    /// The emitted instructions, branches resolved.
    pub code: Vec<Instr>,
    /// `(unit id, start offset)` per specialization unit.
    pub units: Vec<(u32, u32)>,
    /// `(instruction offset, target)` label/fixup table.
    pub fixups: Vec<(u32, u32)>,
    /// `(instruction offset, holes patched)` per-unit hole descriptors.
    pub holes: Vec<(u32, u16)>,
}

impl CodeArtifact {
    /// Check this artifact's fingerprint triple against the loading
    /// runtime's expectations.
    ///
    /// # Errors
    ///
    /// Describes the first mismatching component.
    pub fn verify(&self, expect_config: u64, expect_program: u64) -> Result<(), String> {
        if self.version != ARTIFACT_VERSION {
            return Err(format!(
                "artifact version {} != supported {ARTIFACT_VERSION}",
                self.version
            ));
        }
        if self.config_hash != expect_config {
            return Err(format!(
                "config hash 0x{:016x} != expected 0x{expect_config:016x}",
                self.config_hash
            ));
        }
        if self.program_hash != expect_program {
            return Err(format!(
                "program hash 0x{:016x} != expected 0x{expect_program:016x}",
                self.program_hash
            ));
        }
        Ok(())
    }

    /// Rebuild the install-ready [`CodeFunc`] (the module assigns its
    /// address on installation).
    pub fn to_func(&self) -> CodeFunc {
        let mut f = CodeFunc::new(self.name.clone(), self.n_params, self.n_regs.max(1));
        f.code = self.code.clone();
        f
    }

    /// Serialize to a single JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push('{');
        let _ = write!(s, "\"version\":{}", self.version);
        let _ = write!(s, ",\"config\":{}", hex(self.config_hash));
        let _ = write!(s, ",\"program\":{}", hex(self.program_hash));
        let _ = write!(s, ",\"site\":{}", self.site);
        let _ = write!(s, ",\"key\":{}", hex_arr(&self.key));
        let _ = write!(s, ",\"key_schema\":{}", num_arr(&self.key_schema));
        let _ = write!(s, ",\"name\":{}", escape(&self.name));
        let _ = write!(s, ",\"n_params\":{}", self.n_params);
        let _ = write!(s, ",\"n_regs\":{}", self.n_regs);
        s.push_str(",\"code\":[");
        for (i, ins) in self.code.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&instr_to_json(ins));
        }
        s.push(']');
        let _ = write!(s, ",\"units\":{}", pair_arr(&self.units));
        let _ = write!(s, ",\"fixups\":{}", pair_arr(&self.fixups));
        s.push_str(",\"holes\":[");
        for (i, (at, n)) in self.holes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{at},{n}]");
        }
        s.push_str("]}");
        s
    }

    /// Parse back from the [`Json`] tree of [`CodeArtifact::to_json`].
    ///
    /// # Errors
    ///
    /// Describes the first malformed field.
    pub fn from_json(j: &Json) -> Result<CodeArtifact, String> {
        let code = j
            .get("code")
            .and_then(Json::arr)
            .ok_or("artifact missing code array")?
            .iter()
            .map(instr_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CodeArtifact {
            version: get_u32(j, "version")?,
            config_hash: get_u64(j, "config")?,
            program_hash: get_u64(j, "program")?,
            site: get_u32(j, "site")?,
            key: get_hex_arr(j, "key")?,
            key_schema: get_num_arr(j, "key_schema")?,
            name: j
                .get("name")
                .and_then(Json::str)
                .ok_or("artifact missing name")?
                .to_string(),
            n_params: get_u32(j, "n_params")? as usize,
            n_regs: get_u32(j, "n_regs")? as usize,
            code,
            units: get_pair_arr(j, "units")?,
            fixups: get_pair_arr(j, "fixups")?,
            holes: get_pair_arr(j, "holes")?
                .into_iter()
                .map(|(a, b)| (a, b as u16))
                .collect(),
        })
    }
}

// ---------------------------------------------------------------------
// SiteSpec
// ---------------------------------------------------------------------

/// Serialized internal promotion [`Site`]. Emitted code bakes dispatch
/// point ids into `Dispatch` instructions, so warm-start must restore
/// internal sites *with the same ids, in the same order* before any
/// artifact referencing them is re-installed.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSpec {
    /// Function index containing the site.
    pub func: usize,
    /// Resume block.
    pub block: u32,
    /// Resume instruction index.
    pub inst_idx: usize,
    /// Baked static context: `(vreg, is_float, value bits)` triples.
    pub base_store: Vec<(u32, bool, u64)>,
    /// Promoted vregs (the cache-key schema).
    pub key_vars: Vec<u32>,
    /// Dispatch argument layout.
    pub arg_vars: Vec<u32>,
    /// Cache policy name: `all`, `bounded`, `one`, or `indexed`.
    pub policy: String,
    /// Policy parameter (`bounded` capacity; 0 otherwise).
    pub policy_param: u32,
    /// Entry division in the precompiled GE program, when staged.
    pub division: Option<u32>,
}

impl SiteSpec {
    /// Capture a runtime [`Site`].
    pub fn from_site(site: &Site) -> SiteSpec {
        let (policy, policy_param) = match site.policy {
            SitePolicy::CacheAll => ("all", 0),
            SitePolicy::CacheAllBounded(k) => ("bounded", k),
            SitePolicy::CacheOneUnchecked => ("one", 0),
            SitePolicy::CacheIndexed => ("indexed", 0),
        };
        SiteSpec {
            func: site.func,
            block: site.block.0,
            inst_idx: site.inst_idx,
            base_store: site
                .base_store
                .iter()
                .map(|(v, val)| (v.0, matches!(val, dyc_vm::Value::F(_)), val.to_bits()))
                .collect(),
            key_vars: site.key_vars.iter().map(|v| v.0).collect(),
            arg_vars: site.arg_vars.iter().map(|v| v.0).collect(),
            policy: policy.to_string(),
            policy_param,
            division: site.division,
        }
    }

    /// Rebuild the runtime [`Site`] (layout tables are recomputed at
    /// registration).
    ///
    /// # Errors
    ///
    /// Rejects an unknown policy name.
    pub fn to_site(&self) -> Result<Site, String> {
        let policy = match self.policy.as_str() {
            "all" => SitePolicy::CacheAll,
            "bounded" => SitePolicy::CacheAllBounded(self.policy_param),
            "one" => SitePolicy::CacheOneUnchecked,
            "indexed" => SitePolicy::CacheIndexed,
            other => return Err(format!("unknown site policy '{other}'")),
        };
        let mut base_store = Store::new();
        for &(v, is_float, bits) in &self.base_store {
            let val = if is_float {
                dyc_vm::Value::float_from_bits(bits)
            } else {
                dyc_vm::Value::int_from_bits(bits)
            };
            base_store.insert(VReg(v), val);
        }
        Ok(Site {
            func: self.func,
            block: BlockId(self.block),
            inst_idx: self.inst_idx,
            base_store,
            key_vars: self.key_vars.iter().map(|&v| VReg(v)).collect(),
            arg_vars: self.arg_vars.iter().map(|&v| VReg(v)).collect(),
            policy,
            division: self.division,
            key_pos: Vec::new(),
            dyn_pos: Vec::new(),
        })
    }

    fn to_json(&self) -> String {
        let mut s = String::new();
        s.push('{');
        let _ = write!(
            s,
            "\"func\":{},\"block\":{},\"inst_idx\":{}",
            self.func, self.block, self.inst_idx
        );
        s.push_str(",\"base_store\":[");
        for (i, (v, f, bits)) in self.base_store.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "[{v},{},{}]",
                if *f { "true" } else { "false" },
                hex(*bits)
            );
        }
        s.push(']');
        let _ = write!(s, ",\"key_vars\":{}", num_arr(&self.key_vars));
        let _ = write!(s, ",\"arg_vars\":{}", num_arr(&self.arg_vars));
        let _ = write!(
            s,
            ",\"policy\":{},\"policy_param\":{}",
            escape(&self.policy),
            self.policy_param
        );
        match self.division {
            Some(d) => {
                let _ = write!(s, ",\"division\":{d}");
            }
            None => s.push_str(",\"division\":null"),
        }
        s.push('}');
        s
    }

    fn from_json(j: &Json) -> Result<SiteSpec, String> {
        let mut base_store = Vec::new();
        for e in j
            .get("base_store")
            .and_then(Json::arr)
            .ok_or("site missing base_store")?
        {
            let t = e.arr().ok_or("base_store entry not an array")?;
            if t.len() != 3 {
                return Err("base_store entry needs 3 elements".into());
            }
            let v = t[0].num().ok_or("bad base_store vreg")? as u32;
            let f = match t[1] {
                Json::Bool(b) => b,
                _ => return Err("bad base_store float flag".into()),
            };
            base_store.push((v, f, parse_hex(&t[2])?));
        }
        let division = match j.get("division") {
            Some(Json::Null) | None => None,
            Some(v) => Some(v.num().ok_or("bad division")? as u32),
        };
        Ok(SiteSpec {
            func: get_u32(j, "func")? as usize,
            block: get_u32(j, "block")?,
            inst_idx: get_u32(j, "inst_idx")? as usize,
            base_store,
            key_vars: get_num_arr(j, "key_vars")?,
            arg_vars: get_num_arr(j, "arg_vars")?,
            policy: j
                .get("policy")
                .and_then(Json::str)
                .ok_or("site missing policy")?
                .to_string(),
            policy_param: get_u32(j, "policy_param")?,
            division,
        })
    }
}

// ---------------------------------------------------------------------
// CacheBundle
// ---------------------------------------------------------------------

/// A runtime's entire dynamic-code cache, serialized: the internal
/// promotion sites created during specialization (in id order) plus one
/// [`CodeArtifact`] per cache binding. The bundle header repeats the
/// fingerprint triple so a loader can cheaply reject a wholesale-stale
/// bundle; each entry *also* carries the triple, so a corrupted entry is
/// rejected individually.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheBundle {
    /// Wire-format version.
    pub version: u32,
    /// [`config_hash`] at snapshot time.
    pub config_hash: u64,
    /// [`program_hash`] at snapshot time.
    pub program_hash: u64,
    /// Entry-site count at snapshot time (internal site ids start here).
    pub n_entry_sites: u32,
    /// Internal promotion sites, in site-id order.
    pub sites: Vec<SiteSpec>,
    /// One artifact per cache binding.
    pub entries: Vec<CodeArtifact>,
}

impl CacheBundle {
    /// Serialize the bundle to its JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push('{');
        let _ = write!(s, "\"version\":{}", self.version);
        let _ = write!(s, ",\"config\":{}", hex(self.config_hash));
        let _ = write!(s, ",\"program\":{}", hex(self.program_hash));
        let _ = write!(s, ",\"n_entry_sites\":{}", self.n_entry_sites);
        s.push_str(",\"sites\":[");
        for (i, site) in self.sites.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&site.to_json());
        }
        s.push_str("],\"entries\":[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&e.to_json());
        }
        s.push_str("]}");
        s
    }

    /// Parse a bundle document.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a structurally invalid bundle.
    /// (Fingerprint mismatches are *not* errors here — they are
    /// detected, per entry, at restore time.)
    pub fn parse(text: &str) -> Result<CacheBundle, String> {
        let j = Json::parse(text)?;
        let sites = j
            .get("sites")
            .and_then(Json::arr)
            .ok_or("bundle missing sites")?
            .iter()
            .map(SiteSpec::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let entries = j
            .get("entries")
            .and_then(Json::arr)
            .ok_or("bundle missing entries")?
            .iter()
            .map(CodeArtifact::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CacheBundle {
            version: get_u32(&j, "version")?,
            config_hash: get_u64(&j, "config")?,
            program_hash: get_u64(&j, "program")?,
            n_entry_sites: get_u32(&j, "n_entry_sites")?,
            sites,
            entries,
        })
    }
}

// ---------------------------------------------------------------------
// JSON helpers (write side is hand-rolled; read side walks dyc_obs::Json)
// ---------------------------------------------------------------------

fn hex(v: u64) -> String {
    format!("\"0x{v:016x}\"")
}

fn hex_arr(vs: &[u64]) -> String {
    let mut s = String::from("[");
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&hex(*v));
    }
    s.push(']');
    s
}

fn num_arr(vs: &[u32]) -> String {
    let mut s = String::from("[");
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{v}");
    }
    s.push(']');
    s
}

fn pair_arr(vs: &[(u32, u32)]) -> String {
    let mut s = String::from("[");
    for (i, (a, b)) in vs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "[{a},{b}]");
    }
    s.push(']');
    s
}

fn parse_hex(j: &Json) -> Result<u64, String> {
    let s = j.str().ok_or("expected hex string")?;
    let digits = s.strip_prefix("0x").ok_or("hex string missing 0x")?;
    u64::from_str_radix(digits, 16).map_err(|e| format!("bad hex '{s}': {e}"))
}

fn parse_i64_str(j: &Json) -> Result<i64, String> {
    let s = j.str().ok_or("expected decimal string")?;
    s.parse::<i64>().map_err(|e| format!("bad i64 '{s}': {e}"))
}

fn get_u32(j: &Json, key: &str) -> Result<u32, String> {
    j.get(key)
        .and_then(Json::num)
        .map(|n| n as u32)
        .ok_or_else(|| format!("missing or non-numeric '{key}'"))
}

fn get_u64(j: &Json, key: &str) -> Result<u64, String> {
    parse_hex(j.get(key).ok_or_else(|| format!("missing '{key}'"))?)
}

fn get_num_arr(j: &Json, key: &str) -> Result<Vec<u32>, String> {
    j.get(key)
        .and_then(Json::arr)
        .ok_or_else(|| format!("missing array '{key}'"))?
        .iter()
        .map(|v| {
            v.num()
                .map(|n| n as u32)
                .ok_or_else(|| format!("bad number in '{key}'"))
        })
        .collect()
}

fn get_hex_arr(j: &Json, key: &str) -> Result<Vec<u64>, String> {
    j.get(key)
        .and_then(Json::arr)
        .ok_or_else(|| format!("missing array '{key}'"))?
        .iter()
        .map(parse_hex)
        .collect()
}

fn get_pair_arr(j: &Json, key: &str) -> Result<Vec<(u32, u32)>, String> {
    j.get(key)
        .and_then(Json::arr)
        .ok_or_else(|| format!("missing array '{key}'"))?
        .iter()
        .map(|v| {
            let p = v.arr().ok_or_else(|| format!("bad pair in '{key}'"))?;
            if p.len() != 2 {
                return Err(format!("bad pair arity in '{key}'"));
            }
            let a = p[0].num().ok_or_else(|| format!("bad pair in '{key}'"))? as u32;
            let b = p[1].num().ok_or_else(|| format!("bad pair in '{key}'"))? as u32;
            Ok((a, b))
        })
        .collect()
}

// ---------------------------------------------------------------------
// Instruction codec
// ---------------------------------------------------------------------

fn ialu_name(op: IAluOp) -> &'static str {
    match op {
        IAluOp::Add => "add",
        IAluOp::Sub => "sub",
        IAluOp::Mul => "mul",
        IAluOp::Div => "div",
        IAluOp::Rem => "rem",
        IAluOp::And => "and",
        IAluOp::Or => "or",
        IAluOp::Xor => "xor",
        IAluOp::Shl => "shl",
        IAluOp::Shr => "shr",
    }
}

fn ialu_by_name(s: &str) -> Result<IAluOp, String> {
    Ok(match s {
        "add" => IAluOp::Add,
        "sub" => IAluOp::Sub,
        "mul" => IAluOp::Mul,
        "div" => IAluOp::Div,
        "rem" => IAluOp::Rem,
        "and" => IAluOp::And,
        "or" => IAluOp::Or,
        "xor" => IAluOp::Xor,
        "shl" => IAluOp::Shl,
        "shr" => IAluOp::Shr,
        other => return Err(format!("unknown ialu op '{other}'")),
    })
}

fn falu_name(op: FAluOp) -> &'static str {
    match op {
        FAluOp::Add => "fadd",
        FAluOp::Sub => "fsub",
        FAluOp::Mul => "fmul",
        FAluOp::Div => "fdiv",
    }
}

fn falu_by_name(s: &str) -> Result<FAluOp, String> {
    Ok(match s {
        "fadd" => FAluOp::Add,
        "fsub" => FAluOp::Sub,
        "fmul" => FAluOp::Mul,
        "fdiv" => FAluOp::Div,
        other => return Err(format!("unknown falu op '{other}'")),
    })
}

fn cc_name(cc: Cc) -> &'static str {
    match cc {
        Cc::Eq => "eq",
        Cc::Ne => "ne",
        Cc::Lt => "lt",
        Cc::Le => "le",
        Cc::Gt => "gt",
        Cc::Ge => "ge",
    }
}

fn cc_by_name(s: &str) -> Result<Cc, String> {
    Ok(match s {
        "eq" => Cc::Eq,
        "ne" => Cc::Ne,
        "lt" => Cc::Lt,
        "le" => Cc::Le,
        "gt" => Cc::Gt,
        "ge" => Cc::Ge,
        other => return Err(format!("unknown condition '{other}'")),
    })
}

fn un_name(op: UnOp) -> &'static str {
    match op {
        UnOp::NegI => "negi",
        UnOp::NotI => "noti",
        UnOp::NegF => "negf",
        UnOp::IToF => "itof",
        UnOp::FToI => "ftoi",
    }
}

fn un_by_name(s: &str) -> Result<UnOp, String> {
    Ok(match s {
        "negi" => UnOp::NegI,
        "noti" => UnOp::NotI,
        "negf" => UnOp::NegF,
        "itof" => UnOp::IToF,
        "ftoi" => UnOp::FToI,
        other => return Err(format!("unknown unary op '{other}'")),
    })
}

fn ty_name(ty: Ty) -> &'static str {
    match ty {
        Ty::Int => "int",
        Ty::Float => "float",
    }
}

fn ty_by_name(s: &str) -> Result<Ty, String> {
    Ok(match s {
        "int" => Ty::Int,
        "float" => Ty::Float,
        other => return Err(format!("unknown type '{other}'")),
    })
}

/// Register/immediate operand: a register is a plain number, an
/// immediate a decimal string (exact for the full `i64` range).
fn operand_json(o: Operand) -> String {
    match o {
        Operand::Reg(r) => r.to_string(),
        Operand::Imm(v) => format!("\"{v}\""),
    }
}

fn operand_from(j: &Json) -> Result<Operand, String> {
    match j {
        Json::Num(n) => Ok(Operand::Reg(*n as Reg)),
        Json::Str(_) => Ok(Operand::Imm(parse_i64_str(j)?)),
        _ => Err("bad operand".into()),
    }
}

fn opt_reg_json(r: Option<Reg>) -> String {
    match r {
        Some(r) => r.to_string(),
        None => "null".to_string(),
    }
}

fn opt_reg_from(j: &Json) -> Result<Option<Reg>, String> {
    match j {
        Json::Null => Ok(None),
        Json::Num(n) => Ok(Some(*n as Reg)),
        _ => Err("bad optional register".into()),
    }
}

fn regs_json(rs: &[Reg]) -> String {
    num_arr(rs)
}

fn regs_from(j: &Json) -> Result<Vec<Reg>, String> {
    j.arr()
        .ok_or("bad register list")?
        .iter()
        .map(|v| {
            v.num()
                .map(|n| n as Reg)
                .ok_or_else(|| "bad register".to_string())
        })
        .collect()
}

/// Serialize one instruction as a tagged JSON array. Decimal strings
/// carry `i64` immediates; float immediates travel as their IEEE bit
/// pattern in hex (exact for every value, NaN and `-0.0` included).
pub fn instr_to_json(i: &Instr) -> String {
    match i {
        Instr::MovI { dst, imm } => format!("[\"movi\",{dst},\"{imm}\"]"),
        Instr::MovF { dst, imm } => format!("[\"movf\",{dst},{}]", hex(imm.to_bits())),
        Instr::Mov { dst, src } => format!("[\"mov\",{dst},{src}]"),
        Instr::FMov { dst, src } => format!("[\"fmov\",{dst},{src}]"),
        Instr::IAlu { op, dst, a, b } => {
            format!(
                "[\"ialu\",\"{}\",{dst},{a},{}]",
                ialu_name(*op),
                operand_json(*b)
            )
        }
        Instr::FAlu { op, dst, a, b } => {
            format!("[\"falu\",\"{}\",{dst},{a},{b}]", falu_name(*op))
        }
        Instr::ICmp { cc, dst, a, b } => {
            format!(
                "[\"icmp\",\"{}\",{dst},{a},{}]",
                cc_name(*cc),
                operand_json(*b)
            )
        }
        Instr::FCmp { cc, dst, a, b } => {
            format!("[\"fcmp\",\"{}\",{dst},{a},{b}]", cc_name(*cc))
        }
        Instr::Un { op, dst, src } => format!("[\"un\",\"{}\",{dst},{src}]", un_name(*op)),
        Instr::Load { ty, dst, base, idx } => {
            format!(
                "[\"load\",\"{}\",{dst},{base},{}]",
                ty_name(*ty),
                operand_json(*idx)
            )
        }
        Instr::Store { ty, base, idx, src } => {
            format!(
                "[\"store\",\"{}\",{base},{},{src}]",
                ty_name(*ty),
                operand_json(*idx)
            )
        }
        Instr::Jmp { target } => format!("[\"jmp\",{target}]"),
        Instr::Brz { cond, target } => format!("[\"brz\",{cond},{target}]"),
        Instr::Brnz { cond, target } => format!("[\"brnz\",{cond},{target}]"),
        Instr::CallHost { f, dst, args } => format!(
            "[\"hcall\",\"{}\",{},{}]",
            f.name(),
            opt_reg_json(*dst),
            regs_json(args)
        ),
        Instr::Call { func, dst, args } => format!(
            "[\"call\",{},{},{}]",
            func.0,
            opt_reg_json(*dst),
            regs_json(args)
        ),
        Instr::Ret { src } => format!("[\"ret\",{}]", opt_reg_json(*src)),
        Instr::Dispatch { point, dst, args } => format!(
            "[\"dysp\",{point},{},{}]",
            opt_reg_json(*dst),
            regs_json(args)
        ),
        Instr::Halt => "[\"halt\"]".to_string(),
    }
}

/// Decode one instruction from its tagged-array form.
///
/// # Errors
///
/// Describes the first malformed element.
pub fn instr_from_json(j: &Json) -> Result<Instr, String> {
    let a = j.arr().ok_or("instruction is not an array")?;
    let tag = a
        .first()
        .and_then(Json::str)
        .ok_or("instruction missing tag")?;
    let need = |n: usize| -> Result<(), String> {
        if a.len() != n {
            Err(format!("'{tag}' expects {n} elements, got {}", a.len()))
        } else {
            Ok(())
        }
    };
    let reg = |i: usize| -> Result<Reg, String> {
        a[i].num()
            .map(|n| n as Reg)
            .ok_or_else(|| format!("'{tag}': bad register at {i}"))
    };
    let name = |i: usize| -> Result<&str, String> {
        a[i].str()
            .ok_or_else(|| format!("'{tag}': bad name at {i}"))
    };
    Ok(match tag {
        "movi" => {
            need(3)?;
            Instr::MovI {
                dst: reg(1)?,
                imm: parse_i64_str(&a[2])?,
            }
        }
        "movf" => {
            need(3)?;
            Instr::MovF {
                dst: reg(1)?,
                imm: f64::from_bits(parse_hex(&a[2])?),
            }
        }
        "mov" => {
            need(3)?;
            Instr::Mov {
                dst: reg(1)?,
                src: reg(2)?,
            }
        }
        "fmov" => {
            need(3)?;
            Instr::FMov {
                dst: reg(1)?,
                src: reg(2)?,
            }
        }
        "ialu" => {
            need(5)?;
            Instr::IAlu {
                op: ialu_by_name(name(1)?)?,
                dst: reg(2)?,
                a: reg(3)?,
                b: operand_from(&a[4])?,
            }
        }
        "falu" => {
            need(5)?;
            Instr::FAlu {
                op: falu_by_name(name(1)?)?,
                dst: reg(2)?,
                a: reg(3)?,
                b: reg(4)?,
            }
        }
        "icmp" => {
            need(5)?;
            Instr::ICmp {
                cc: cc_by_name(name(1)?)?,
                dst: reg(2)?,
                a: reg(3)?,
                b: operand_from(&a[4])?,
            }
        }
        "fcmp" => {
            need(5)?;
            Instr::FCmp {
                cc: cc_by_name(name(1)?)?,
                dst: reg(2)?,
                a: reg(3)?,
                b: reg(4)?,
            }
        }
        "un" => {
            need(4)?;
            Instr::Un {
                op: un_by_name(name(1)?)?,
                dst: reg(2)?,
                src: reg(3)?,
            }
        }
        "load" => {
            need(5)?;
            Instr::Load {
                ty: ty_by_name(name(1)?)?,
                dst: reg(2)?,
                base: reg(3)?,
                idx: operand_from(&a[4])?,
            }
        }
        "store" => {
            need(5)?;
            Instr::Store {
                ty: ty_by_name(name(1)?)?,
                base: reg(2)?,
                idx: operand_from(&a[3])?,
                src: reg(4)?,
            }
        }
        "jmp" => {
            need(2)?;
            Instr::Jmp { target: reg(1)? }
        }
        "brz" => {
            need(3)?;
            Instr::Brz {
                cond: reg(1)?,
                target: reg(2)?,
            }
        }
        "brnz" => {
            need(3)?;
            Instr::Brnz {
                cond: reg(1)?,
                target: reg(2)?,
            }
        }
        "hcall" => {
            need(4)?;
            Instr::CallHost {
                f: HostFn::by_name(name(1)?)
                    .ok_or_else(|| format!("unknown host function '{}'", name(1).unwrap()))?,
                dst: opt_reg_from(&a[2])?,
                args: regs_from(&a[3])?,
            }
        }
        "call" => {
            need(4)?;
            Instr::Call {
                func: dyc_vm::FuncId(reg(1)?),
                dst: opt_reg_from(&a[2])?,
                args: regs_from(&a[3])?,
            }
        }
        "ret" => {
            need(2)?;
            Instr::Ret {
                src: opt_reg_from(&a[1])?,
            }
        }
        "dysp" => {
            need(4)?;
            Instr::Dispatch {
                point: reg(1)?,
                dst: opt_reg_from(&a[2])?,
                args: regs_from(&a[3])?,
            }
        }
        "halt" => {
            need(1)?;
            Instr::Halt
        }
        other => return Err(format!("unknown instruction tag '{other}'")),
    })
}

/// Wrap an already-installed [`CodeFunc`] as a single-unit artifact —
/// the snapshot path for code whose unit structure was not recorded at
/// emission time (the cache holds only the final instruction stream).
#[allow(clippy::too_many_arguments)]
pub fn artifact_for_func(
    config_hash: u64,
    program_hash: u64,
    site: u32,
    key: Vec<u64>,
    key_schema: Vec<u32>,
    f: &CodeFunc,
) -> CodeArtifact {
    let mut sink = ArtifactSink::default();
    sink.begin_unit(0, 0);
    for ins in &f.code {
        sink.push(ins.clone(), false, 0);
    }
    sink.into_artifact(
        config_hash,
        program_hash,
        site,
        key,
        key_schema,
        f.name.clone(),
        f.n_params,
        f.n_regs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyc_vm::{FuncId, Value};

    fn every_instr() -> Vec<Instr> {
        vec![
            Instr::MovI {
                dst: 0,
                imm: i64::MIN,
            },
            Instr::MovI {
                dst: 1,
                imm: i64::MAX,
            },
            Instr::MovF { dst: 2, imm: -0.0 },
            Instr::MovF {
                dst: 3,
                imm: f64::NAN,
            },
            Instr::MovF {
                dst: 4,
                imm: 2.5e300,
            },
            Instr::Mov { dst: 5, src: 6 },
            Instr::FMov { dst: 7, src: 8 },
            Instr::IAlu {
                op: IAluOp::Shr,
                dst: 9,
                a: 10,
                b: Operand::Imm(-63),
            },
            Instr::IAlu {
                op: IAluOp::Add,
                dst: 9,
                a: 10,
                b: Operand::Reg(11),
            },
            Instr::FAlu {
                op: FAluOp::Div,
                dst: 12,
                a: 13,
                b: 14,
            },
            Instr::ICmp {
                cc: Cc::Le,
                dst: 15,
                a: 16,
                b: Operand::Imm(7),
            },
            Instr::FCmp {
                cc: Cc::Ne,
                dst: 17,
                a: 18,
                b: 19,
            },
            Instr::Un {
                op: UnOp::FToI,
                dst: 20,
                src: 21,
            },
            Instr::Load {
                ty: Ty::Float,
                dst: 22,
                base: 23,
                idx: Operand::Imm(-4),
            },
            Instr::Store {
                ty: Ty::Int,
                base: 24,
                idx: Operand::Reg(25),
                src: 26,
            },
            Instr::Jmp { target: 3 },
            Instr::Brz {
                cond: 27,
                target: 0,
            },
            Instr::Brnz {
                cond: 28,
                target: 9,
            },
            Instr::CallHost {
                f: HostFn::Cos,
                dst: Some(29),
                args: vec![30],
            },
            Instr::CallHost {
                f: HostFn::PrintI,
                dst: None,
                args: vec![31, 32],
            },
            Instr::Call {
                func: FuncId(2),
                dst: None,
                args: vec![],
            },
            Instr::Ret { src: Some(33) },
            Instr::Ret { src: None },
            Instr::Dispatch {
                point: 4,
                dst: Some(34),
                args: vec![35, 36],
            },
            Instr::Halt,
        ]
    }

    #[test]
    fn instruction_codec_round_trips_every_variant() {
        for ins in every_instr() {
            let j = Json::parse(&instr_to_json(&ins)).expect("codec emits valid JSON");
            let back = instr_from_json(&j).expect("codec parses its own output");
            // NaN != NaN under PartialEq; compare bit patterns instead.
            match (&ins, &back) {
                (Instr::MovF { dst: d1, imm: i1 }, Instr::MovF { dst: d2, imm: i2 }) => {
                    assert_eq!(d1, d2);
                    assert_eq!(i1.to_bits(), i2.to_bits());
                }
                _ => assert_eq!(ins, back),
            }
        }
    }

    #[test]
    fn instr_codec_rejects_malformed_input() {
        for bad in [
            "[\"movi\",0]",             // arity
            "[\"warp\",1,2]",           // unknown tag
            "[\"ialu\",\"pow\",0,1,2]", // unknown op
            "[\"hcall\",\"nope\",null,[]]",
            "[\"movi\",0,\"abc\"]", // bad immediate
            "7",                    // not an array
            "[]",                   // no tag
        ] {
            let j = Json::parse(bad).unwrap();
            assert!(instr_from_json(&j).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn artifact_sink_records_code_identically_plus_structure() {
        use crate::sink::VmSink;
        let mut vm = VmSink::default();
        let mut art = ArtifactSink::default();
        for s in [&mut vm as &mut dyn CodeSink, &mut art as &mut dyn CodeSink] {
            s.begin_unit(0, 0);
            s.push(Instr::MovI { dst: 0, imm: 1 }, false, 0);
            s.push(Instr::Jmp { target: u32::MAX }, true, 2);
            s.begin_unit(1, 2);
            s.push(Instr::Halt, false, 0);
            s.patch_branch(1, 2);
        }
        assert_eq!(art.code, vm.code, "artifact backend sees identical code");
        assert_eq!(art.units, vec![(0, 0), (1, 2)]);
        assert_eq!(art.fixups, vec![(1, 2)]);
        assert_eq!(art.holes, vec![(1, 2)]);
    }

    #[test]
    fn artifact_json_round_trips() {
        let art = CodeArtifact {
            version: ARTIFACT_VERSION,
            config_hash: 0xdead_beef_0000_0001,
            program_hash: 0x1234_5678_9abc_def0,
            site: 3,
            key: vec![Value::I(-2).key_bits(), Value::F(0.5).key_bits()],
            key_schema: vec![4, 9],
            name: "region$spec7".into(),
            n_params: 2,
            n_regs: 37,
            code: every_instr(),
            units: vec![(0, 0), (2, 10)],
            fixups: vec![(15, 3)],
            holes: vec![(1, 2), (8, 1)],
        };
        let j = Json::parse(&art.to_json()).expect("valid JSON");
        let back = CodeArtifact::from_json(&j).expect("parses");
        // NaN in the code: compare via re-serialization.
        assert_eq!(back.to_json(), art.to_json());
        assert_eq!(back.key, art.key);
        assert_eq!(back.name, art.name);
        let f = back.to_func();
        assert_eq!(f.name, "region$spec7");
        assert_eq!(f.code.len(), art.code.len());
    }

    #[test]
    fn verify_rejects_each_fingerprint_component() {
        let mut art = artifact_for_func(1, 2, 0, vec![], vec![], &CodeFunc::new("f", 0, 1));
        assert!(art.verify(1, 2).is_ok());
        assert!(art.verify(9, 2).unwrap_err().contains("config"));
        assert!(art.verify(1, 9).unwrap_err().contains("program"));
        art.version += 1;
        assert!(art.verify(1, 2).unwrap_err().contains("version"));
    }

    #[test]
    fn site_spec_round_trips_through_json() {
        let mut store = Store::new();
        store.insert(VReg(3), Value::I(-17));
        store.insert(VReg(5), Value::F(1.25));
        let site = Site {
            func: 1,
            block: BlockId(4),
            inst_idx: 2,
            base_store: store,
            key_vars: vec![VReg(7)],
            arg_vars: vec![VReg(7), VReg(8)],
            policy: SitePolicy::CacheAllBounded(6),
            division: Some(9),
            key_pos: Vec::new(),
            dyn_pos: Vec::new(),
        };
        let spec = SiteSpec::from_site(&site);
        let j = Json::parse(&spec.to_json()).unwrap();
        let back = SiteSpec::from_json(&j).unwrap();
        assert_eq!(back, spec);
        let site2 = back.to_site().unwrap();
        assert_eq!(site2.policy, site.policy);
        assert_eq!(site2.base_store, site.base_store);
        assert_eq!(site2.key_vars, site.key_vars);
        assert_eq!(site2.division, site.division);
        // Unknown policies are rejected, not panicked on.
        let mut bad = spec;
        bad.policy = "lru".into();
        assert!(bad.to_site().is_err());
    }

    #[test]
    fn bundle_round_trips_and_rejects_garbage() {
        let art = artifact_for_func(1, 2, 0, vec![5], vec![1], &CodeFunc::new("f$spec0", 1, 2));
        let bundle = CacheBundle {
            version: ARTIFACT_VERSION,
            config_hash: 1,
            program_hash: 2,
            n_entry_sites: 1,
            sites: Vec::new(),
            entries: vec![art],
        };
        let text = bundle.to_json();
        let back = CacheBundle::parse(&text).unwrap();
        assert_eq!(back, bundle);
        assert!(CacheBundle::parse("{not json").is_err());
        assert!(CacheBundle::parse("{}").is_err());
    }

    #[test]
    fn config_hash_excludes_trace_and_discriminates_flags() {
        let base = OptConfig::all();
        let mut traced = base;
        traced.trace = true;
        assert_eq!(
            config_hash(&base),
            config_hash(&traced),
            "trace is observational and must not invalidate bundles"
        );
        for name in OptConfig::feature_names() {
            let c = base.without(name).unwrap();
            assert_ne!(config_hash(&base), config_hash(&c), "{name} not hashed");
        }
        assert_ne!(
            config_hash(&base),
            config_hash(&base.without("staged_ge").unwrap())
        );
        assert_ne!(
            config_hash(&base),
            config_hash(&base.without("template_fusion").unwrap())
        );
    }
}
