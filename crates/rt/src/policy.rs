//! Online adaptive specialization policy (§4.2's break-even, applied
//! live).
//!
//! The paper answers *when staged specialization pays for itself*
//! post-hoc, from measured per-site overhead and savings. This module
//! closes that loop at run time: a [`PolicyEngine`] counts dispatches
//! per `(site, key)` and only approves a specialization once the key
//! has been dispatched at least a per-site *threshold* number of times
//! — below the threshold the dispatch is **deferred** to the site's
//! generic continuation (ordinary unspecialized code, the same
//! continuation [`MissPolicy::Fallback`](crate::MissPolicy) racers
//! run), which is always correct and charges no dynamic-compilation
//! cycles.
//!
//! The per-key state machine:
//!
//! ```text
//!            miss, count < threshold            miss, count ≥ threshold
//! Cold ───────────────► Deferred ──────────────────────► Promoted
//!  │                        │  ▲                            │
//!  │ miss, threshold == 1   │  │ site throttled             │ evicted, miss
//!  └────────────────────────┼──┘ (internal sites only)      │ again later
//!                           ▼                               ▼
//!                       Promoted ◄────────────────────── Revived
//!                                  (re-specialize; the site's bounded
//!                                   cap may grow — see below)
//! ```
//!
//! * **Threshold estimation.** Until a site's first specialization
//!   completes, the threshold is [`PolicyParams::initial_threshold`].
//!   Afterwards it is `ceil(avg dyncomp cycles per specialization /
//!   assumed_saved_per_use)`, clamped to `[1,
//!   PolicyParams::max_threshold]` — the same arithmetic as
//!   `SiteProfile::break_even` in `dyc-obs`, fed by the engine's own
//!   running average instead of a trace.
//! * **Throttling.** An *internal promotion* site whose
//!   specializations are never re-dispatched (≥
//!   [`PolicyParams::throttle_probe`] specializations, zero cache
//!   hits) stops specializing: further misses run the generic
//!   continuation. The first cache hit at the site lifts the throttle
//!   permanently. Entry sites are never throttled, so a hot entry key
//!   is always eventually specialized.
//! * **Bounded-cap auto-sizing.** When a key that was already
//!   specialized misses again, it was evicted and has come back — the
//!   site's reuse distance exceeds its `cache_all(k)` bound. The
//!   engine counts these *revivals* and
//!   [`PolicyEngine::cap_for`] grows the site's effective bound by one
//!   slot per revival, up to `k ×` [`PolicyParams::cap_growth_limit`].
//!
//! # Locking and counter exactness
//!
//! Per-key counters live in one [`Mutex`]ed map keyed by the full
//! `[site, key bits...]` cache key and are touched **only on the miss
//! path** — a cache hit never takes the lock, preserving the warm
//! dispatch path's one-read-lock/zero-alloc guarantees. Per-site
//! meters (hits, specializations, average cost, revivals) are plain
//! relaxed atomics inside an append-only table guarded by a [`RwLock`]
//! taken for reading only. Every decision for a given `(site, key)`
//! happens under the map mutex, so counts are exact under arbitrary
//! thread interleavings: no increment is lost and no miss is counted
//! twice. Ordering between the counters and code publication is
//! irrelevant — the engine only *schedules* specializations; the
//! runtime's existing single-flight protocol still serializes who
//! performs them.
//!
//! Both [`Runtime`](crate::Runtime) and the sharded
//! [`SharedRuntime`](crate::SharedRuntime) embed the same engine type;
//! it is enabled by `OptConfig::policy =`
//! [`PolicyMode::Adaptive`](dyc_bta::PolicyMode) (or
//! `SharedOptions::policy`), and the default `Always` mode bypasses it
//! entirely — dispatch behavior, code bytes, and every existing table
//! are unchanged.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Tuning knobs for the [`PolicyEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyParams {
    /// Dispatch count a key must reach before its site's first
    /// specialization cost is known (the cold-start threshold).
    pub initial_threshold: u32,
    /// Assumed cycles saved per dispatch by running specialized instead
    /// of generic code — the denominator of the break-even estimate.
    pub assumed_saved_per_use: u64,
    /// Upper clamp on the estimated threshold: even a very expensive
    /// site specializes a key after this many dispatches.
    pub max_threshold: u32,
    /// Specializations an *internal* site may perform with zero cache
    /// hits before further specialization is throttled.
    pub throttle_probe: u64,
    /// Multiplier bounding bounded-cache growth: a `cache_all(k)` site's
    /// effective capacity never exceeds `k * cap_growth_limit`.
    pub cap_growth_limit: usize,
}

impl Default for PolicyParams {
    fn default() -> PolicyParams {
        PolicyParams {
            initial_threshold: 2,
            assumed_saved_per_use: 1_000,
            max_threshold: 8,
            throttle_probe: 4,
            cap_growth_limit: 4,
        }
    }
}

/// What the engine decided for one dispatch miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyDecision {
    /// Specialize now.
    Specialize {
        /// True when the key had previously been deferred — this miss
        /// crossed the threshold (a *promotion*, metered as
        /// `policy_promotes`).
        promoted: bool,
    },
    /// Below break-even: run the generic continuation instead.
    Defer,
    /// Site throttled (internal site whose specializations are never
    /// re-dispatched): run the generic continuation.
    Throttle,
}

#[derive(Debug, Default)]
struct KeyState {
    count: u32,
    promoted: bool,
}

/// Per-site meters, all relaxed atomics (exactness per *site* is not
/// load-bearing; per-key decisions are serialized by the map mutex).
#[derive(Debug, Default)]
struct SiteMeter {
    hits: AtomicU64,
    specs: AtomicU64,
    spec_cycles: AtomicU64,
    revived: AtomicU64,
}

/// The online policy engine. Thread-safe by construction; see the
/// [module docs](self) for the state machine and locking rules.
#[derive(Debug)]
pub struct PolicyEngine {
    params: PolicyParams,
    /// `[site, key bits...]` → per-key dispatch state. Miss-path only.
    counts: Mutex<HashMap<Vec<u64>, KeyState>>,
    /// Append-only per-site meter table, indexed by site id.
    meters: RwLock<Vec<Arc<SiteMeter>>>,
}

impl PolicyEngine {
    /// An engine with the given tuning parameters.
    pub fn new(params: PolicyParams) -> PolicyEngine {
        PolicyEngine {
            params,
            counts: Mutex::new(HashMap::new()),
            meters: RwLock::new(Vec::new()),
        }
    }

    /// The engine's parameters.
    pub fn params(&self) -> &PolicyParams {
        &self.params
    }

    fn meter(&self, site: u32) -> Arc<SiteMeter> {
        {
            let g = self.meters.read().unwrap();
            if let Some(m) = g.get(site as usize) {
                return Arc::clone(m);
            }
        }
        let mut g = self.meters.write().unwrap();
        while g.len() <= site as usize {
            g.push(Arc::new(SiteMeter::default()));
        }
        Arc::clone(&g[site as usize])
    }

    /// The site's current promotion threshold: the cold-start value
    /// until a specialization cost is known, then the break-even
    /// estimate `ceil(avg spec cycles / assumed saved per use)` clamped
    /// to `[1, max_threshold]`.
    pub fn threshold(&self, site: u32) -> u32 {
        let m = self.meter(site);
        let specs = m.specs.load(Ordering::Relaxed);
        if specs == 0 {
            return self.params.initial_threshold.max(1);
        }
        let avg = m.spec_cycles.load(Ordering::Relaxed) / specs;
        let est = avg.div_ceil(self.params.assumed_saved_per_use.max(1));
        (est as u32).clamp(1, self.params.max_threshold)
    }

    /// Record a cache hit at `site`. Lifts any throttle (the site's
    /// specializations *are* being re-dispatched) and feeds the
    /// throttling heuristic. Called on the hit path only in adaptive
    /// mode; one atomic increment, no locks beyond the meter-table
    /// read lock.
    pub fn note_hit(&self, site: u32) {
        self.meter(site).hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a completed specialization at `site` costing `cycles`
    /// dynamic-compilation cycles — the input to the site's break-even
    /// threshold estimate.
    pub fn note_spec(&self, site: u32, cycles: u64) {
        let m = self.meter(site);
        m.specs.fetch_add(1, Ordering::Relaxed);
        m.spec_cycles.fetch_add(cycles, Ordering::Relaxed);
    }

    /// Decide a dispatch miss for the full cache key `[site, key
    /// bits...]`. `entry_site` exempts the site from throttling (entry
    /// sites must retain the eventually-specialized guarantee).
    pub fn on_miss(&self, key: &[u64], entry_site: bool) -> PolicyDecision {
        let site = key[0] as u32;
        let m = self.meter(site);
        let threshold = self.threshold(site);
        let mut g = self.counts.lock().unwrap();
        let st = g.entry(key.to_vec()).or_default();
        st.count = st.count.saturating_add(1);
        if st.promoted {
            // Already specialized once; the cache lost it (eviction or
            // invalidation) and the key came back — evidence the reuse
            // distance exceeds the site's bound.
            m.revived.fetch_add(1, Ordering::Relaxed);
            return PolicyDecision::Specialize { promoted: false };
        }
        if st.count < threshold {
            return PolicyDecision::Defer;
        }
        if !entry_site
            && m.specs.load(Ordering::Relaxed) >= self.params.throttle_probe
            && m.hits.load(Ordering::Relaxed) == 0
        {
            // Leave the key un-promoted: if the throttle ever lifts (a
            // hit arrives), its next miss specializes immediately.
            return PolicyDecision::Throttle;
        }
        st.promoted = true;
        PolicyDecision::Specialize {
            promoted: st.count > 1,
        }
    }

    /// Seed a warm-started `(site, key)` as already promoted, so a
    /// later miss (post-eviction) re-specializes immediately instead of
    /// deferring, and the restored entry never counts as a cold key.
    /// Restored entries deliberately do *not* count toward the site's
    /// specialization meters — they cost nothing this run and must not
    /// trip the throttle.
    pub fn seed_promoted(&self, key: Vec<u64>) {
        let threshold = self.threshold(key[0] as u32);
        self.counts.lock().unwrap().insert(
            key,
            KeyState {
                count: threshold,
                promoted: true,
            },
        );
    }

    /// Effective capacity for a bounded site declared `cache_all(k)`
    /// with `base_cap = k`: one extra slot per observed revival, capped
    /// at `k * cap_growth_limit`.
    pub fn cap_for(&self, site: u32, base_cap: usize) -> usize {
        let revived = self.meter(site).revived.load(Ordering::Relaxed) as usize;
        (base_cap + revived).min(base_cap.saturating_mul(self.params.cap_growth_limit.max(1)))
    }

    /// Dispatch count recorded for the full cache key (diagnostics and
    /// tests).
    pub fn count_of(&self, key: &[u64]) -> u32 {
        self.counts.lock().unwrap().get(key).map_or(0, |s| s.count)
    }

    /// True once the key has been approved for specialization.
    pub fn is_promoted(&self, key: &[u64]) -> bool {
        self.counts
            .lock()
            .unwrap()
            .get(key)
            .is_some_and(|s| s.promoted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(site: u64, k: u64) -> Vec<u64> {
        vec![site, k]
    }

    #[test]
    fn cold_key_defers_until_initial_threshold() {
        let e = PolicyEngine::new(PolicyParams::default());
        assert_eq!(e.on_miss(&key(0, 7), true), PolicyDecision::Defer);
        assert_eq!(
            e.on_miss(&key(0, 7), true),
            PolicyDecision::Specialize { promoted: true }
        );
        assert!(e.is_promoted(&key(0, 7)));
        // A different key at the same site starts cold.
        assert_eq!(e.on_miss(&key(0, 8), true), PolicyDecision::Defer);
    }

    #[test]
    fn threshold_one_specializes_immediately_without_promotion_flag() {
        let e = PolicyEngine::new(PolicyParams {
            initial_threshold: 1,
            ..PolicyParams::default()
        });
        assert_eq!(
            e.on_miss(&key(0, 7), true),
            PolicyDecision::Specialize { promoted: false }
        );
    }

    #[test]
    fn threshold_tracks_measured_spec_cost() {
        let e = PolicyEngine::new(PolicyParams::default());
        assert_eq!(e.threshold(3), 2); // cold start
        e.note_spec(3, 5_000);
        assert_eq!(e.threshold(3), 5); // ceil(5000 / 1000)
        e.note_spec(3, 1);
        assert_eq!(e.threshold(3), 3); // avg 2500 → ceil 3
        e.note_spec(3, 100_000);
        assert_eq!(e.threshold(3), 8); // clamped to max_threshold
    }

    #[test]
    fn promoted_key_missing_again_counts_a_revival_and_grows_cap() {
        let e = PolicyEngine::new(PolicyParams {
            initial_threshold: 1,
            ..PolicyParams::default()
        });
        assert_eq!(e.cap_for(0, 2), 2);
        e.on_miss(&key(0, 1), true); // promoted
        assert_eq!(
            e.on_miss(&key(0, 1), true),
            PolicyDecision::Specialize { promoted: false }
        );
        assert_eq!(e.cap_for(0, 2), 3);
        for _ in 0..100 {
            e.on_miss(&key(0, 1), true);
        }
        // Growth is bounded by base * cap_growth_limit.
        assert_eq!(e.cap_for(0, 2), 8);
    }

    #[test]
    fn internal_sites_throttle_without_reuse_and_recover_on_hit() {
        let p = PolicyParams {
            initial_threshold: 1,
            throttle_probe: 2,
            ..PolicyParams::default()
        };
        let e = PolicyEngine::new(p);
        // Two keys specialize; the site now has 2 specs, 0 hits.
        e.on_miss(&key(5, 1), false);
        e.note_spec(5, 100);
        e.on_miss(&key(5, 2), false);
        e.note_spec(5, 100);
        assert_eq!(e.on_miss(&key(5, 3), false), PolicyDecision::Throttle);
        // Throttled keys stay un-promoted.
        assert!(!e.is_promoted(&key(5, 3)));
        // A cache hit lifts the throttle; the held-back key specializes
        // on its next miss.
        e.note_hit(5);
        assert_eq!(
            e.on_miss(&key(5, 3), false),
            PolicyDecision::Specialize { promoted: true }
        );
        // Entry sites are never throttled.
        let e2 = PolicyEngine::new(p);
        e2.note_spec(0, 100);
        e2.note_spec(0, 100);
        assert_eq!(
            e2.on_miss(&key(0, 3), true),
            PolicyDecision::Specialize { promoted: false }
        );
    }

    #[test]
    fn seeded_keys_never_defer() {
        let e = PolicyEngine::new(PolicyParams::default());
        e.seed_promoted(key(0, 42));
        assert!(e.is_promoted(&key(0, 42)));
        // If the restored entry is later evicted, it re-specializes
        // immediately (a revival), never deferring.
        assert_eq!(
            e.on_miss(&key(0, 42), true),
            PolicyDecision::Specialize { promoted: false }
        );
    }

    #[test]
    fn counters_are_exact_under_contention() {
        let e = Arc::new(PolicyEngine::new(PolicyParams {
            initial_threshold: u32::MAX, // never promote: pure counting
            ..PolicyParams::default()
        }));
        let threads = 8;
        let per_thread = 500;
        let barrier = Arc::new(std::sync::Barrier::new(threads));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let e = Arc::clone(&e);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..per_thread {
                        // All threads hammer one shared key, plus a
                        // thread-private key each.
                        e.on_miss(&[0, 9], true);
                        e.on_miss(&[0, 100 + t as u64], true);
                        e.note_hit((i % 3) as u32);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(e.count_of(&[0, 9]), (threads * per_thread) as u32);
        for t in 0..threads {
            assert_eq!(e.count_of(&[0, 100 + t as u64]), per_thread as u32);
        }
        let hits: u64 = (0..3)
            .map(|s| e.meter(s).hits.load(Ordering::Relaxed))
            .sum();
        assert_eq!(hits, (threads * per_thread) as u64);
    }
}
