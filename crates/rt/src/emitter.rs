//! The shared code emitter behind both specialization paths.
//!
//! The legacy online specializer and the staged generating-extension
//! executor must produce **byte-identical** code: staging moves the
//! analysis work to static compile time but may not change the emitted
//! instructions. The way this reproduction guarantees that is
//! structural — both paths drive this one emitter, generic over the unit
//! key type (`(program point, static store)` online, `(division, value
//! vector)` staged, a bijection). Everything value-dependent lives here:
//! register allocation, the rename table of dynamic zero/copy
//! propagation, strength reduction, per-unit constant materialization,
//! dead-assignment sweeps, label/fixup bookkeeping, and the execution of
//! static computations against live VM state.
//!
//! Cycle metering is split into [`Emitter::exec_cycles`] (generating-
//! extension work: static computations, checks, bookkeeping) and
//! [`Emitter::emit_cycles`] (instruction construction/emission and branch
//! patching) so Table 3 can attribute where staging saves time.

use crate::costs::DynCosts;
use crate::runtime::Store;
use crate::sink::{CodeSink, FnvBuild, VmSink};
use crate::stats::RtStats;
use dyc_bta::OptConfig;
use dyc_ir::inst::{Callee, Inst};
use dyc_ir::VReg;
use dyc_vm::{Cc, FAluOp, FuncId, IAluOp, Instr, Module, Operand, Reg, UnOp, Value, Vm, VmError};
use std::collections::HashMap;
use std::hash::Hash;

/// A dense bitset over machine registers — the unit-local live-register
/// set dead-assignment elimination sweeps against. Replaces the old
/// `HashSet<Reg>` so the per-instruction DAE bookkeeping is two shifts
/// and a mask instead of a hash.
#[derive(Debug, Default, Clone)]
pub(crate) struct RegSet {
    words: Vec<u64>,
}

impl RegSet {
    pub(crate) fn new() -> RegSet {
        RegSet::default()
    }

    pub(crate) fn insert(&mut self, r: Reg) {
        let (w, b) = (r as usize / 64, r as usize % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << b;
    }

    pub(crate) fn remove(&mut self, r: Reg) {
        let (w, b) = (r as usize / 64, r as usize % 64);
        if let Some(word) = self.words.get_mut(w) {
            *word &= !(1 << b);
        }
    }

    pub(crate) fn contains(&self, r: Reg) -> bool {
        let (w, b) = (r as usize / 64, r as usize % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }
}

/// A resolved operand at emit time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Opnd {
    /// A run-time register.
    R(Reg),
    /// A known integer value (a filled hole).
    KI(i64),
    /// A known float value (a filled hole).
    KF(f64),
}

/// One instruction in the per-unit emit buffer.
pub(crate) struct Emitted {
    pub(crate) ins: Instr,
    /// Candidate for dead-assignment elimination.
    pub(crate) deletable: bool,
    /// Branch fixup: patch the target to this unit id's label afterwards.
    pub(crate) fixup: Option<u32>,
    /// Emitted by the copy-and-patch template path (metered at template
    /// cost, not full construction cost).
    pub(crate) templated: bool,
    /// Holes patched into this instruction (template path only). Kept per
    /// instruction so the seal-time meter can charge patch work against
    /// the instructions that survive the dead-assignment sweep, matching
    /// the convention that `emit_instr` is only paid for survivors.
    pub(crate) patches: u16,
    /// The instruction's [`dyc_vm::instr_shape`], when the producer
    /// pre-computed it (the fused template path carries shapes from
    /// stage time); `0` otherwise. Forwarded to the sink so a native
    /// backend can reuse prebuilt byte encodings.
    pub(crate) shape: u16,
}

/// Sentinel for "no register assigned yet" in the dense vreg table.
const NO_REG: Reg = u32::MAX;

/// The shared emit-time machinery, generic over the unit key and the
/// [`CodeSink`] backend instructions land in.
///
/// Unit keys are *interned*: each distinct key hashes once (FNV-1a — the
/// same family as the shard selector and `dyc-obs`) and receives a dense
/// `u32` id; labels, fixups, and the executors' worklists and
/// instrumentation all run on ids, so the emit hot path does no further
/// hash-map traffic. The register map is likewise a dense vector indexed
/// by vreg number.
///
/// All label/fixup resolution stays here: the sink receives sealed
/// instructions and final branch targets only, so every backend observes
/// the identical instruction stream (see `crate::sink`).
pub(crate) struct Emitter<K, S: CodeSink = VmSink> {
    pub(crate) cfg: OptConfig,
    /// Per-vreg float flag (move/flush selection).
    float_vreg: Vec<bool>,
    /// The emission backend.
    pub(crate) sink: S,
    /// Unit-key interner: the only hash per unit reference.
    key_ids: HashMap<K, u32, FnvBuild>,
    /// Code offset per unit id; `u32::MAX` until the unit is sealed.
    labels: Vec<u32>,
    fixups: Vec<(usize, u32)>,
    /// Dense vreg → machine-register table (`NO_REG` = unassigned).
    reg_map: Vec<Reg>,
    pub(crate) next_reg: u32,
    /// Cycles spent executing the generating extension itself.
    pub(crate) exec_cycles: u64,
    /// Cycles spent constructing, emitting, and patching instructions.
    pub(crate) emit_cycles: u64,
}

impl<K: Clone + Eq + Hash> Emitter<K, VmSink> {
    /// Take the finished code out of the default VM backend (the install
    /// path of both specialization executors).
    pub(crate) fn take_code(&mut self) -> Vec<Instr> {
        std::mem::take(&mut self.sink.code)
    }

    /// The emitted code so far (VM backend only; tests and diagnostics).
    #[cfg(test)]
    pub(crate) fn code(&self) -> &[Instr] {
        &self.sink.code
    }
}

impl<K: Clone + Eq + Hash> Emitter<K, crate::sink::InstallSink> {
    /// Take the finished code — plus the native lowering, when the
    /// backend was upgraded to a [`crate::sink::NativeSink`] — out of
    /// the install backend.
    pub(crate) fn take_install(&mut self) -> (Vec<Instr>, Option<crate::native::NativeArtifact>) {
        std::mem::take(&mut self.sink).take_install()
    }
}

impl<K: Clone + Eq + Hash, S: CodeSink + Default> Emitter<K, S> {
    pub(crate) fn new(cfg: OptConfig, float_vreg: Vec<bool>) -> Emitter<K, S> {
        let reg_map = vec![NO_REG; float_vreg.len()];
        Emitter {
            cfg,
            float_vreg,
            sink: S::default(),
            key_ids: HashMap::default(),
            labels: Vec::new(),
            fixups: Vec::new(),
            reg_map,
            next_reg: 0,
            exec_cycles: 0,
            emit_cycles: 0,
        }
    }
}

impl<K: Clone + Eq + Hash, S: CodeSink> Emitter<K, S> {
    pub(crate) fn total_cycles(&self) -> u64 {
        self.exec_cycles + self.emit_cycles
    }

    /// Number of instructions written to the sink so far (budget checks
    /// and `instrs_generated` accounting).
    pub(crate) fn emitted(&self) -> usize {
        self.sink.emitted()
    }

    /// Intern a unit key, returning its dense id (allocating one — and
    /// cloning the key — only on first sight).
    pub(crate) fn intern(&mut self, key: &K) -> u32 {
        if let Some(&id) = self.key_ids.get(key) {
            return id;
        }
        let id = self.labels.len() as u32;
        self.key_ids.insert(key.clone(), id);
        self.labels.push(u32::MAX);
        id
    }

    /// Has this unit id been sealed (its code emitted and labeled)?
    pub(crate) fn sealed(&self, id: u32) -> bool {
        self.labels[id as usize] != u32::MAX
    }

    fn is_float(&self, v: VReg) -> bool {
        self.float_vreg.get(v.0 as usize).copied().unwrap_or(false)
    }

    /// Grow the dense vreg table so index `i` is addressable.
    fn ensure_vreg(&mut self, i: usize) {
        if i >= self.reg_map.len() {
            self.reg_map.resize(i + 1, NO_REG);
        }
    }

    /// Pre-assign a register (dynamic pass-through parameters).
    pub(crate) fn set_reg(&mut self, v: VReg, r: Reg) {
        let i = v.0 as usize;
        self.ensure_vreg(i);
        self.reg_map[i] = r;
    }

    pub(crate) fn reg_of(&mut self, v: VReg) -> Reg {
        let i = v.0 as usize;
        self.ensure_vreg(i);
        if self.reg_map[i] != NO_REG {
            return self.reg_map[i];
        }
        let r = self.next_reg;
        self.next_reg += 1;
        self.reg_map[i] = r;
        r
    }

    pub(crate) fn fresh_reg(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    pub(crate) fn resolve(&mut self, v: VReg, store: &Store, rename: &HashMap<VReg, Opnd>) -> Opnd {
        if let Some(val) = store.get(&v) {
            return match val {
                Value::I(i) => Opnd::KI(*i),
                Value::F(f) => Opnd::KF(*f),
            };
        }
        if let Some(a) = rename.get(&v) {
            return *a;
        }
        Opnd::R(self.reg_of(v))
    }

    /// Get a register holding a known value (materializing at most once
    /// per unit per value).
    fn reg_for_const(
        &mut self,
        val: Value,
        scratch: &mut HashMap<u64, Reg>,
        buf: &mut Vec<Emitted>,
    ) -> Reg {
        let key = val.key_bits();
        if let Some(r) = scratch.get(&key) {
            return *r;
        }
        let r = self.fresh_reg();
        buf.push(Emitted {
            ins: mov_const(r, val),
            deletable: true,
            fixup: None,
            templated: false,
            patches: 0,
            shape: 0,
        });
        scratch.insert(key, r);
        r
    }

    pub(crate) fn opnd_reg(
        &mut self,
        o: Opnd,
        scratch: &mut HashMap<u64, Reg>,
        buf: &mut Vec<Emitted>,
    ) -> Reg {
        match o {
            Opnd::R(r) => r,
            Opnd::KI(v) => self.reg_for_const(Value::I(v), scratch, buf),
            Opnd::KF(v) => self.reg_for_const(Value::F(v), scratch, buf),
        }
    }

    /// Record a value-dependent fold: with zero/copy propagation the
    /// destination is renamed (no code); otherwise the value is emitted as
    /// a constant move.
    fn fold_to(
        &mut self,
        dst: VReg,
        k: Opnd,
        rename: &mut HashMap<VReg, Opnd>,
        buf: &mut Vec<Emitted>,
        stats: &mut RtStats,
    ) {
        if self.cfg.zero_copy_propagation {
            stats.zero_copy_folds += 1;
            rename.insert(dst, k);
        } else {
            let r = self.reg_of(dst);
            buf.push(Emitted {
                ins: mov_const(r, opnd_value(k)),
                deletable: true,
                fixup: None,
                templated: false,
                patches: 0,
                shape: 0,
            });
        }
    }

    /// Flush the rename table: every renamed variable that `keep` marks as
    /// readable later gets its value moved into its own register.
    pub(crate) fn flush_renames(
        &mut self,
        rename: &mut HashMap<VReg, Opnd>,
        buf: &mut Vec<Emitted>,
        keep: impl Fn(VReg) -> bool,
        mut live_regs: Option<&mut RegSet>,
    ) {
        let mut entries: Vec<(VReg, Opnd)> = rename.drain().collect();
        entries.sort_by_key(|(v, _)| *v);
        for (v, alias) in entries {
            if !keep(v) {
                continue;
            }
            let r = self.reg_of(v);
            let ins = match alias {
                Opnd::R(src) => {
                    if src == r {
                        continue;
                    }
                    if self.is_float(v) {
                        Instr::FMov { dst: r, src }
                    } else {
                        Instr::Mov { dst: r, src }
                    }
                }
                Opnd::KI(v) => Instr::MovI { dst: r, imm: v },
                Opnd::KF(v) => Instr::MovF { dst: r, imm: v },
            };
            buf.push(Emitted {
                ins,
                deletable: true,
                fixup: None,
                templated: false,
                patches: 0,
                shape: 0,
            });
            if let Some(lr) = live_regs.as_deref_mut() {
                lr.insert(r);
            }
        }
    }

    /// Execute a static computation at specialization time.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn exec_static(
        &mut self,
        inst: &Inst,
        store: &mut Store,
        rename: &mut HashMap<VReg, Opnd>,
        costs: &DynCosts,
        stats: &mut RtStats,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<(), VmError> {
        let val = |s: &Store, v: VReg| -> Value { s[&v] };
        let result: Value = match inst {
            Inst::ConstI { v, .. } => Value::I(*v),
            Inst::ConstF { v, .. } => Value::F(*v),
            Inst::Copy { src, .. } => val(store, *src),
            Inst::Un { op, src, .. } => eval_un(*op, val(store, *src)),
            Inst::IBin { op, a, b, .. } => Value::I(eval_ialu(
                *op,
                val(store, *a).as_i(),
                val(store, *b).as_i(),
            )?),
            Inst::FBin { op, a, b, .. } => {
                Value::F(eval_falu(*op, val(store, *a).as_f(), val(store, *b).as_f()))
            }
            Inst::ICmp { cc, a, b, .. } => {
                Value::I(eval_icmp(*cc, val(store, *a).as_i(), val(store, *b).as_i()) as i64)
            }
            Inst::FCmp { cc, a, b, .. } => {
                Value::I(eval_fcmp(*cc, val(store, *a).as_f(), val(store, *b).as_f()) as i64)
            }
            Inst::Load { ty, base, idx, .. } => {
                // A *static load* (§2.2.6): read live VM memory now.
                stats.static_loads += 1;
                self.exec_cycles += costs.static_load;
                let addr = val(store, *base).as_i() + val(store, *idx).as_i();
                vm.mem.read(addr, ty.vm_ty())
            }
            Inst::Call { callee, args, .. } => {
                // A *static call* (§2.2.6): run it now and memoize the
                // result into the emitted code.
                stats.static_calls += 1;
                let arg_vals: Vec<Value> = args.iter().map(|a| val(store, *a)).collect();
                match callee {
                    Callee::Host(h) => {
                        let mut sink = Vec::new();
                        self.exec_cycles += vm.cost_model().host_cost(*h);
                        h.eval(&arg_vals, &mut sink)
                            .expect("pure host functions return values")
                    }
                    Callee::Func { index, .. } => {
                        let before = vm.stats.clone();
                        let out = vm.call(module, FuncId(*index as u32), &arg_vals)?;
                        // Those cycles belong to dynamic compilation, not
                        // to the running program: reclassify.
                        let delta = vm.stats.delta_since(&before);
                        vm.stats.exec_cycles -= delta.exec_cycles;
                        vm.stats.icache_miss_cycles -= delta.icache_miss_cycles;
                        vm.stats.instrs_executed -= delta.instrs_executed;
                        self.exec_cycles += delta.exec_cycles + delta.icache_miss_cycles;
                        out.ok_or_else(|| VmError::Dispatch("static call to void function".into()))?
                    }
                }
            }
            _ => unreachable!("not a static computation: {inst:?}"),
        };
        stats.static_ops += 1;
        self.exec_cycles += costs.static_op;
        let dst = inst.def().expect("static computations define a value");
        rename.remove(&dst);
        store.insert(dst, result);
        Ok(())
    }

    /// Emit a dynamic computation, applying the value-dependent staged
    /// optimizations. Operands are resolved *before* the destination
    /// bookkeeping so value chains consumed by this very instruction do
    /// not get materialized. `read_later` answers "is this variable read
    /// at or after this program point" — a liveness lookup online, a
    /// precomputed table lookup in the staged path.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    pub(crate) fn emit_dynamic(
        &mut self,
        inst: &Inst,
        read_later: &dyn Fn(VReg) -> bool,
        store: &mut Store,
        rename: &mut HashMap<VReg, Opnd>,
        scratch: &mut HashMap<u64, Reg>,
        buf: &mut Vec<Emitted>,
        costs: &DynCosts,
        stats: &mut RtStats,
    ) {
        // Resolve every source operand first (pure lookups).
        let ops: Vec<Opnd> = inst
            .uses()
            .iter()
            .map(|u| self.resolve(*u, store, rename))
            .collect();

        let dst_vreg = inst.def();
        // Redefining a register invalidates rename entries that alias it;
        // materialize only aliases that are still read after this point.
        if let Some(d) = dst_vreg {
            let dr = self.reg_of(d);
            let mut stale: Vec<VReg> = rename
                .iter()
                .filter(|(v, a)| **a == Opnd::R(dr) && **v != d)
                .map(|(v, _)| *v)
                .collect();
            stale.sort();
            for v in stale {
                rename.remove(&v);
                if !read_later(v) {
                    continue;
                }
                let r = self.reg_of(v);
                let ins = if self.is_float(v) {
                    Instr::FMov { dst: r, src: dr }
                } else {
                    Instr::Mov { dst: r, src: dr }
                };
                buf.push(Emitted {
                    ins,
                    deletable: true,
                    fixup: None,
                    templated: false,
                    patches: 0,
                    shape: 0,
                });
            }
            rename.remove(&d);
            store.remove(&d);
        }

        match inst {
            Inst::ConstI { dst, v } => {
                // A constant assigned to a dynamic variable.
                if self.cfg.zero_copy_propagation {
                    rename.insert(*dst, Opnd::KI(*v));
                } else {
                    let r = self.reg_of(*dst);
                    buf.push(Emitted {
                        ins: Instr::MovI { dst: r, imm: *v },
                        deletable: true,
                        fixup: None,
                        templated: false,
                        patches: 0,
                        shape: 0,
                    });
                }
            }
            Inst::ConstF { dst, v } => {
                if self.cfg.zero_copy_propagation {
                    rename.insert(*dst, Opnd::KF(*v));
                } else {
                    let r = self.reg_of(*dst);
                    buf.push(Emitted {
                        ins: Instr::MovF { dst: r, imm: *v },
                        deletable: true,
                        fixup: None,
                        templated: false,
                        patches: 0,
                        shape: 0,
                    });
                }
            }
            Inst::Copy { dst, src: _ } => {
                match ops[0] {
                    Opnd::R(sr) => {
                        let r = self.reg_of(*dst);
                        if sr == r {
                            // Self-move after a fold collapsed the chain.
                        } else if self.cfg.zero_copy_propagation {
                            // Staged dynamic copy propagation (§2.2.7):
                            // downstream references read the source
                            // directly; the move only materializes if the
                            // variable is still live at the unit boundary.
                            stats.zero_copy_folds += 1;
                            rename.insert(*dst, Opnd::R(sr));
                        } else {
                            let ins = if self.is_float(*dst) {
                                Instr::FMov { dst: r, src: sr }
                            } else {
                                Instr::Mov { dst: r, src: sr }
                            };
                            buf.push(Emitted {
                                ins,
                                deletable: true,
                                fixup: None,
                                templated: false,
                                patches: 0,
                                shape: 0,
                            });
                        }
                    }
                    k => {
                        if self.cfg.zero_copy_propagation {
                            stats.zero_copy_folds += 1;
                            rename.insert(*dst, k);
                        } else {
                            let r = self.reg_of(*dst);
                            buf.push(Emitted {
                                ins: mov_const(r, opnd_value(k)),
                                deletable: true,
                                fixup: None,
                                templated: false,
                                patches: 0,
                                shape: 0,
                            });
                        }
                    }
                }
            }
            Inst::IBin { op, dst, .. } => {
                self.emit_ibin(
                    *op, *dst, ops[0], ops[1], rename, scratch, buf, costs, stats,
                );
            }
            Inst::FBin { op, dst, .. } => {
                self.emit_fbin(
                    *op, *dst, ops[0], ops[1], rename, scratch, buf, costs, stats,
                );
            }
            Inst::ICmp { cc, dst, .. } => match (ops[0], ops[1]) {
                (Opnd::KI(x), Opnd::KI(y)) => {
                    self.fold_to(
                        *dst,
                        Opnd::KI(eval_icmp(*cc, x, y) as i64),
                        rename,
                        buf,
                        stats,
                    );
                }
                (Opnd::R(x), Opnd::KI(y)) => {
                    let r = self.reg_of(*dst);
                    buf.push(Emitted {
                        ins: Instr::ICmp {
                            cc: *cc,
                            dst: r,
                            a: x,
                            b: Operand::Imm(y),
                        },
                        deletable: true,
                        fixup: None,
                        templated: false,
                        patches: 0,
                        shape: 0,
                    });
                }
                (Opnd::KI(x), Opnd::R(y)) => {
                    let r = self.reg_of(*dst);
                    buf.push(Emitted {
                        ins: Instr::ICmp {
                            cc: cc.swapped(),
                            dst: r,
                            a: y,
                            b: Operand::Imm(x),
                        },
                        deletable: true,
                        fixup: None,
                        templated: false,
                        patches: 0,
                        shape: 0,
                    });
                }
                (x, y) => {
                    let xr = self.opnd_reg(x, scratch, buf);
                    let yr = self.opnd_reg(y, scratch, buf);
                    let r = self.reg_of(*dst);
                    buf.push(Emitted {
                        ins: Instr::ICmp {
                            cc: *cc,
                            dst: r,
                            a: xr,
                            b: Operand::Reg(yr),
                        },
                        deletable: true,
                        fixup: None,
                        templated: false,
                        patches: 0,
                        shape: 0,
                    });
                }
            },
            Inst::FCmp { cc, dst, .. } => {
                let (ra, rb) = (ops[0], ops[1]);
                if let (Opnd::KF(x), Opnd::KF(y)) = (ra, rb) {
                    self.fold_to(
                        *dst,
                        Opnd::KI(eval_fcmp(*cc, x, y) as i64),
                        rename,
                        buf,
                        stats,
                    );
                } else {
                    let xr = self.opnd_reg(ra, scratch, buf);
                    let yr = self.opnd_reg(rb, scratch, buf);
                    let r = self.reg_of(*dst);
                    buf.push(Emitted {
                        ins: Instr::FCmp {
                            cc: *cc,
                            dst: r,
                            a: xr,
                            b: yr,
                        },
                        deletable: true,
                        fixup: None,
                        templated: false,
                        patches: 0,
                        shape: 0,
                    });
                }
            }
            Inst::Un { op, dst, src: _ } => match ops[0] {
                Opnd::R(sr) => {
                    let r = self.reg_of(*dst);
                    buf.push(Emitted {
                        ins: Instr::Un {
                            op: *op,
                            dst: r,
                            src: sr,
                        },
                        deletable: true,
                        fixup: None,
                        templated: false,
                        patches: 0,
                        shape: 0,
                    });
                }
                k => {
                    let folded = eval_un(*op, opnd_value(k));
                    self.fold_to(*dst, value_opnd(folded), rename, buf, stats);
                }
            },
            Inst::Load { ty, dst, .. } => {
                let (breg, iop) = match (ops[0], ops[1]) {
                    (Opnd::KI(bv), Opnd::KI(iv)) => {
                        // Address fully known but contents dynamic: fold
                        // the whole address into the offset of a load from
                        // a zero base materialized once per unit.
                        let z = self.reg_for_const(Value::I(0), scratch, buf);
                        (z, Operand::Imm(bv + iv))
                    }
                    (Opnd::KI(bv), other) => {
                        let ir = self.opnd_reg(other, scratch, buf);
                        (ir, Operand::Imm(bv))
                    }
                    (other, Opnd::KI(iv)) => {
                        let br = self.opnd_reg(other, scratch, buf);
                        (br, Operand::Imm(iv))
                    }
                    (ob, oi) => {
                        let br = self.opnd_reg(ob, scratch, buf);
                        let ir = self.opnd_reg(oi, scratch, buf);
                        (br, Operand::Reg(ir))
                    }
                };
                let r = self.reg_of(*dst);
                buf.push(Emitted {
                    ins: Instr::Load {
                        ty: ty.vm_ty(),
                        dst: r,
                        base: breg,
                        idx: iop,
                    },
                    deletable: true,
                    fixup: None,
                    templated: false,
                    patches: 0,
                    shape: 0,
                });
            }
            Inst::Store { ty, .. } => {
                let sr = self.opnd_reg(ops[2], scratch, buf);
                let (breg, iop) = match (ops[0], ops[1]) {
                    (Opnd::KI(bv), Opnd::KI(iv)) => {
                        let z = self.reg_for_const(Value::I(0), scratch, buf);
                        (z, Operand::Imm(bv + iv))
                    }
                    (Opnd::KI(bv), other) => (self.opnd_reg(other, scratch, buf), Operand::Imm(bv)),
                    (other, Opnd::KI(iv)) => (self.opnd_reg(other, scratch, buf), Operand::Imm(iv)),
                    (ob, oi) => {
                        let br = self.opnd_reg(ob, scratch, buf);
                        let ir = self.opnd_reg(oi, scratch, buf);
                        (br, Operand::Reg(ir))
                    }
                };
                buf.push(Emitted {
                    ins: Instr::Store {
                        ty: ty.vm_ty(),
                        base: breg,
                        idx: iop,
                        src: sr,
                    },
                    deletable: false,
                    fixup: None,
                    templated: false,
                    patches: 0,
                    shape: 0,
                });
            }
            Inst::Call { callee, dst, .. } => {
                let arg_regs: Vec<Reg> = ops
                    .iter()
                    .map(|o| self.opnd_reg(*o, scratch, buf))
                    .collect();
                let d = dst.map(|d| self.reg_of(d));
                let ins = match callee {
                    Callee::Func { index, .. } => Instr::Call {
                        func: FuncId(*index as u32),
                        dst: d,
                        args: arg_regs,
                    },
                    Callee::Host(h) => Instr::CallHost {
                        f: *h,
                        dst: d,
                        args: arg_regs,
                    },
                };
                buf.push(Emitted {
                    ins,
                    deletable: false,
                    fixup: None,
                    templated: false,
                    patches: 0,
                    shape: 0,
                });
            }
            _ => unreachable!("annotations handled by the caller"),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_ibin(
        &mut self,
        op: IAluOp,
        dst: VReg,
        ra: Opnd,
        rb: Opnd,
        rename: &mut HashMap<VReg, Opnd>,
        scratch: &mut HashMap<u64, Reg>,
        buf: &mut Vec<Emitted>,
        costs: &DynCosts,
        stats: &mut RtStats,
    ) {
        self.exec_cycles += costs.opt_check;
        // Both operands known (only possible through renames): fold.
        if let (Opnd::KI(x), Opnd::KI(y)) = (ra, rb) {
            if let Ok(v) = eval_ialu(op, x, y) {
                self.fold_to(dst, Opnd::KI(v), rename, buf, stats);
                return;
            }
        }
        // Normalize: put a known operand of a commutative op on the right.
        let (ra, rb) = match (op, ra, rb) {
            (
                IAluOp::Add | IAluOp::Mul | IAluOp::And | IAluOp::Or | IAluOp::Xor,
                Opnd::KI(_),
                _,
            ) => (rb, ra),
            _ => (ra, rb),
        };

        if let Opnd::KI(k) = rb {
            if self.cfg.zero_copy_propagation {
                let fold = match op {
                    IAluOp::Mul if k == 0 => Some(Opnd::KI(0)),
                    IAluOp::Mul | IAluOp::Div if k == 1 => Some(ra),
                    IAluOp::Add | IAluOp::Sub | IAluOp::Or | IAluOp::Xor if k == 0 => Some(ra),
                    IAluOp::And if k == 0 => Some(Opnd::KI(0)),
                    IAluOp::Rem if k == 1 => Some(Opnd::KI(0)),
                    IAluOp::Shl | IAluOp::Shr if k == 0 => Some(ra),
                    _ => None,
                };
                if let Some(f) = fold {
                    stats.zero_copy_folds += 1;
                    if self.cfg.zero_copy_propagation {
                        rename.insert(dst, f);
                    }
                    return;
                }
            } else if self.cfg.strength_reduction {
                // Strength reduction alone still replaces the operation
                // with a cheaper one, but must write the destination.
                let simple = match op {
                    IAluOp::Mul if k == 0 => Some(mov_const(self.reg_of(dst), Value::I(0))),
                    IAluOp::Mul | IAluOp::Div if k == 1 => {
                        let ar = self.opnd_reg(ra, scratch, buf);
                        Some(Instr::Mov {
                            dst: self.reg_of(dst),
                            src: ar,
                        })
                    }
                    _ => None,
                };
                if let Some(ins) = simple {
                    stats.strength_reductions += 1;
                    buf.push(Emitted {
                        ins,
                        deletable: true,
                        fixup: None,
                        templated: false,
                        patches: 0,
                        shape: 0,
                    });
                    return;
                }
            }
            if self.cfg.strength_reduction && k > 1 && (k as u64).is_power_of_two() {
                let n = k.trailing_zeros() as i64;
                match op {
                    IAluOp::Mul => {
                        stats.strength_reductions += 1;
                        let ar = self.opnd_reg(ra, scratch, buf);
                        let r = self.reg_of(dst);
                        buf.push(Emitted {
                            ins: Instr::IAlu {
                                op: IAluOp::Shl,
                                dst: r,
                                a: ar,
                                b: Operand::Imm(n),
                            },
                            deletable: true,
                            fixup: None,
                            templated: false,
                            patches: 0,
                            shape: 0,
                        });
                        return;
                    }
                    IAluOp::Div => {
                        stats.strength_reductions += 1;
                        let ar = self.opnd_reg(ra, scratch, buf);
                        let r = self.reg_of(dst);
                        self.emit_div_pow2(ar, k, n, r, buf);
                        return;
                    }
                    IAluOp::Rem => {
                        stats.strength_reductions += 1;
                        let ar = self.opnd_reg(ra, scratch, buf);
                        let q = self.fresh_reg();
                        self.emit_div_pow2(ar, k, n, q, buf);
                        let t = self.fresh_reg();
                        let r = self.reg_of(dst);
                        buf.push(Emitted {
                            ins: Instr::IAlu {
                                op: IAluOp::Shl,
                                dst: t,
                                a: q,
                                b: Operand::Imm(n),
                            },
                            deletable: true,
                            fixup: None,
                            templated: false,
                            patches: 0,
                            shape: 0,
                        });
                        buf.push(Emitted {
                            ins: Instr::IAlu {
                                op: IAluOp::Sub,
                                dst: r,
                                a: ar,
                                b: Operand::Reg(t),
                            },
                            deletable: true,
                            fixup: None,
                            templated: false,
                            patches: 0,
                            shape: 0,
                        });
                        return;
                    }
                    _ => {}
                }
            }
            // Hole fits the immediate field.
            let ar = self.opnd_reg(ra, scratch, buf);
            let r = self.reg_of(dst);
            buf.push(Emitted {
                ins: Instr::IAlu {
                    op,
                    dst: r,
                    a: ar,
                    b: Operand::Imm(k),
                },
                deletable: true,
                fixup: None,
                templated: false,
                patches: 0,
                shape: 0,
            });
            return;
        }
        // Known left operand of a non-commutative op, or both registers.
        let ar = self.opnd_reg(ra, scratch, buf);
        let br = match rb {
            Opnd::R(r) => Operand::Reg(r),
            k => Operand::Reg(self.opnd_reg(k, scratch, buf)),
        };
        let r = self.reg_of(dst);
        buf.push(Emitted {
            ins: Instr::IAlu {
                op,
                dst: r,
                a: ar,
                b: br,
            },
            deletable: true,
            fixup: None,
            templated: false,
            patches: 0,
            shape: 0,
        });
    }

    /// Truncating (C-semantics) signed division by a power of two:
    /// bias negative dividends before shifting.
    fn emit_div_pow2(&mut self, a: Reg, k: i64, n: i64, dst: Reg, buf: &mut Vec<Emitted>) {
        let sign = self.fresh_reg();
        let bias = self.fresh_reg();
        let sum = self.fresh_reg();
        buf.push(Emitted {
            ins: Instr::IAlu {
                op: IAluOp::Shr,
                dst: sign,
                a,
                b: Operand::Imm(63),
            },
            deletable: true,
            fixup: None,
            templated: false,
            patches: 0,
            shape: 0,
        });
        buf.push(Emitted {
            ins: Instr::IAlu {
                op: IAluOp::And,
                dst: bias,
                a: sign,
                b: Operand::Imm(k - 1),
            },
            deletable: true,
            fixup: None,
            templated: false,
            patches: 0,
            shape: 0,
        });
        buf.push(Emitted {
            ins: Instr::IAlu {
                op: IAluOp::Add,
                dst: sum,
                a,
                b: Operand::Reg(bias),
            },
            deletable: true,
            fixup: None,
            templated: false,
            patches: 0,
            shape: 0,
        });
        buf.push(Emitted {
            ins: Instr::IAlu {
                op: IAluOp::Shr,
                dst,
                a: sum,
                b: Operand::Imm(n),
            },
            deletable: true,
            fixup: None,
            templated: false,
            patches: 0,
            shape: 0,
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_fbin(
        &mut self,
        op: FAluOp,
        dst: VReg,
        ra: Opnd,
        rb: Opnd,
        rename: &mut HashMap<VReg, Opnd>,
        scratch: &mut HashMap<u64, Reg>,
        buf: &mut Vec<Emitted>,
        costs: &DynCosts,
        stats: &mut RtStats,
    ) {
        self.exec_cycles += costs.opt_check;
        if let (Opnd::KF(x), Opnd::KF(y)) = (ra, rb) {
            self.fold_to(dst, Opnd::KF(eval_falu(op, x, y)), rename, buf, stats);
            return;
        }
        let (ra, rb) = match (op, ra, rb) {
            (FAluOp::Add | FAluOp::Mul, Opnd::KF(_), _) => (rb, ra),
            _ => (ra, rb),
        };
        if let Opnd::KF(k) = rb {
            if self.cfg.zero_copy_propagation {
                // Dynamic zero and copy propagation (§2.2.7). Folding
                // x*0.0 to 0.0 assumes x is finite, the same assumption
                // DyC makes.
                let fold = match op {
                    FAluOp::Mul if k == 0.0 => Some(Opnd::KF(0.0)),
                    FAluOp::Mul | FAluOp::Div if k == 1.0 => Some(ra),
                    FAluOp::Add | FAluOp::Sub if k == 0.0 => Some(ra),
                    _ => None,
                };
                if let Some(f) = fold {
                    stats.zero_copy_folds += 1;
                    rename.insert(dst, f);
                    return;
                }
            } else if self.cfg.strength_reduction {
                // Strength reduction without copy propagation: the
                // multiply becomes a move — which costs the same as the
                // multiply on the 21164 (§2.2.7), so no benefit accrues.
                let simple = match op {
                    FAluOp::Mul if k == 1.0 => {
                        let ar = self.opnd_reg(ra, scratch, buf);
                        Some(Instr::FMov {
                            dst: self.reg_of(dst),
                            src: ar,
                        })
                    }
                    FAluOp::Mul if k == 0.0 => Some(Instr::MovF {
                        dst: self.reg_of(dst),
                        imm: 0.0,
                    }),
                    FAluOp::Add | FAluOp::Sub if k == 0.0 => {
                        let ar = self.opnd_reg(ra, scratch, buf);
                        Some(Instr::FMov {
                            dst: self.reg_of(dst),
                            src: ar,
                        })
                    }
                    _ => None,
                };
                if let Some(ins) = simple {
                    stats.strength_reductions += 1;
                    buf.push(Emitted {
                        ins,
                        deletable: true,
                        fixup: None,
                        templated: false,
                        patches: 0,
                        shape: 0,
                    });
                    return;
                }
            }
        }
        let ar = self.opnd_reg(ra, scratch, buf);
        let br = self.opnd_reg(rb, scratch, buf);
        let r = self.reg_of(dst);
        buf.push(Emitted {
            ins: Instr::FAlu {
                op,
                dst: r,
                a: ar,
                b: br,
            },
            deletable: true,
            fixup: None,
            templated: false,
            patches: 0,
            shape: 0,
        });
    }

    fn dae_sweep(
        &mut self,
        buf: Vec<Emitted>,
        mut live: RegSet,
        stats: &mut RtStats,
    ) -> Vec<Emitted> {
        if !self.cfg.dead_assignment_elimination {
            return buf;
        }
        let mut keep_rev: Vec<Emitted> = Vec::with_capacity(buf.len());
        for e in buf.into_iter().rev() {
            if e.deletable {
                if let Some(d) = e.ins.def() {
                    if !live.contains(d) {
                        stats.dae_removed += 1;
                        continue;
                    }
                }
            }
            if let Some(d) = e.ins.def() {
                live.remove(d);
            }
            for u in e.ins.uses() {
                live.insert(u);
            }
            keep_rev.push(e);
        }
        keep_rev.reverse();
        keep_rev
    }

    /// Finish a unit: run the dead-assignment sweep (§2.2.7), record the
    /// unit's label, and append the surviving instructions with their
    /// branch fixups. Emission work is metered here, against survivors
    /// only — the cost model treats instructions the sweep deletes as
    /// free (their removal is what `dae_check` pays for). Constructed
    /// instructions pay `emit_instr`; template-copied instructions pay
    /// `template_copy` plus `hole_patch` per patched hole, which is what
    /// makes copy-and-patch the cheaper path per generated instruction.
    ///
    /// Returns `(template_instrs, holes_patched)` for this unit — the
    /// post-sweep template contribution, which the tracing layer records
    /// so event sums reconcile exactly with the `RtStats` totals.
    pub(crate) fn seal_unit(
        &mut self,
        id: u32,
        buf: Vec<Emitted>,
        live_regs: RegSet,
        costs: &DynCosts,
        stats: &mut RtStats,
    ) -> (u64, u64) {
        self.exec_cycles += costs.dae_check * buf.len() as u64;
        let kept = self.dae_sweep(buf, live_regs, stats);
        let label = self.sink.emitted() as u32;
        self.labels[id as usize] = label;
        self.sink.begin_unit(id, label);
        let (mut tmpl, mut holes) = (0u64, 0u64);
        for e in kept {
            if let Some(fk) = e.fixup {
                self.fixups.push((self.sink.emitted(), fk));
            }
            self.sink
                .push_shaped(e.ins, e.templated, e.patches, e.shape);
            if e.templated {
                let patch = costs.hole_patch * u64::from(e.patches);
                self.emit_cycles += costs.template_copy + patch;
                stats.template_copy_cycles += costs.template_copy;
                stats.hole_patch_cycles += patch;
                stats.template_instrs += 1;
                stats.holes_patched += u64::from(e.patches);
                tmpl += 1;
                holes += u64::from(e.patches);
            } else {
                self.emit_cycles += costs.emit_instr;
            }
        }
        (tmpl, holes)
    }

    /// Patch every recorded branch target once all units are emitted. The
    /// fixup keys resolve to labels here; the sink receives only final
    /// offsets.
    pub(crate) fn patch_fixups(&mut self, costs: &DynCosts) {
        for (at, key) in std::mem::take(&mut self.fixups) {
            let dest = self.labels[key as usize];
            debug_assert!(dest != u32::MAX, "all units emitted before patching");
            self.sink.patch_branch(at, dest);
            self.emit_cycles += costs.branch_patch;
        }
    }
}

pub(crate) fn mov_const(dst: Reg, v: Value) -> Instr {
    match v {
        Value::I(i) => Instr::MovI { dst, imm: i },
        Value::F(f) => Instr::MovF { dst, imm: f },
    }
}

pub(crate) fn opnd_value(o: Opnd) -> Value {
    match o {
        Opnd::KI(v) => Value::I(v),
        Opnd::KF(v) => Value::F(v),
        Opnd::R(_) => unreachable!("not a constant operand"),
    }
}

pub(crate) fn value_opnd(v: Value) -> Opnd {
    match v {
        Value::I(i) => Opnd::KI(i),
        Value::F(f) => Opnd::KF(f),
    }
}

fn eval_un(op: UnOp, v: Value) -> Value {
    match op {
        UnOp::NegI => Value::I(v.as_i().wrapping_neg()),
        UnOp::NotI => Value::I(!v.as_i()),
        UnOp::NegF => Value::F(-v.as_f()),
        UnOp::IToF => Value::F(v.as_i() as f64),
        UnOp::FToI => Value::I(v.as_f() as i64),
    }
}

fn eval_ialu(op: IAluOp, a: i64, b: i64) -> Result<i64, VmError> {
    Ok(match op {
        IAluOp::Add => a.wrapping_add(b),
        IAluOp::Sub => a.wrapping_sub(b),
        IAluOp::Mul => a.wrapping_mul(b),
        IAluOp::Div => {
            if b == 0 {
                return Err(VmError::Dispatch(
                    "static division by zero during specialization".into(),
                ));
            }
            a.wrapping_div(b)
        }
        IAluOp::Rem => {
            if b == 0 {
                return Err(VmError::Dispatch(
                    "static remainder by zero during specialization".into(),
                ));
            }
            a.wrapping_rem(b)
        }
        IAluOp::And => a & b,
        IAluOp::Or => a | b,
        IAluOp::Xor => a ^ b,
        IAluOp::Shl => a.wrapping_shl(b as u32 & 63),
        IAluOp::Shr => a.wrapping_shr(b as u32 & 63),
    })
}

fn eval_falu(op: FAluOp, a: f64, b: f64) -> f64 {
    match op {
        FAluOp::Add => a + b,
        FAluOp::Sub => a - b,
        FAluOp::Mul => a * b,
        FAluOp::Div => a / b,
    }
}

fn eval_icmp(cc: Cc, a: i64, b: i64) -> bool {
    match cc {
        Cc::Eq => a == b,
        Cc::Ne => a != b,
        Cc::Lt => a < b,
        Cc::Le => a <= b,
        Cc::Gt => a > b,
        Cc::Ge => a >= b,
    }
}

fn eval_fcmp(cc: Cc, a: f64, b: f64) -> bool {
    match cc {
        Cc::Eq => a == b,
        Cc::Ne => a != b,
        Cc::Lt => a < b,
        Cc::Le => a <= b,
        Cc::Gt => a > b,
        Cc::Ge => a >= b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::DynCosts;
    use crate::stats::RtStats;

    fn emitter(cfg: OptConfig, float_vreg: Vec<bool>) -> Emitter<u32> {
        Emitter::new(cfg, float_vreg)
    }

    fn plain(ins: Instr) -> Emitted {
        Emitted {
            ins,
            deletable: true,
            fixup: None,
            templated: false,
            patches: 0,
            shape: 0,
        }
    }

    fn kept(ins: Instr) -> Emitted {
        Emitted {
            deletable: false,
            ..plain(ins)
        }
    }

    #[test]
    fn regset_spans_word_boundaries() {
        let mut s = RegSet::new();
        for r in [0u32, 63, 64, 127, 128, 200] {
            s.insert(r);
        }
        for r in [0u32, 63, 64, 127, 128, 200] {
            assert!(s.contains(r), "r{r} should be present");
        }
        for r in [1u32, 62, 65, 126, 129, 199, 201] {
            assert!(!s.contains(r), "r{r} should be absent");
        }
        // Removing a bit clears only that bit, even mid-word.
        s.remove(64);
        assert!(!s.contains(64));
        assert!(s.contains(63) && s.contains(127));
        // Removing past the last allocated word is a no-op, not a panic.
        s.remove(100_000);
        assert!(!s.contains(100_000));
    }

    #[test]
    fn interning_assigns_dense_ids_once() {
        let mut em = emitter(OptConfig::all(), vec![]);
        let a = em.intern(&7);
        let b = em.intern(&9);
        assert_eq!((a, b), (0, 1), "ids are dense in first-sight order");
        assert_eq!(em.intern(&7), a, "re-interning hits the cache");
        assert!(!em.sealed(a) && !em.sealed(b));

        let costs = DynCosts::calibrated();
        let mut stats = RtStats::default();
        em.seal_unit(a, Vec::new(), RegSet::new(), &costs, &mut stats);
        assert!(em.sealed(a));
        assert!(!em.sealed(b), "sealing one unit does not label another");
        assert_eq!(
            em.intern(&7),
            a,
            "interning after sealing still reuses the id"
        );
    }

    #[test]
    fn forward_and_backward_fixups_patch_all_branch_kinds() {
        let mut em = emitter(OptConfig::all(), vec![]);
        let costs = DynCosts::calibrated();
        let mut stats = RtStats::default();
        let a = em.intern(&0);
        let b = em.intern(&1);

        // Unit a branches forward to b (unsealed at fixup-record time)
        // with both an unconditional and a conditional branch.
        let buf_a = vec![
            kept(Instr::MovI { dst: 0, imm: 1 }),
            Emitted {
                fixup: Some(b),
                ..kept(Instr::Jmp { target: u32::MAX })
            },
            Emitted {
                fixup: Some(b),
                ..kept(Instr::Brnz {
                    cond: 0,
                    target: u32::MAX,
                })
            },
        ];
        em.seal_unit(a, buf_a, RegSet::new(), &costs, &mut stats);

        // Unit b branches backward to the already-sealed a.
        let buf_b = vec![Emitted {
            fixup: Some(a),
            ..kept(Instr::Brz {
                cond: 0,
                target: u32::MAX,
            })
        }];
        em.seal_unit(b, buf_b, RegSet::new(), &costs, &mut stats);

        let before = em.emit_cycles;
        em.patch_fixups(&costs);
        assert_eq!(
            em.emit_cycles - before,
            3 * costs.branch_patch,
            "each recorded fixup pays one branch patch"
        );
        // a's label is 0, b's label is 3 (a emitted three instructions).
        assert_eq!(em.code()[1], Instr::Jmp { target: 3 });
        assert_eq!(em.code()[2], Instr::Brnz { cond: 0, target: 3 });
        assert_eq!(em.code()[3], Instr::Brz { cond: 0, target: 0 });
        assert!(em.fixups.is_empty(), "patching drains the fixup table");
    }

    #[test]
    fn fixup_into_a_templated_instruction() {
        let mut em = emitter(OptConfig::all(), vec![]);
        let costs = DynCosts::calibrated();
        let mut stats = RtStats::default();
        let id = em.intern(&0);

        // A template-copied branch: metered at copy+patch cost, and its
        // fixup must be recorded exactly like a constructed branch's.
        let buf = vec![Emitted {
            ins: Instr::Jmp { target: u32::MAX },
            deletable: false,
            fixup: Some(id),
            templated: true,
            patches: 2,
            shape: 0,
        }];
        em.seal_unit(id, buf, RegSet::new(), &costs, &mut stats);
        assert_eq!(stats.template_instrs, 1);
        assert_eq!(stats.holes_patched, 2);
        assert_eq!(
            em.emit_cycles,
            costs.template_copy + 2 * costs.hole_patch,
            "templated instructions pay copy + per-hole patch, not emit_instr"
        );

        em.patch_fixups(&costs);
        assert_eq!(
            em.code()[0],
            Instr::Jmp { target: 0 },
            "self-loop patched to own label"
        );
    }

    #[test]
    fn fixups_from_different_units_reuse_one_label() {
        let mut em = emitter(OptConfig::all(), vec![]);
        let costs = DynCosts::calibrated();
        let mut stats = RtStats::default();
        let target = em.intern(&0);
        let u1 = em.intern(&1);
        let u2 = em.intern(&2);

        em.seal_unit(
            u1,
            vec![Emitted {
                fixup: Some(target),
                ..kept(Instr::Jmp { target: u32::MAX })
            }],
            RegSet::new(),
            &costs,
            &mut stats,
        );
        em.seal_unit(
            u2,
            vec![Emitted {
                fixup: Some(target),
                ..kept(Instr::Jmp { target: u32::MAX })
            }],
            RegSet::new(),
            &costs,
            &mut stats,
        );
        em.seal_unit(
            target,
            vec![kept(Instr::MovI { dst: 0, imm: 0 })],
            RegSet::new(),
            &costs,
            &mut stats,
        );
        em.patch_fixups(&costs);
        assert_eq!(em.code()[0], Instr::Jmp { target: 2 });
        assert_eq!(em.code()[1], Instr::Jmp { target: 2 });
    }

    #[test]
    fn flush_renames_selects_moves_by_float_flag() {
        // v0 int ← r5, v1 float ← r6, v2 int ← 9, v3 float ← 2.5.
        let mut em = emitter(OptConfig::all(), vec![false, true, false, true]);
        let mut rename: HashMap<VReg, Opnd> = HashMap::new();
        rename.insert(VReg(0), Opnd::R(5));
        rename.insert(VReg(1), Opnd::R(6));
        rename.insert(VReg(2), Opnd::KI(9));
        rename.insert(VReg(3), Opnd::KF(2.5));
        // Burn registers so the flushed homes don't collide with r5/r6.
        em.next_reg = 10;

        let mut buf = Vec::new();
        let mut live = RegSet::new();
        em.flush_renames(&mut rename, &mut buf, |_| true, Some(&mut live));
        assert!(rename.is_empty(), "flushing drains the rename table");

        let ins: Vec<Instr> = buf.iter().map(|e| e.ins.clone()).collect();
        assert_eq!(
            ins,
            vec![
                Instr::Mov { dst: 10, src: 5 },
                Instr::FMov { dst: 11, src: 6 },
                Instr::MovI { dst: 12, imm: 9 },
                Instr::MovF { dst: 13, imm: 2.5 },
            ],
            "deterministic vreg order; FMov only for float-flagged vregs"
        );
        for r in 10..14 {
            assert!(live.contains(r), "flushed homes are marked live");
        }
    }

    #[test]
    fn flush_renames_respects_keep_and_skips_self_moves() {
        let mut em = emitter(OptConfig::all(), vec![false, false]);
        // v0's home *is* r3: a rename back to it needs no move.
        em.set_reg(VReg(0), 3);
        let mut rename: HashMap<VReg, Opnd> = HashMap::new();
        rename.insert(VReg(0), Opnd::R(3));
        rename.insert(VReg(1), Opnd::KI(7));

        let mut buf = Vec::new();
        em.flush_renames(&mut rename, &mut buf, |v| v == VReg(0), None);
        assert!(
            buf.is_empty(),
            "v0 is a self-move and v1 is dropped by the keep filter"
        );
    }

    #[test]
    fn seal_unit_sweeps_dead_assignments_against_live_regs() {
        let costs = DynCosts::calibrated();

        // r0 is dead, r1 is live; the deletable write to r0 vanishes.
        let mut em = emitter(OptConfig::all(), vec![]);
        let mut stats = RtStats::default();
        let id = em.intern(&0);
        let buf = vec![
            plain(Instr::MovI { dst: 0, imm: 1 }),
            plain(Instr::MovI { dst: 1, imm: 2 }),
        ];
        let exec_before = em.exec_cycles;
        let mut live = RegSet::new();
        live.insert(1);
        em.seal_unit(id, buf, live, &costs, &mut stats);
        assert_eq!(em.code(), vec![Instr::MovI { dst: 1, imm: 2 }]);
        assert_eq!(stats.dae_removed, 1);
        assert_eq!(
            em.exec_cycles - exec_before,
            2 * costs.dae_check,
            "the sweep is metered per buffered instruction, survivors or not"
        );
        assert_eq!(
            em.emit_cycles, costs.emit_instr,
            "only survivors pay emission"
        );

        // The sweep is a backward liveness pass: a def consumed by a kept
        // instruction survives even if not live at the unit boundary.
        let mut em = emitter(OptConfig::all(), vec![]);
        let mut stats = RtStats::default();
        let id = em.intern(&0);
        let buf = vec![
            plain(Instr::MovI { dst: 0, imm: 1 }),
            plain(Instr::Mov { dst: 1, src: 0 }),
        ];
        let mut live = RegSet::new();
        live.insert(1);
        em.seal_unit(id, buf, live, &costs, &mut stats);
        assert_eq!(em.code().len(), 2);
        assert_eq!(stats.dae_removed, 0);

        // With the optimization off the dead write is kept.
        let cfg = OptConfig::all()
            .without("dead_assignment_elimination")
            .unwrap();
        let mut em = emitter(cfg, vec![]);
        let mut stats = RtStats::default();
        let id = em.intern(&0);
        let buf = vec![plain(Instr::MovI { dst: 0, imm: 1 })];
        em.seal_unit(id, buf, RegSet::new(), &costs, &mut stats);
        assert_eq!(em.code().len(), 1);
        assert_eq!(stats.dae_removed, 0);
    }

    /// Drive an identical seal/patch sequence into any backend.
    fn drive<S: CodeSink>(em: &mut Emitter<u32, S>, stats: &mut RtStats, costs: &DynCosts) {
        let a = em.intern(&0);
        let b = em.intern(&1);
        let buf_a = vec![
            kept(Instr::MovI { dst: 0, imm: 1 }),
            Emitted {
                fixup: Some(b),
                ..kept(Instr::Jmp { target: u32::MAX })
            },
        ];
        em.seal_unit(a, buf_a, RegSet::new(), costs, stats);
        let buf_b = vec![Emitted {
            ins: Instr::Brz {
                cond: 0,
                target: u32::MAX,
            },
            deletable: false,
            fixup: Some(a),
            templated: true,
            patches: 1,
            shape: 0,
        }];
        em.seal_unit(b, buf_b, RegSet::new(), costs, stats);
        em.patch_fixups(costs);
    }

    #[test]
    fn emission_is_sink_agnostic() {
        use crate::sink::{RecordingSink, SinkOp};
        let costs = DynCosts::calibrated();
        let mut vm: Emitter<u32> = emitter(OptConfig::all(), vec![]);
        let mut stats = RtStats::default();
        drive(&mut vm, &mut stats, &costs);

        let mut rec: Emitter<u32, RecordingSink> = Emitter::new(OptConfig::all(), vec![]);
        let mut stats2 = RtStats::default();
        drive(&mut rec, &mut stats2, &costs);

        assert_eq!(
            rec.sink.replay(),
            vm.code(),
            "every backend observes the identical instruction stream"
        );
        assert_eq!(
            (vm.exec_cycles, vm.emit_cycles),
            (rec.exec_cycles, rec.emit_cycles),
            "cycle metering lives in the emitter, not the sink"
        );
        // The recording backend also sees the unit boundaries VmSink
        // ignores: unit b starts at offset 2.
        assert!(rec.sink.ops.contains(&SinkOp::Begin(1, 2)));
    }

    #[test]
    fn constants_materialize_at_most_once_per_unit() {
        let mut em = emitter(OptConfig::all(), vec![]);
        let mut scratch: HashMap<u64, Reg> = HashMap::new();
        let mut buf = Vec::new();
        let r1 = em.opnd_reg(Opnd::KI(42), &mut scratch, &mut buf);
        let r2 = em.opnd_reg(Opnd::KI(42), &mut scratch, &mut buf);
        let r3 = em.opnd_reg(Opnd::KI(43), &mut scratch, &mut buf);
        assert_eq!(r1, r2, "same value reuses the scratch register");
        assert_ne!(r1, r3);
        assert_eq!(buf.len(), 2, "one materializing move per distinct value");
        // An existing register passes through untouched.
        assert_eq!(em.opnd_reg(Opnd::R(99), &mut scratch, &mut buf), 99);
        assert_eq!(buf.len(), 2);
    }
}
