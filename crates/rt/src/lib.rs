//! # dyc-rt — the run-time half of DyC-RS
//!
//! The static compiler (`dyc-stage`) replaces every dynamic-region entry
//! with a dispatch into this crate and precompiles each region into a
//! generating-extension (GE) program. At run time:
//!
//! 1. [`Runtime`] (a [`dyc_vm::DispatchHandler`]) receives the dispatch
//!    with the live values, extracts the promoted key, and consults the
//!    site's **dynamic-code cache** — the paper's double-hashing
//!    `cache-all` table or the single-slot `cache-one-unchecked` policy
//!    (§2.2.3).
//! 2. On a miss, the [`ge_exec`] executor interprets the region's flat GE
//!    program: it executes the precompiled static computations and emits
//!    specialized VM code — complete loop unrolling, static loads &
//!    calls, dynamic zero/copy propagation, dead-assignment elimination,
//!    strength reduction, and internal dynamic-to-static promotions —
//!    with **zero** run-time binding-time or liveness analysis (the
//!    [`RtStats::runtime_bta_calls`] counter proves it). The legacy
//!    online [`specializer`] is kept as the reference path
//!    (`OptConfig::staged_ge = false`); both drive the shared `emitter`
//!    and emit byte-identical code.
//! 3. The new code is installed in the running [`dyc_vm::Module`], the
//!    I-cache is flushed, and every cycle of the work is charged to the
//!    dynamic-compilation counters that feed Table 3.
//!
//! The [`concurrent`] module makes the same pipeline callable from many
//! threads: an `Arc`-shared [`concurrent::SharedRuntime`] (sharded code
//! cache, single-flight specialization, bounded eviction) hands each
//! thread its own [`concurrent::ThreadRuntime`] dispatch handler.

#![deny(missing_docs)]

pub mod artifact;
pub mod cache;
pub mod concurrent;
pub mod costs;
pub(crate) mod emitter;
pub mod ge_exec;
pub mod native;
pub mod policy;
pub mod runtime;
pub mod sink;
pub mod specializer;
pub mod stats;

pub use artifact::{CacheBundle, CodeArtifact, ARTIFACT_VERSION};
pub use cache::{CacheEntry, DoubleHashCache, Probed};
pub use concurrent::{
    ConcSnapshot, MissPolicy, ShardMeter, SharedOptions, SharedRuntime, ThreadRuntime,
};
pub use costs::DynCosts;
pub use ge_exec::GeExecutor;
pub use native::{lower_func, NativeArtifact, NativeDispatch, NativeEngine};
pub use policy::{PolicyDecision, PolicyEngine, PolicyParams};
pub use runtime::{Runtime, Site, Store};
pub use sink::{fnv1a, CodeSink, FnvBuild, InstallSink, NativeSink, RecordingSink, VmSink};
pub use stats::RtStats;
