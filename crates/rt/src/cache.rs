//! The dynamic-code cache.
//!
//! DyC's default `cache-all` policy "maintains a cache at each of these
//! points, implemented using double hashing" (§2.2.3, citing Cormen et
//! al.). The cache maps the values of the static variables at a promotion
//! point to the code specialized for those values. We implement the same
//! open-addressing double-hash table and meter its probe counts so the
//! dispatch-cost analysis of §4.4.3 (~90 cycles per hashed dispatch,
//! rising to ~150 under collisions as in mipsi) can be reproduced.

use dyc_vm::FuncId;

/// Result of a metered lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probed<T> {
    /// The value found, if any.
    pub value: Option<T>,
    /// Number of slots inspected.
    pub probes: u32,
}

/// An open-addressing hash table with double hashing, keyed by the values
/// of the static variables at a promotion point.
#[derive(Debug, Clone)]
pub struct DoubleHashCache {
    slots: Vec<Option<(Vec<u64>, FuncId)>>,
    len: usize,
    /// Total probes across all lookups (for dispatch-cost reporting).
    pub total_probes: u64,
    /// Total lookups.
    pub lookups: u64,
}

impl DoubleHashCache {
    /// An empty cache with a small initial capacity.
    pub fn new() -> DoubleHashCache {
        DoubleHashCache {
            slots: vec![None; 16],
            len: 0,
            total_probes: 0,
            lookups: 0,
        }
    }

    /// Number of cached specializations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn h1(key: &[u64], m: usize) -> usize {
        // FNV-style fold of the key words.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in key {
            h ^= *w;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h as usize) % m
    }

    fn h2(key: &[u64], m: usize) -> usize {
        // Second hash must be odd so it is coprime with the power-of-two
        // table size (guarantees a full probe cycle).
        let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
        for w in key {
            h = h.rotate_left(13) ^ w.wrapping_mul(0xff51_afd7_ed55_8ccd);
        }
        (((h as usize) | 1) % m) | 1
    }

    /// Look up `key`, metering probes.
    pub fn lookup(&mut self, key: &[u64]) -> Probed<FuncId> {
        self.lookups += 1;
        let m = self.slots.len();
        let start = Self::h1(key, m);
        let step = Self::h2(key, m);
        let mut idx = start;
        let mut probes = 0;
        loop {
            probes += 1;
            match &self.slots[idx] {
                None => {
                    self.total_probes += u64::from(probes);
                    return Probed {
                        value: None,
                        probes,
                    };
                }
                Some((k, v)) if k.as_slice() == key => {
                    self.total_probes += u64::from(probes);
                    return Probed {
                        value: Some(*v),
                        probes,
                    };
                }
                Some(_) => {
                    idx = (idx + step) % m;
                    if probes as usize > m {
                        // Table full of other keys; treat as a miss.
                        self.total_probes += u64::from(probes);
                        return Probed {
                            value: None,
                            probes,
                        };
                    }
                }
            }
        }
    }

    /// Insert (or overwrite) a specialization for `key`.
    pub fn insert(&mut self, key: Vec<u64>, value: FuncId) {
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let m = self.slots.len();
        let start = Self::h1(&key, m);
        let step = Self::h2(&key, m);
        let mut idx = start;
        loop {
            match &self.slots[idx] {
                None => {
                    self.slots[idx] = Some((key, value));
                    self.len += 1;
                    return;
                }
                Some((k, _)) if *k == key => {
                    self.slots[idx] = Some((key, value));
                    return;
                }
                Some(_) => idx = (idx + step) % m,
            }
        }
    }

    fn grow(&mut self) {
        let new_size = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![None; new_size]);
        self.len = 0;
        for e in old.into_iter().flatten() {
            let (k, v) = e;
            self.insert(k, v);
        }
    }

    /// Mean probes per lookup so far (0 if no lookups).
    pub fn mean_probes(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.total_probes as f64 / self.lookups as f64
        }
    }
}

impl Default for DoubleHashCache {
    fn default() -> Self {
        DoubleHashCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = DoubleHashCache::new();
        let key = vec![1, 2, 3];
        assert!(c.lookup(&key).value.is_none());
        c.insert(key.clone(), FuncId(7));
        assert_eq!(c.lookup(&key).value, Some(FuncId(7)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide_logically() {
        let mut c = DoubleHashCache::new();
        for i in 0..100u64 {
            c.insert(vec![i, i * 31], FuncId(i as u32));
        }
        for i in 0..100u64 {
            assert_eq!(
                c.lookup(&[i, i * 31]).value,
                Some(FuncId(i as u32)),
                "key {i}"
            );
        }
        assert_eq!(c.len(), 100);
    }

    #[test]
    fn overwrite_same_key() {
        let mut c = DoubleHashCache::new();
        c.insert(vec![9], FuncId(1));
        c.insert(vec![9], FuncId(2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(&[9]).value, Some(FuncId(2)));
    }

    #[test]
    fn probes_are_metered() {
        let mut c = DoubleHashCache::new();
        c.insert(vec![1], FuncId(0));
        let p = c.lookup(&[1]);
        assert!(p.probes >= 1);
        assert!(c.mean_probes() >= 1.0);
        assert_eq!(c.lookups, 1);
    }

    #[test]
    fn empty_key_is_a_valid_key() {
        let mut c = DoubleHashCache::new();
        c.insert(vec![], FuncId(3));
        assert_eq!(c.lookup(&[]).value, Some(FuncId(3)));
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut c = DoubleHashCache::new();
        for i in 0..1000u64 {
            c.insert(vec![i], FuncId(i as u32));
        }
        assert_eq!(c.len(), 1000);
        assert_eq!(c.lookup(&[999]).value, Some(FuncId(999)));
    }
}
