//! The dynamic-code cache.
//!
//! DyC's default `cache-all` policy "maintains a cache at each of these
//! points, implemented using double hashing" (§2.2.3, citing Cormen et
//! al.). The cache maps the values of the static variables at a promotion
//! point to the code specialized for those values. We implement the same
//! open-addressing double-hash table and meter its probe counts so the
//! dispatch-cost analysis of §4.4.3 (~90 cycles per hashed dispatch,
//! rising to ~150 under collisions as in mipsi) can be reproduced.

use dyc_vm::FuncId;

/// Result of a metered lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probed<T> {
    /// The value found, if any.
    pub value: Option<T>,
    /// Number of slots inspected.
    pub probes: u32,
}

/// Result of an entry-style lookup: a hit, or a reserved vacant slot the
/// caller fills after specializing (one hash for the miss+insert pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEntry {
    /// The key is cached.
    Hit {
        /// The cached specialization.
        value: FuncId,
        /// Slots inspected.
        probes: u32,
    },
    /// The key is absent; `slot` is where it belongs.
    Vacant {
        /// Slot index to pass to [`DoubleHashCache::fill`].
        slot: usize,
        /// Slots inspected.
        probes: u32,
    },
}

/// An open-addressing hash table with double hashing, keyed by the values
/// of the static variables at a promotion point.
#[derive(Debug, Clone)]
pub struct DoubleHashCache {
    slots: Vec<Option<(Vec<u64>, FuncId)>>,
    len: usize,
    /// Total probes across all lookups (for dispatch-cost reporting).
    pub total_probes: u64,
    /// Total lookups.
    pub lookups: u64,
}

impl DoubleHashCache {
    /// An empty cache with a small initial capacity.
    pub fn new() -> DoubleHashCache {
        DoubleHashCache {
            slots: vec![None; 16],
            len: 0,
            total_probes: 0,
            lookups: 0,
        }
    }

    /// Number of cached specializations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn h1(key: &[u64], m: usize) -> usize {
        // FNV-style fold of the key words.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in key {
            h ^= *w;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h as usize) % m
    }

    fn h2(key: &[u64], m: usize) -> usize {
        // Second hash must be odd so it is coprime with the power-of-two
        // table size (guarantees a full probe cycle).
        let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
        for w in key {
            h = h.rotate_left(13) ^ w.wrapping_mul(0xff51_afd7_ed55_8ccd);
        }
        // `m` is always a power of two, so `(h % m) | 1` keeps the step
        // odd without changing which residue class is probed.
        ((h as usize) % m) | 1
    }

    /// Look up `key`, metering probes.
    pub fn lookup(&mut self, key: &[u64]) -> Probed<FuncId> {
        self.lookups += 1;
        let m = self.slots.len();
        let start = Self::h1(key, m);
        let step = Self::h2(key, m);
        let mut idx = start;
        let mut probes = 0;
        loop {
            probes += 1;
            match &self.slots[idx] {
                None => {
                    self.total_probes += u64::from(probes);
                    return Probed {
                        value: None,
                        probes,
                    };
                }
                Some((k, v)) if k.as_slice() == key => {
                    self.total_probes += u64::from(probes);
                    return Probed {
                        value: Some(*v),
                        probes,
                    };
                }
                Some(_) => {
                    idx = (idx + step) % m;
                    if probes as usize > m {
                        // Table full of other keys; treat as a miss.
                        self.total_probes += u64::from(probes);
                        return Probed {
                            value: None,
                            probes,
                        };
                    }
                }
            }
        }
    }

    /// Entry-style lookup: find `key` or reserve the slot where it would
    /// be inserted, hashing the key once. A dispatch miss followed by
    /// specialization calls [`DoubleHashCache::fill`] with the returned
    /// slot instead of re-hashing through [`DoubleHashCache::insert`].
    ///
    /// The table is grown *before* probing when the next insert would
    /// push the load factor over 0.5, so a reserved slot stays valid
    /// while the caller specializes.
    pub fn lookup_or_reserve(&mut self, key: &[u64]) -> CacheEntry {
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        self.lookups += 1;
        let m = self.slots.len();
        let start = Self::h1(key, m);
        let step = Self::h2(key, m);
        let mut idx = start;
        let mut probes = 0;
        loop {
            probes += 1;
            match &self.slots[idx] {
                None => {
                    self.total_probes += u64::from(probes);
                    return CacheEntry::Vacant { slot: idx, probes };
                }
                Some((k, v)) if k.as_slice() == key => {
                    self.total_probes += u64::from(probes);
                    return CacheEntry::Hit { value: *v, probes };
                }
                Some(_) => idx = (idx + step) % m,
            }
        }
    }

    /// Fill a slot reserved by [`DoubleHashCache::lookup_or_reserve`].
    pub fn fill(&mut self, slot: usize, key: Vec<u64>, value: FuncId) {
        debug_assert!(self.slots[slot].is_none(), "slot already filled");
        self.slots[slot] = Some((key, value));
        self.len += 1;
    }

    /// Insert (or overwrite) a specialization for `key`.
    pub fn insert(&mut self, key: Vec<u64>, value: FuncId) {
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let m = self.slots.len();
        let start = Self::h1(&key, m);
        let step = Self::h2(&key, m);
        let mut idx = start;
        loop {
            match &self.slots[idx] {
                None => {
                    self.slots[idx] = Some((key, value));
                    self.len += 1;
                    return;
                }
                Some((k, _)) if *k == key => {
                    self.slots[idx] = Some((key, value));
                    return;
                }
                Some(_) => idx = (idx + step) % m,
            }
        }
    }

    fn grow(&mut self) {
        let new_size = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![None; new_size]);
        self.len = 0;
        for e in old.into_iter().flatten() {
            let (k, v) = e;
            self.insert(k, v);
        }
    }

    /// Mean probes per lookup so far (0 if no lookups).
    pub fn mean_probes(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.total_probes as f64 / self.lookups as f64
        }
    }
}

impl Default for DoubleHashCache {
    fn default() -> Self {
        DoubleHashCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = DoubleHashCache::new();
        let key = vec![1, 2, 3];
        assert!(c.lookup(&key).value.is_none());
        c.insert(key.clone(), FuncId(7));
        assert_eq!(c.lookup(&key).value, Some(FuncId(7)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide_logically() {
        let mut c = DoubleHashCache::new();
        for i in 0..100u64 {
            c.insert(vec![i, i * 31], FuncId(i as u32));
        }
        for i in 0..100u64 {
            assert_eq!(
                c.lookup(&[i, i * 31]).value,
                Some(FuncId(i as u32)),
                "key {i}"
            );
        }
        assert_eq!(c.len(), 100);
    }

    #[test]
    fn overwrite_same_key() {
        let mut c = DoubleHashCache::new();
        c.insert(vec![9], FuncId(1));
        c.insert(vec![9], FuncId(2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(&[9]).value, Some(FuncId(2)));
    }

    #[test]
    fn probes_are_metered() {
        let mut c = DoubleHashCache::new();
        c.insert(vec![1], FuncId(0));
        let p = c.lookup(&[1]);
        assert!(p.probes >= 1);
        assert!(c.mean_probes() >= 1.0);
        assert_eq!(c.lookups, 1);
    }

    #[test]
    fn empty_key_is_a_valid_key() {
        let mut c = DoubleHashCache::new();
        c.insert(vec![], FuncId(3));
        assert_eq!(c.lookup(&[]).value, Some(FuncId(3)));
    }

    #[test]
    fn grow_preserves_every_entry() {
        let mut c = DoubleHashCache::new();
        // Enough inserts to force several doublings from the initial 16.
        for i in 0..500u64 {
            c.insert(vec![i, !i], FuncId(i as u32));
        }
        assert!(c.slots.len() >= 1024, "table did not grow");
        assert_eq!(c.len(), 500);
        for i in 0..500u64 {
            assert_eq!(c.lookup(&[i, !i]).value, Some(FuncId(i as u32)), "key {i}");
        }
    }

    #[test]
    fn full_table_lookup_of_absent_key_terminates() {
        // Build a pathologically full table directly (insert() would have
        // grown it): every slot occupied by some other key. The lookup
        // must detect the full cycle via the probes > m guard and report
        // a miss instead of spinning.
        let mut c = DoubleHashCache::new();
        let m = c.slots.len();
        for (i, s) in c.slots.iter_mut().enumerate() {
            *s = Some((vec![i as u64 + 1000], FuncId(i as u32)));
        }
        c.len = m;
        let p = c.lookup(&[7]);
        assert_eq!(p.value, None);
        assert!(p.probes as usize > m, "miss path should exhaust the table");
    }

    #[test]
    fn h2_step_is_odd_for_any_key() {
        for key in [vec![], vec![0u64], vec![1, 2, 3], vec![u64::MAX]] {
            for m in [16usize, 64, 1024] {
                assert_eq!(DoubleHashCache::h2(&key, m) % 2, 1);
            }
        }
    }

    #[test]
    fn lookup_or_reserve_hits_and_fills() {
        let mut c = DoubleHashCache::new();
        let key = vec![4u64, 2];
        let slot = match c.lookup_or_reserve(&key) {
            CacheEntry::Vacant { slot, probes } => {
                assert!(probes >= 1);
                slot
            }
            CacheEntry::Hit { .. } => panic!("empty cache cannot hit"),
        };
        c.fill(slot, key.clone(), FuncId(9));
        assert_eq!(c.len(), 1);
        match c.lookup_or_reserve(&key) {
            CacheEntry::Hit { value, .. } => assert_eq!(value, FuncId(9)),
            CacheEntry::Vacant { .. } => panic!("filled key must hit"),
        }
        assert_eq!(c.lookup(&key).value, Some(FuncId(9)));
    }

    #[test]
    fn lookup_or_reserve_grows_before_reserving() {
        let mut c = DoubleHashCache::new();
        for i in 0..1000u64 {
            match c.lookup_or_reserve(&[i]) {
                CacheEntry::Vacant { slot, .. } => c.fill(slot, vec![i], FuncId(i as u32)),
                CacheEntry::Hit { .. } => panic!("fresh key hit"),
            }
        }
        assert_eq!(c.len(), 1000);
        // Load factor stays at or under one half, so probing always
        // terminates at an empty slot.
        assert!(c.slots.len() >= 2 * c.len());
        for i in 0..1000u64 {
            assert_eq!(c.lookup(&[i]).value, Some(FuncId(i as u32)), "key {i}");
        }
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut c = DoubleHashCache::new();
        for i in 0..1000u64 {
            c.insert(vec![i], FuncId(i as u32));
        }
        assert_eq!(c.len(), 1000);
        assert_eq!(c.lookup(&[999]).value, Some(FuncId(999)));
    }
}
