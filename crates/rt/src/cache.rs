//! The dynamic-code cache.
//!
//! DyC's default `cache-all` policy "maintains a cache at each of these
//! points, implemented using double hashing" (§2.2.3, citing Cormen et
//! al.). The cache maps the values of the static variables at a promotion
//! point to the code specialized for those values. We implement the same
//! open-addressing double-hash table and meter its probe counts so the
//! dispatch-cost analysis of §4.4.3 (~90 cycles per hashed dispatch,
//! rising to ~150 under collisions as in mipsi) can be reproduced.
//!
//! The table is generic over its value type: single-threaded dispatch
//! stores [`FuncId`]s directly, while the sharded concurrent cache
//! ([`crate::concurrent`]) stores registry handles. Deletion (needed by
//! the bounded `cache_all(k)` eviction policy) uses tombstones so probe
//! chains through deleted slots stay intact.

use dyc_vm::FuncId;

/// Result of a metered lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probed<T> {
    /// The value found, if any.
    pub value: Option<T>,
    /// Number of slots inspected.
    pub probes: u32,
}

/// Result of an entry-style lookup: a hit, or a reserved vacant slot the
/// caller fills after specializing (one hash for the miss+insert pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEntry<V = FuncId> {
    /// The key is cached.
    Hit {
        /// The cached specialization.
        value: V,
        /// Slots inspected.
        probes: u32,
    },
    /// The key is absent; `slot` is where it belongs.
    Vacant {
        /// Slot index to pass to [`DoubleHashCache::fill`].
        slot: usize,
        /// Slots inspected.
        probes: u32,
    },
}

/// One open-addressed slot. `Tomb` marks a deleted entry: probes continue
/// through it (the chain may have been built around the dead key) but
/// inserts may reuse it.
#[derive(Debug, Clone, PartialEq)]
enum Slot<V> {
    Empty,
    Tomb,
    Full(Vec<u64>, V),
}

/// An open-addressing hash table with double hashing, keyed by the values
/// of the static variables at a promotion point.
///
/// # Examples
///
/// ```
/// use dyc_rt::DoubleHashCache;
/// use dyc_vm::FuncId;
///
/// let mut c = DoubleHashCache::new();
/// assert_eq!(c.lookup(&[42]).value, None);          // miss
/// c.insert(vec![42], FuncId(7));
/// assert_eq!(c.lookup(&[42]).value, Some(FuncId(7))); // hit
/// assert_eq!(c.remove(&[42]), Some(FuncId(7)));     // evict
/// assert_eq!(c.lookup(&[42]).value, None);
/// // Probe metering feeds the §4.4.3 dispatch-cost analysis.
/// assert_eq!(c.lookups, 3);
/// assert!(c.mean_probes() >= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct DoubleHashCache<V = FuncId> {
    slots: Vec<Slot<V>>,
    len: usize,
    /// Tombstones currently in the table (count toward the load factor so
    /// probe chains stay short even under heavy eviction churn).
    tombs: usize,
    /// Total probes across all lookups (for dispatch-cost reporting).
    pub total_probes: u64,
    /// Total lookups.
    pub lookups: u64,
}

impl<V: Copy> DoubleHashCache<V> {
    /// An empty cache with a small initial capacity.
    pub fn new() -> DoubleHashCache<V> {
        DoubleHashCache {
            slots: (0..16).map(|_| Slot::Empty).collect(),
            len: 0,
            tombs: 0,
            total_probes: 0,
            lookups: 0,
        }
    }

    /// Number of cached specializations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot-table size (grows by doubling on rehash).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn h1(key: &[u64], m: usize) -> usize {
        // FNV-style fold of the key words.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in key {
            h ^= *w;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h as usize) % m
    }

    fn h2(key: &[u64], m: usize) -> usize {
        // Second hash must be odd so it is coprime with the power-of-two
        // table size (guarantees a full probe cycle).
        let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
        for w in key {
            h = h.rotate_left(13) ^ w.wrapping_mul(0xff51_afd7_ed55_8ccd);
        }
        // `m` is always a power of two, so `(h % m) | 1` keeps the step
        // odd without changing which residue class is probed.
        ((h as usize) % m) | 1
    }

    /// Probe for `key` without touching the meters — the shared-cache hit
    /// path calls this under a read lock and accumulates the probe count
    /// into per-shard atomics instead.
    pub fn probe(&self, key: &[u64]) -> Probed<V> {
        let m = self.slots.len();
        let start = Self::h1(key, m);
        let step = Self::h2(key, m);
        let mut idx = start;
        let mut probes = 0;
        loop {
            probes += 1;
            match &self.slots[idx] {
                Slot::Empty => {
                    return Probed {
                        value: None,
                        probes,
                    }
                }
                Slot::Full(k, v) if k.as_slice() == key => {
                    return Probed {
                        value: Some(*v),
                        probes,
                    };
                }
                Slot::Full(..) | Slot::Tomb => {
                    idx = (idx + step) % m;
                    if probes as usize > m {
                        // Table full of other keys; treat as a miss.
                        return Probed {
                            value: None,
                            probes,
                        };
                    }
                }
            }
        }
    }

    /// Look up `key`, metering probes.
    pub fn lookup(&mut self, key: &[u64]) -> Probed<V> {
        let p = self.probe(key);
        self.lookups += 1;
        self.total_probes += u64::from(p.probes);
        p
    }

    /// Entry-style lookup: find `key` or reserve the slot where it would
    /// be inserted, hashing the key once. A dispatch miss followed by
    /// specialization calls [`DoubleHashCache::fill`] with the returned
    /// slot instead of re-hashing through [`DoubleHashCache::insert`].
    ///
    /// The table is grown *before* probing when the next insert would
    /// push the load factor over 0.5, so a reserved slot stays valid
    /// while the caller specializes.
    pub fn lookup_or_reserve(&mut self, key: &[u64]) -> CacheEntry<V> {
        if (self.len + self.tombs + 1) * 2 > self.slots.len() {
            self.grow();
        }
        self.lookups += 1;
        let m = self.slots.len();
        let start = Self::h1(key, m);
        let step = Self::h2(key, m);
        let mut idx = start;
        let mut probes = 0;
        // First tombstone on the probe path: reused for the insert (the
        // chain up to here already skips it, so lookups stay correct).
        let mut reuse: Option<usize> = None;
        loop {
            probes += 1;
            match &self.slots[idx] {
                Slot::Empty => {
                    self.total_probes += u64::from(probes);
                    return CacheEntry::Vacant {
                        slot: reuse.unwrap_or(idx),
                        probes,
                    };
                }
                Slot::Full(k, v) if k.as_slice() == key => {
                    self.total_probes += u64::from(probes);
                    return CacheEntry::Hit { value: *v, probes };
                }
                Slot::Tomb => {
                    reuse.get_or_insert(idx);
                    idx = (idx + step) % m;
                }
                Slot::Full(..) => idx = (idx + step) % m,
            }
        }
    }

    /// Fill a slot reserved by [`DoubleHashCache::lookup_or_reserve`].
    pub fn fill(&mut self, slot: usize, key: Vec<u64>, value: V) {
        debug_assert!(
            !matches!(self.slots[slot], Slot::Full(..)),
            "slot already filled"
        );
        if matches!(self.slots[slot], Slot::Tomb) {
            self.tombs -= 1;
        }
        self.slots[slot] = Slot::Full(key, value);
        self.len += 1;
    }

    /// Insert (or overwrite) a specialization for `key`.
    pub fn insert(&mut self, key: Vec<u64>, value: V) {
        if (self.len + self.tombs + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let m = self.slots.len();
        let start = Self::h1(&key, m);
        let step = Self::h2(&key, m);
        let mut idx = start;
        let mut reuse: Option<usize> = None;
        loop {
            match &self.slots[idx] {
                Slot::Empty => {
                    let at = reuse.unwrap_or(idx);
                    if matches!(self.slots[at], Slot::Tomb) {
                        self.tombs -= 1;
                    }
                    self.slots[at] = Slot::Full(key, value);
                    self.len += 1;
                    return;
                }
                Slot::Full(k, _) if *k == key => {
                    self.slots[idx] = Slot::Full(key, value);
                    return;
                }
                Slot::Tomb => {
                    reuse.get_or_insert(idx);
                    idx = (idx + step) % m;
                }
                Slot::Full(..) => idx = (idx + step) % m,
            }
        }
    }

    /// Remove `key`, returning its cached value. The slot becomes a
    /// tombstone (probe chains through it are preserved); tombstones are
    /// purged wholesale on the next rehash.
    pub fn remove(&mut self, key: &[u64]) -> Option<V> {
        let m = self.slots.len();
        let start = Self::h1(key, m);
        let step = Self::h2(key, m);
        let mut idx = start;
        let mut probes = 0usize;
        loop {
            probes += 1;
            match &self.slots[idx] {
                Slot::Empty => return None,
                Slot::Full(k, v) if k.as_slice() == key => {
                    let v = *v;
                    self.slots[idx] = Slot::Tomb;
                    self.len -= 1;
                    self.tombs += 1;
                    return Some(v);
                }
                Slot::Full(..) | Slot::Tomb => {
                    idx = (idx + step) % m;
                    if probes > m {
                        return None;
                    }
                }
            }
        }
    }

    /// Drop every cached entry (capacity is kept). The probe meters are
    /// deliberately **not** touched: `total_probes`/`lookups` feed the
    /// cumulative §4.4.3 dispatch-cost analysis and survive invalidation.
    /// Call [`DoubleHashCache::reset_counters`] to zero them explicitly.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = Slot::Empty;
        }
        self.len = 0;
        self.tombs = 0;
    }

    /// Explicitly zero the probe meters (`total_probes` and `lookups`).
    pub fn reset_counters(&mut self) {
        self.total_probes = 0;
        self.lookups = 0;
    }

    /// Iterate over the cached `(key, value)` pairs, in table order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u64], V)> + '_ {
        self.slots.iter().filter_map(|s| match s {
            Slot::Full(k, v) => Some((k.as_slice(), *v)),
            _ => None,
        })
    }

    fn grow(&mut self) {
        // Rehashing drops tombstones; only double if the *live* entries
        // actually crowd the table (eviction churn alone just compacts).
        let new_size = if (self.len + 1) * 2 > self.slots.len() {
            self.slots.len() * 2
        } else {
            self.slots.len()
        };
        let old = std::mem::replace(
            &mut self.slots,
            (0..new_size).map(|_| Slot::Empty).collect(),
        );
        self.len = 0;
        self.tombs = 0;
        for e in old {
            if let Slot::Full(k, v) = e {
                self.insert(k, v);
            }
        }
    }

    /// Mean probes per lookup so far (0 if no lookups).
    pub fn mean_probes(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.total_probes as f64 / self.lookups as f64
        }
    }
}

impl<V: Copy> Default for DoubleHashCache<V> {
    fn default() -> Self {
        DoubleHashCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = DoubleHashCache::new();
        let key = vec![1, 2, 3];
        assert!(c.lookup(&key).value.is_none());
        c.insert(key.clone(), FuncId(7));
        assert_eq!(c.lookup(&key).value, Some(FuncId(7)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn default_is_an_empty_cache() {
        let mut c: DoubleHashCache = DoubleHashCache::default();
        assert!(c.is_empty());
        assert_eq!(c.lookups, 0);
        assert_eq!(c.total_probes, 0);
        assert_eq!(c.lookup(&[1]).value, None);
    }

    #[test]
    fn distinct_keys_do_not_collide_logically() {
        let mut c = DoubleHashCache::new();
        for i in 0..100u64 {
            c.insert(vec![i, i * 31], FuncId(i as u32));
        }
        for i in 0..100u64 {
            assert_eq!(
                c.lookup(&[i, i * 31]).value,
                Some(FuncId(i as u32)),
                "key {i}"
            );
        }
        assert_eq!(c.len(), 100);
    }

    #[test]
    fn overwrite_same_key() {
        let mut c = DoubleHashCache::new();
        c.insert(vec![9], FuncId(1));
        c.insert(vec![9], FuncId(2));
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(&[9]).value, Some(FuncId(2)));
    }

    #[test]
    fn probes_are_metered() {
        let mut c = DoubleHashCache::new();
        c.insert(vec![1], FuncId(0));
        let p = c.lookup(&[1]);
        assert!(p.probes >= 1);
        assert!(c.mean_probes() >= 1.0);
        assert_eq!(c.lookups, 1);
    }

    #[test]
    fn probe_is_unmetered() {
        let mut c = DoubleHashCache::new();
        c.insert(vec![5], FuncId(1));
        let before = (c.lookups, c.total_probes);
        assert_eq!(c.probe(&[5]).value, Some(FuncId(1)));
        assert_eq!((c.lookups, c.total_probes), before);
    }

    #[test]
    fn empty_key_is_a_valid_key() {
        let mut c = DoubleHashCache::new();
        c.insert(vec![], FuncId(3));
        assert_eq!(c.lookup(&[]).value, Some(FuncId(3)));
    }

    #[test]
    fn grow_preserves_every_entry() {
        let mut c = DoubleHashCache::new();
        // Enough inserts to force several doublings from the initial 16.
        for i in 0..500u64 {
            c.insert(vec![i, !i], FuncId(i as u32));
        }
        assert!(c.slots.len() >= 1024, "table did not grow");
        assert_eq!(c.len(), 500);
        for i in 0..500u64 {
            assert_eq!(c.lookup(&[i, !i]).value, Some(FuncId(i as u32)), "key {i}");
        }
    }

    #[test]
    fn full_table_lookup_of_absent_key_terminates() {
        // Build a pathologically full table directly (insert() would have
        // grown it): every slot occupied by some other key. The lookup
        // must detect the full cycle via the probes > m guard and report
        // a miss instead of spinning.
        let mut c = DoubleHashCache::new();
        let m = c.slots.len();
        for (i, s) in c.slots.iter_mut().enumerate() {
            *s = Slot::Full(vec![i as u64 + 1000], FuncId(i as u32));
        }
        c.len = m;
        let p = c.lookup(&[7]);
        assert_eq!(p.value, None);
        assert!(p.probes as usize > m, "miss path should exhaust the table");
    }

    #[test]
    fn h2_step_is_odd_for_any_key() {
        for key in [vec![], vec![0u64], vec![1, 2, 3], vec![u64::MAX]] {
            for m in [16usize, 64, 1024] {
                assert_eq!(DoubleHashCache::<FuncId>::h2(&key, m) % 2, 1);
            }
        }
    }

    #[test]
    fn lookup_or_reserve_hits_and_fills() {
        let mut c = DoubleHashCache::new();
        let key = vec![4u64, 2];
        let slot = match c.lookup_or_reserve(&key) {
            CacheEntry::Vacant { slot, probes } => {
                assert!(probes >= 1);
                slot
            }
            CacheEntry::Hit { .. } => panic!("empty cache cannot hit"),
        };
        c.fill(slot, key.clone(), FuncId(9));
        assert_eq!(c.len(), 1);
        match c.lookup_or_reserve(&key) {
            CacheEntry::Hit { value, .. } => assert_eq!(value, FuncId(9)),
            CacheEntry::Vacant { .. } => panic!("filled key must hit"),
        }
        assert_eq!(c.lookup(&key).value, Some(FuncId(9)));
    }

    #[test]
    fn lookup_or_reserve_grows_before_reserving() {
        let mut c = DoubleHashCache::new();
        for i in 0..1000u64 {
            match c.lookup_or_reserve(&[i]) {
                CacheEntry::Vacant { slot, .. } => c.fill(slot, vec![i], FuncId(i as u32)),
                CacheEntry::Hit { .. } => panic!("fresh key hit"),
            }
        }
        assert_eq!(c.len(), 1000);
        // Load factor stays at or under one half, so probing always
        // terminates at an empty slot.
        assert!(c.slots.len() >= 2 * c.len());
        for i in 0..1000u64 {
            assert_eq!(c.lookup(&[i]).value, Some(FuncId(i as u32)), "key {i}");
        }
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut c = DoubleHashCache::new();
        for i in 0..1000u64 {
            c.insert(vec![i], FuncId(i as u32));
        }
        assert_eq!(c.len(), 1000);
        assert_eq!(c.lookup(&[999]).value, Some(FuncId(999)));
    }

    #[test]
    fn remove_leaves_probe_chains_intact() {
        // Insert enough keys that probe chains form, delete half, and
        // check every survivor is still reachable through the tombstones.
        let mut c = DoubleHashCache::new();
        for i in 0..200u64 {
            c.insert(vec![i], FuncId(i as u32));
        }
        for i in (0..200u64).step_by(2) {
            assert_eq!(c.remove(&[i]), Some(FuncId(i as u32)), "remove {i}");
        }
        assert_eq!(c.len(), 100);
        for i in 0..200u64 {
            let want = (i % 2 == 1).then_some(FuncId(i as u32));
            assert_eq!(c.lookup(&[i]).value, want, "key {i}");
        }
        assert_eq!(c.remove(&[4]), None, "double remove");
    }

    #[test]
    fn tombstones_are_reused_and_purged() {
        let mut c = DoubleHashCache::new();
        // Churn a bounded working set: the table must not grow without
        // bound under insert/remove cycles (tombstones get compacted).
        for round in 0..200u64 {
            c.insert(vec![round], FuncId(round as u32));
            if round >= 4 {
                assert_eq!(c.remove(&[round - 4]), Some(FuncId((round - 4) as u32)));
            }
        }
        assert_eq!(c.len(), 4);
        assert!(
            c.slots.len() <= 64,
            "bounded churn must not balloon the table (got {})",
            c.slots.len()
        );
    }

    #[test]
    fn colliding_insert_reuses_the_tombstone_without_growing() {
        let mut c = DoubleHashCache::new();
        let m = c.capacity();
        let first = vec![1u64];
        // Brute-force a *different* key whose h1 lands on the same slot,
        // so its probe path starts exactly where the removed entry was.
        let h = DoubleHashCache::<FuncId>::h1(&first, m);
        let collider = (2u64..)
            .map(|w| vec![w])
            .find(|k| DoubleHashCache::<FuncId>::h1(k, m) == h)
            .expect("a 16-slot table has colliding single-word keys");
        c.insert(first.clone(), FuncId(1));
        c.remove(&first);
        assert_eq!((c.len(), c.tombs), (0, 1));
        c.insert(collider.clone(), FuncId(2));
        assert_eq!(c.capacity(), m, "colliding insert must not grow the table");
        assert_eq!(
            (c.len(), c.tombs),
            (1, 0),
            "the tombstone slot must be reused, not accumulated"
        );
        assert!(
            matches!(&c.slots[h], Slot::Full(k, _) if *k == collider),
            "collider must occupy the removed entry's slot"
        );
        assert_eq!(c.lookup(&collider).value, Some(FuncId(2)));
        assert_eq!(c.lookup(&first).value, None);
    }

    #[test]
    fn reserve_reuses_tombstones() {
        let mut c = DoubleHashCache::new();
        c.insert(vec![1], FuncId(1));
        c.remove(&[1]);
        match c.lookup_or_reserve(&[1]) {
            CacheEntry::Vacant { slot, .. } => c.fill(slot, vec![1], FuncId(2)),
            CacheEntry::Hit { .. } => panic!("removed key must miss"),
        }
        assert_eq!(c.lookup(&[1]).value, Some(FuncId(2)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_keeps_meters_reset_counters_zeroes_them() {
        let mut c = DoubleHashCache::new();
        c.insert(vec![1], FuncId(1));
        c.insert(vec![2], FuncId(2));
        c.lookup(&[1]);
        c.lookup(&[3]);
        let (lk, tp) = (c.lookups, c.total_probes);
        assert!(lk == 2 && tp >= 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.lookup(&[1]).value, None, "cleared entries are gone");
        // clear() preserved the cumulative meters (plus the lookup above).
        assert_eq!(c.lookups, lk + 1);
        assert!(c.total_probes > tp);
        c.reset_counters();
        assert_eq!((c.lookups, c.total_probes), (0, 0));
        assert_eq!(c.mean_probes(), 0.0);
    }

    #[test]
    fn iter_yields_every_live_entry() {
        let mut c = DoubleHashCache::new();
        for i in 0..10u64 {
            c.insert(vec![i], FuncId(i as u32));
        }
        c.remove(&[3]);
        let mut got: Vec<u64> = c.iter().map(|(k, _)| k[0]).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 4, 5, 6, 7, 8, 9]);
    }
}
