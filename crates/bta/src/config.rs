//! Per-optimization switches (the knobs of Table 5).
//!
//! The paper's §4.4 "compared our normal configuration with all
//! optimizations enabled against configurations each of which disabled one
//! optimization". Each field here corresponds to one column of Table 5.

/// When the runtime specializes a dispatched (site, key) pair.
///
/// `Always` is the paper's behavior — specialize on the first dispatch
/// miss, unconditionally — and stays the default so every existing
/// table and benchmark is reproduced byte-for-byte. `Adaptive` engages
/// the online policy engine (`dyc_rt::policy`), which counts dispatches
/// per (site, key) and defers specialization below a predicted per-site
/// break-even, executing a generic (unspecialized) continuation until
/// the key proves hot. Purely a scheduling decision: once a key *is*
/// specialized, the emitted code is byte-identical to `Always`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyMode {
    /// Specialize every (site, key) on its first dispatch (the default).
    #[default]
    Always,
    /// Defer specialization until a (site, key) crosses the predicted
    /// break-even dispatch count; run the generic continuation meanwhile.
    Adaptive,
}

/// Which of DyC's staged run-time optimizations are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// Complete (single- and multi-way) loop unrolling via polyvariant
    /// specialization at loop heads (§2.2.4). When disabled, variables
    /// assigned inside a loop are demoted to dynamic at the loop header,
    /// so the loop is emitted as a run-time loop.
    pub complete_loop_unrolling: bool,
    /// Static loads: `a@[i]` executes at dynamic compile time (§2.2.6).
    pub static_loads: bool,
    /// Honor `cache_one_unchecked` policies (§2.2.3). When disabled, every
    /// dispatch uses the safe hash-table `cache-all` policy.
    pub unchecked_dispatching: bool,
    /// Static calls: pure calls with all-static arguments execute at
    /// dynamic compile time (§2.2.6).
    pub static_calls: bool,
    /// Dynamic zero and copy propagation (§2.2.7).
    pub zero_copy_propagation: bool,
    /// Dynamic dead-assignment elimination (§2.2.7).
    pub dead_assignment_elimination: bool,
    /// Dynamic strength reduction of multiplies/divides/modulus with one
    /// static operand (§2.2.7).
    pub strength_reduction: bool,
    /// Internal dynamic-to-static promotions (`promote`/mid-region
    /// `make_static` of a dynamic value, §2.2.2).
    pub internal_promotions: bool,
    /// Program-point-specific polyvariant division (§2.2.5). When
    /// disabled, the static store is restricted to the monovariant
    /// meet-over-paths set at each block entry.
    pub polyvariant_division: bool,
    /// Run specialization through the precompiled generating-extension
    /// (GE) programs instead of the legacy online specializer. Both paths
    /// emit byte-identical code; the staged path skips all run-time
    /// binding-time classification and liveness queries. Not a Table 5
    /// column — an escape hatch for differential testing.
    pub staged_ge: bool,
    /// Fuse runs of shape-stable `EmitHole` ops in GE programs into
    /// contiguous copy-and-patch templates (prebuilt instructions plus a
    /// hole-descriptor side table). Purely a staging of the emitter: the
    /// fused path emits byte-identical code. Not a Table 5 column — an
    /// escape hatch for differential testing against the unfused GE path.
    pub template_fusion: bool,
    /// Record cycle-stamped trace events (dispatch, specialization,
    /// templates, cache churn) into the runtime's per-thread ring
    /// buffer. Purely observational: enabling it never changes results,
    /// emitted code, or `RtStats`. Not a Table 5 column — off by
    /// default, including in [`OptConfig::all`].
    pub trace: bool,
    /// Execute specializations through the native x86-64 copy-and-patch
    /// backend where the host supports it: specialized code is lowered to
    /// machine code at emit time and dispatch invokes the native entry
    /// directly, falling back to VM interpretation for unsupported
    /// constructs or platforms. Results, outputs, and memory states are
    /// identical to the VM; only wall-clock time changes (modeled-cycle
    /// accounting still reflects the VM pipeline). Not a Table 5 column —
    /// off by default, including in [`OptConfig::all`].
    pub native: bool,
    /// When to specialize a dispatched (site, key): unconditionally on
    /// first miss ([`PolicyMode::Always`], the default, the paper's
    /// behavior) or adaptively once the key crosses a per-site
    /// break-even dispatch count ([`PolicyMode::Adaptive`]). Affects
    /// *when* code is generated, never *what* code — specialized bytes
    /// are identical in both modes. Not a Table 5 column.
    pub policy: PolicyMode,
}

impl OptConfig {
    /// Everything on — the paper's "normal configuration".
    pub fn all() -> OptConfig {
        OptConfig {
            complete_loop_unrolling: true,
            static_loads: true,
            unchecked_dispatching: true,
            static_calls: true,
            zero_copy_propagation: true,
            dead_assignment_elimination: true,
            strength_reduction: true,
            internal_promotions: true,
            polyvariant_division: true,
            staged_ge: true,
            template_fusion: true,
            trace: false,
            native: false,
            policy: PolicyMode::Always,
        }
    }

    /// Copy of this config with the given specialization policy mode.
    pub fn with_policy(mut self, policy: PolicyMode) -> OptConfig {
        self.policy = policy;
        self
    }

    /// Copy of this config with one optimization disabled, by Table 5
    /// column name. Unknown names return `None`.
    pub fn without(&self, feature: &str) -> Option<OptConfig> {
        let mut c = *self;
        match feature {
            "complete_loop_unrolling" => c.complete_loop_unrolling = false,
            "static_loads" => c.static_loads = false,
            "unchecked_dispatching" => c.unchecked_dispatching = false,
            "static_calls" => c.static_calls = false,
            "zero_copy_propagation" => c.zero_copy_propagation = false,
            "dead_assignment_elimination" => c.dead_assignment_elimination = false,
            "strength_reduction" => c.strength_reduction = false,
            "internal_promotions" => c.internal_promotions = false,
            "polyvariant_division" => c.polyvariant_division = false,
            "staged_ge" => c.staged_ge = false,
            "template_fusion" => c.template_fusion = false,
            "native" => c.native = false,
            _ => return None,
        }
        Some(c)
    }

    /// The Table 5 column names, in the paper's order.
    pub fn feature_names() -> &'static [&'static str] {
        &[
            "complete_loop_unrolling",
            "static_loads",
            "unchecked_dispatching",
            "static_calls",
            "zero_copy_propagation",
            "dead_assignment_elimination",
            "strength_reduction",
            "internal_promotions",
            "polyvariant_division",
        ]
    }
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_enables_everything() {
        let c = OptConfig::all();
        assert!(c.complete_loop_unrolling && c.static_loads && c.polyvariant_division);
    }

    #[test]
    fn without_flips_exactly_one() {
        let base = OptConfig::all();
        for name in OptConfig::feature_names() {
            let c = base.without(name).unwrap();
            assert_ne!(c, base, "{name} changed nothing");
            // Re-enabling by construction: flipping the same flag back
            // should restore the original.
            let diff = [
                c.complete_loop_unrolling != base.complete_loop_unrolling,
                c.static_loads != base.static_loads,
                c.unchecked_dispatching != base.unchecked_dispatching,
                c.static_calls != base.static_calls,
                c.zero_copy_propagation != base.zero_copy_propagation,
                c.dead_assignment_elimination != base.dead_assignment_elimination,
                c.strength_reduction != base.strength_reduction,
                c.internal_promotions != base.internal_promotions,
                c.polyvariant_division != base.polyvariant_division,
            ];
            assert_eq!(
                diff.iter().filter(|d| **d).count(),
                1,
                "{name} flipped != 1 flag"
            );
        }
    }

    #[test]
    fn unknown_feature_is_none() {
        assert!(OptConfig::all().without("warp_drive").is_none());
    }
}
