//! # dyc-bta — binding-time analysis
//!
//! DyC's binding-time analysis (BTA) "identifies which variables are static
//! over which paths of the procedure's control-flow graph, starting with
//! the annotations that identify static variables and ending after the last
//! use of any static value" (§2.2). It is program-point-specific and
//! flow-sensitive, with *polyvariant division* (the same point analyzed
//! under different sets of static variables) and *polyvariant
//! specialization* (multiple compiled versions per division).
//!
//! Our reproduction splits the work the same way DyC does:
//!
//! * This crate computes the **offline** results: the monovariant
//!   (meet-over-paths) static sets per block, loop-assigned variable sets
//!   (used when complete loop unrolling is disabled), region membership,
//!   and the region-entry points (`make_static` sites). It also defines the
//!   **transfer function** ([`transfer`]) that decides whether each
//!   instruction is a static or a dynamic computation — the generating
//!   extension in `dyc-rt` uses the *same* function at specialization time,
//!   so the offline plan and the online specializer can never disagree.
//! * Polyvariant division and specialization appear online: the
//!   specializer's cache key is the *(program point, live static store)*
//!   pair, so divergent divisions and divergent values both produce
//!   separate code versions, exactly the behaviors §2.2.1/§2.2.5 describe.
//!   With [`OptConfig::polyvariant_division`] disabled, the store is
//!   restricted to this crate's monovariant set at every block entry,
//!   reproducing the "least-common-denominator" analysis the paper
//!   contrasts against.
//!
//! [`OptConfig`] carries the per-optimization switches used to regenerate
//! Table 5 (each column disables exactly one entry).
//!
//! ## Example
//!
//! ```
//! use dyc_bta::{analyze, OptConfig};
//! use dyc_ir::lower::lower_program;
//! use dyc_lang::parse_program;
//!
//! let src = r#"
//!     int power(int base, int exp) {
//!         make_static(exp);
//!         int r = 1;
//!         while (exp > 0) { r = r * base; exp = exp - 1; }
//!         return r;
//!     }
//! "#;
//! let ir = lower_program(&parse_program(src).unwrap()).unwrap();
//! let bta = analyze(&ir.funcs[0], &OptConfig::all());
//! // One region entry (the make_static), and the loop is unrollable:
//! // its exit test `exp > 0` is static.
//! assert_eq!(bta.entries.len(), 1);
//! assert_eq!(bta.unrollable.len(), 1);
//! ```

pub mod analysis;
pub mod config;
pub mod transfer;

pub use analysis::{analyze, Bta, RegionEntry};
pub use config::{OptConfig, PolicyMode};
pub use transfer::{binding_with_set, inst_binding, Binding};
