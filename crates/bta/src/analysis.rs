//! The offline binding-time fixpoint.
//!
//! Computes the monovariant (meet-over-paths, intersection at merges)
//! static sets at every block entry, the per-loop assigned-variable sets
//! that drive the "without complete loop unrolling" ablation, the dynamic
//! region membership, and the region entry points.

use crate::config::OptConfig;
use crate::transfer::{inst_binding, Binding};
use dyc_ir::analysis::{natural_loops, NaturalLoop};
use dyc_ir::inst::{Inst, Term};
use dyc_ir::{BlockId, FuncIr, VReg};
use dyc_lang::Policy;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// A `make_static` site: where a dynamic region begins (or where an
/// in-region promotion adds variables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionEntry {
    /// The block containing the annotation.
    pub block: BlockId,
    /// Index of the `MakeStatic` instruction within the block.
    pub inst_idx: usize,
    /// The annotated variables with their caching policies.
    pub vars: Vec<(VReg, Policy)>,
}

/// Results of the offline binding-time analysis of one function.
#[derive(Debug, Clone)]
pub struct Bta {
    /// Monovariant static set at each block entry (intersection at merges).
    pub static_in: Vec<BTreeSet<VReg>>,
    /// For each natural-loop header: variables assigned anywhere in that
    /// loop's body. Used to demote would-be loop-induction statics when
    /// complete loop unrolling is disabled.
    pub loop_assigned: HashMap<BlockId, BTreeSet<VReg>>,
    /// Blocks whose entry static set is nonempty (the dynamic region, for
    /// reporting: Table 1's dynamic-region sizes).
    pub region_blocks: BTreeSet<BlockId>,
    /// All `make_static` sites in RPO-then-instruction order; the first is
    /// the dynamic region entry where the dispatch stub is placed.
    pub entries: Vec<RegionEntry>,
    /// The caching policy of each annotated variable (later annotations
    /// override earlier ones, matching source order).
    pub policies: HashMap<VReg, Policy>,
    /// Headers of loops that may be completely unrolled: loops with at
    /// least one *static* exit test. A loop whose every exit condition is
    /// dynamic would unroll forever (the specializer follows static
    /// control flow, and a dynamic test specializes both sides), so its
    /// loop-varying statics are demoted at the header instead — this is
    /// the generalization DyC gets from annotation-driven unrolling.
    pub unrollable: HashSet<BlockId>,
    /// Per unrollable header: the *static induction variables* (§2.1) —
    /// loop-assigned variables that transitively feed the loop's static
    /// exit tests or static branch/switch conditions. Only these drive
    /// polyvariant specialization at the header; other loop-varying
    /// statics (accumulators like a step counter under a dynamic bound)
    /// are demoted so the unrolled graph stays finite.
    pub unroll_keep: HashMap<BlockId, BTreeSet<VReg>>,
    /// Division-aware unrolling support (conditional specialization,
    /// §2.2.5): per loop header, the header-live dependency sets of each
    /// *potentially* static exit test, computed under an optimistic
    /// (any-path) analysis. At specialization time the loop unrolls for a
    /// given division iff one of these sets is entirely in that division's
    /// static store — so a `make_static` guarded by a test specializes the
    /// guarded division without the merged (monovariant) analysis vetoing
    /// it.
    pub unroll_exit_deps: HashMap<BlockId, Vec<BTreeSet<VReg>>>,
    /// The optimistic counterpart of [`Bta::unroll_keep`], used together
    /// with [`Bta::unroll_exit_deps`] by the specializer.
    pub unroll_keep_opt: HashMap<BlockId, BTreeSet<VReg>>,
}

impl Bta {
    /// The region entry (first `make_static` site), if the function has one.
    pub fn region_entry(&self) -> Option<&RegionEntry> {
        self.entries.first()
    }
}

/// Run the offline analysis.
pub fn analyze(f: &FuncIr, cfg: &OptConfig) -> Bta {
    let loops = natural_loops(f);
    // Per-loop assigned variables (syntactic).
    let mut loop_assigned: HashMap<BlockId, BTreeSet<VReg>> = HashMap::new();
    for l in &loops {
        let mut assigned = BTreeSet::new();
        for b in &l.body {
            for inst in &f.block(*b).insts {
                if let Some(d) = inst.def() {
                    assigned.insert(d);
                }
            }
        }
        loop_assigned.insert(l.header, assigned);
    }

    // Entry points and policies (syntactic scan in RPO).
    let mut entries = Vec::new();
    let mut policies = HashMap::new();
    for b in f.reverse_postorder() {
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            if let Inst::MakeStatic { vars } = inst {
                for (v, p) in vars {
                    policies.insert(*v, *p);
                }
                entries.push(RegionEntry {
                    block: b,
                    inst_idx: i,
                    vars: vars.clone(),
                });
            }
        }
    }

    // Fixpoint nested in an unrollability refinement: start assuming every
    // loop is unrollable, compute the static sets, check which loops
    // actually have a static exit test, and re-analyze with the
    // non-unrollable headers demoting — the unrollable set only shrinks,
    // so this terminates in at most #loops rounds.
    let mut unrollable: HashSet<BlockId> = if cfg.complete_loop_unrolling {
        loops.iter().map(|l| l.header).collect()
    } else {
        HashSet::new()
    };
    let mut unroll_keep: HashMap<BlockId, BTreeSet<VReg>> = loops
        .iter()
        .map(|l| (l.header, loop_assigned[&l.header].clone()))
        .collect();
    let mut static_in;
    let mut rounds = 0;
    loop {
        static_in = run_fixpoint(f, cfg, &loop_assigned, &unrollable, &unroll_keep);
        let still: HashSet<BlockId> = loops
            .iter()
            .filter(|l| unrollable.contains(&l.header) && has_static_exit(f, cfg, l, &static_in))
            .map(|l| l.header)
            .collect();
        let keep: HashMap<BlockId, BTreeSet<VReg>> = loops
            .iter()
            .map(|l| (l.header, induction_vars(f, cfg, l, &static_in)))
            .collect();
        rounds += 1;
        if (still == unrollable && keep == unroll_keep) || rounds > 10 {
            unrollable = still;
            unroll_keep = keep;
            break;
        }
        unrollable = still;
        unroll_keep = keep;
    }

    // Region = blocks whose entry set is nonempty, plus blocks containing
    // a make_static (the region begins mid-block there).
    let mut region_blocks: BTreeSet<BlockId> = (0..f.blocks.len())
        .filter(|i| !static_in[*i].is_empty())
        .map(|i| BlockId(i as u32))
        .collect();
    for e in &entries {
        region_blocks.insert(e.block);
    }

    // Division-aware unrolling candidates from the optimistic analysis.
    let opt_in = optimistic_fixpoint(f, cfg);
    let live = dyc_ir::analysis::liveness(f);
    let mut unroll_exit_deps = HashMap::new();
    let mut unroll_keep_opt = HashMap::new();
    if cfg.complete_loop_unrolling {
        for l in &loops {
            let mut deps: Vec<BTreeSet<VReg>> = Vec::new();
            for &b in &l.body {
                let term = &f.block(b).term;
                if !term.successors().iter().any(|s| !l.body.contains(s)) {
                    continue;
                }
                let mut s = opt_in[b.index()].clone();
                transfer_block(f, b, &mut s, cfg);
                let cond = match term {
                    Term::Br { cond, .. } if s.contains(cond) => *cond,
                    Term::Switch { on, .. } if s.contains(on) => *on,
                    _ => continue,
                };
                let mut set = BTreeSet::new();
                set.insert(cond);
                if !static_closure_over_body(f, cfg, l, &opt_in, &mut set) {
                    continue;
                }
                set.retain(|v| live.live_in[l.header.index()].contains(v));
                deps.push(set);
            }
            if !deps.is_empty() {
                unroll_exit_deps.insert(l.header, deps);
                unroll_keep_opt.insert(l.header, induction_vars(f, cfg, l, &opt_in));
            }
        }
    }

    Bta {
        static_in,
        loop_assigned,
        region_blocks,
        entries,
        policies,
        unrollable,
        unroll_keep,
        unroll_exit_deps,
        unroll_keep_opt,
    }
}

/// Forward fixpoint with *union* meet: a variable is in the result if it is
/// static along any path — the per-division upper bound used to identify
/// unrolling candidates.
fn optimistic_fixpoint(f: &FuncIr, cfg: &OptConfig) -> Vec<BTreeSet<VReg>> {
    let n = f.blocks.len();
    let mut state: Vec<BTreeSet<VReg>> = vec![BTreeSet::new(); n];
    let mut work: VecDeque<BlockId> = VecDeque::new();
    work.push_back(f.entry);
    let mut visited = vec![false; n];
    visited[f.entry.index()] = true;
    while let Some(b) = work.pop_front() {
        let mut s = state[b.index()].clone();
        transfer_block(f, b, &mut s, cfg);
        for succ in f.block(b).term.successors() {
            let si = succ.index();
            let before = state[si].len();
            state[si].extend(s.iter().copied());
            if state[si].len() != before || !visited[si] {
                visited[si] = true;
                work.push_back(succ);
            }
        }
    }
    state
}

/// Backward closure of `set` through the loop body's *static*
/// computations only. A dynamic definition of a tracked variable is a
/// promotion boundary (the value arrives by promotion, not by a
/// dependency chain) — but only when a `promote` annotation in the loop
/// actually re-staticizes that variable. Without one, the exit test
/// consumes a value the specializer can never know, so the test cannot
/// drive complete unrolling: following static control flow, only the
/// arms that keep the variable static are ever taken, and an exit that
/// depends on the dynamic arm never fires (the mipsi fetch loop without
/// static loads unrolls `pc = pc + 1` forever, past every bound).
/// Returns `false` when the set is unsatisfiable for that reason.
fn static_closure_over_body(
    f: &FuncIr,
    cfg: &OptConfig,
    l: &NaturalLoop,
    opt_in: &[BTreeSet<VReg>],
    set: &mut BTreeSet<VReg>,
) -> bool {
    loop {
        let before = set.len();
        for &b in &l.body {
            let mut s = opt_in[b.index()].clone();
            for inst in &f.block(b).insts {
                let is_static = {
                    let s_ref = &s;
                    inst_binding(inst, &|v| s_ref.contains(&v), cfg)
                };
                if let Some(d) = inst.def() {
                    if set.contains(&d) && is_static == Binding::Static {
                        set.extend(inst.uses());
                    }
                    match is_static {
                        Binding::Static => {
                            s.insert(d);
                        }
                        Binding::Dynamic => {
                            s.remove(&d);
                        }
                        Binding::Annotation => {}
                    }
                }
                // Track promotions for the running state.
                match inst {
                    Inst::MakeStatic { vars } => {
                        for (v, _) in vars {
                            s.insert(*v);
                        }
                    }
                    Inst::Promote { var } if cfg.internal_promotions => {
                        s.insert(*var);
                    }
                    Inst::MakeDynamic { vars } => {
                        for v in vars {
                            s.remove(v);
                        }
                    }
                    _ => {}
                }
            }
        }
        if set.len() == before {
            break;
        }
    }
    // Unsatisfiable if a tracked variable has an in-loop dynamic
    // definition with no promotion re-staticizing it — matched per
    // site: the `promote` must follow the definition in the same
    // block, and promotions must be enabled (an inert annotation
    // leaves the value dynamic, so the chain really does end there).
    for &b in &l.body {
        let mut s = opt_in[b.index()].clone();
        let insts = &f.block(b).insts;
        for (i, inst) in insts.iter().enumerate() {
            let is_static = {
                let s_ref = &s;
                inst_binding(inst, &|v| s_ref.contains(&v), cfg)
            };
            if let Some(d) = inst.def() {
                if set.contains(&d) && is_static == Binding::Dynamic {
                    let repromoted = cfg.internal_promotions
                        && insts[i + 1..]
                            .iter()
                            .any(|j| matches!(j, Inst::Promote { var } if *var == d));
                    if !repromoted {
                        return false;
                    }
                }
                match is_static {
                    Binding::Static => {
                        s.insert(d);
                    }
                    Binding::Dynamic => {
                        s.remove(&d);
                    }
                    Binding::Annotation => {}
                }
            }
            match inst {
                Inst::MakeStatic { vars } => {
                    for (v, _) in vars {
                        s.insert(*v);
                    }
                }
                Inst::Promote { var } if cfg.internal_promotions => {
                    s.insert(*var);
                }
                Inst::MakeDynamic { vars } => {
                    for v in vars {
                        s.remove(v);
                    }
                }
                _ => {}
            }
        }
    }
    true
}

/// The forward fixpoint with intersection meet over visited predecessors.
/// At loop headers, loop-assigned variables are demoted unless the loop is
/// unrollable *and* the variable is a static induction variable.
fn run_fixpoint(
    f: &FuncIr,
    cfg: &OptConfig,
    loop_assigned: &HashMap<BlockId, BTreeSet<VReg>>,
    unrollable: &HashSet<BlockId>,
    unroll_keep: &HashMap<BlockId, BTreeSet<VReg>>,
) -> Vec<BTreeSet<VReg>> {
    let n = f.blocks.len();
    let mut state: Vec<Option<BTreeSet<VReg>>> = vec![None; n];
    state[f.entry.index()] = Some(BTreeSet::new());
    let mut work: VecDeque<BlockId> = VecDeque::new();
    work.push_back(f.entry);
    while let Some(b) = work.pop_front() {
        let mut s = state[b.index()]
            .clone()
            .expect("on worklist implies visited");
        if let Some(assigned) = loop_assigned.get(&b) {
            let keep = unroll_keep.get(&b);
            for v in assigned {
                let kept = unrollable.contains(&b) && keep.is_some_and(|k| k.contains(v));
                if !kept {
                    s.remove(v);
                }
            }
        }
        transfer_block(f, b, &mut s, cfg);
        for succ in f.block(b).term.successors() {
            let si = succ.index();
            let updated = match &state[si] {
                None => {
                    state[si] = Some(s.clone());
                    true
                }
                Some(old) => {
                    let met: BTreeSet<VReg> = old.intersection(&s).copied().collect();
                    if &met != old {
                        state[si] = Some(met);
                        true
                    } else {
                        false
                    }
                }
            };
            if updated {
                work.push_back(succ);
            }
        }
    }
    state.into_iter().map(Option::unwrap_or_default).collect()
}

/// Does the loop have at least one exit whose branch condition is static?
/// Only such loops unroll: a static exit test is what terminates the
/// specialization-time walk around the loop.
fn has_static_exit(
    f: &FuncIr,
    cfg: &OptConfig,
    l: &NaturalLoop,
    static_in: &[BTreeSet<VReg>],
) -> bool {
    for &b in &l.body {
        let term = &f.block(b).term;
        let exits = term.successors().iter().any(|s| !l.body.contains(s));
        if !exits {
            continue;
        }
        // Static set at the end of the block.
        let mut s = static_in[b.index()].clone();
        transfer_block(f, b, &mut s, cfg);
        match term {
            Term::Br { cond, .. } if s.contains(cond) => return true,
            Term::Switch { on, .. } if s.contains(on) => return true,
            _ => {}
        }
    }
    false
}

/// The loop's static induction variables: the transitive backward closure,
/// over the loop body's computations, of the variables feeding (a) static
/// exit tests and (b) every static branch/switch condition in the body —
/// the variables whose values shape the unrolled control flow.
fn induction_vars(
    f: &FuncIr,
    cfg: &OptConfig,
    l: &NaturalLoop,
    static_in: &[BTreeSet<VReg>],
) -> BTreeSet<VReg> {
    let mut kept: BTreeSet<VReg> = BTreeSet::new();
    // Seeds: static branch conditions within the body (exit tests are a
    // special case of these).
    for &b in &l.body {
        let mut s = static_in[b.index()].clone();
        transfer_block(f, b, &mut s, cfg);
        match &f.block(b).term {
            Term::Br { cond, .. } if s.contains(cond) => {
                kept.insert(*cond);
            }
            Term::Switch { on, .. } if s.contains(on) => {
                kept.insert(*on);
            }
            _ => {}
        }
    }
    // Backward closure through the body's computations.
    loop {
        let before = kept.len();
        for &b in &l.body {
            for inst in &f.block(b).insts {
                if let Some(d) = inst.def() {
                    if kept.contains(&d) {
                        kept.extend(inst.uses());
                    }
                }
            }
        }
        if kept.len() == before {
            return kept;
        }
    }
}

/// Apply one block's instructions to the static set (the same evolution the
/// online specializer performs on its concrete store).
fn transfer_block(f: &FuncIr, b: BlockId, s: &mut BTreeSet<VReg>, cfg: &OptConfig) {
    for inst in &f.block(b).insts {
        match inst {
            Inst::MakeStatic { vars } => {
                for (v, _) in vars {
                    s.insert(*v);
                }
            }
            Inst::MakeDynamic { vars } => {
                for v in vars {
                    s.remove(v);
                }
            }
            Inst::Promote { var } => {
                if cfg.internal_promotions {
                    s.insert(*var);
                }
            }
            _ => {
                let is_static = |v: VReg| s.contains(&v);
                let binding = inst_binding(inst, &is_static, cfg);
                if let Some(d) = inst.def() {
                    match binding {
                        Binding::Static => {
                            s.insert(d);
                        }
                        Binding::Dynamic => {
                            s.remove(&d);
                        }
                        Binding::Annotation => unreachable!("handled above"),
                    }
                }
            }
        }
    }
    let _ = f;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyc_ir::lower::lower_program;
    use dyc_lang::parse_program;

    fn bta_of(src: &str, cfg: &OptConfig) -> (FuncIr, Bta) {
        let mut ir = lower_program(&parse_program(src).unwrap()).unwrap();
        let f = ir.funcs.remove(0);
        let b = analyze(&f, cfg);
        (f, b)
    }

    fn named(f: &FuncIr, name: &str) -> VReg {
        *f.vreg_names
            .iter()
            .find(|(_, n)| n.as_str() == name)
            .unwrap()
            .0
    }

    #[test]
    fn static_set_propagates_downstream() {
        let (f, b) = bta_of(
            "int f(int x, int y) { make_static(x); int z = x + 1; return z + y; }",
            &OptConfig::all(),
        );
        // z = x + 1 is derived static; the region entry is recorded.
        assert_eq!(b.entries.len(), 1);
        let x = named(&f, "x");
        assert!(b.policies.contains_key(&x));
    }

    #[test]
    fn static_induction_variable_survives_loop_with_unrolling() {
        let src = "int f(int n, int d) { make_static(n); int s = 0; int i = 0; while (i < n) { s += d; i += 1; } return s; }";
        let (f, b) = bta_of(src, &OptConfig::all());
        let i = named(&f, "i");
        let n = named(&f, "n");
        // At the loop header both i (derived, loop-circular) and n stay
        // static under the monovariant analysis.
        let loops: Vec<_> = b.loop_assigned.keys().collect();
        assert_eq!(loops.len(), 1);
        let h = *loops[0];
        assert!(b.static_in[h.index()].contains(&i));
        assert!(b.static_in[h.index()].contains(&n));
    }

    #[test]
    fn unrolling_disabled_demotes_loop_assigned_vars() {
        let src = "int f(int n, int d) { make_static(n); int s = 0; int i = 0; while (i < n) { s += d; i += 1; } return s; }";
        let cfg = OptConfig::all().without("complete_loop_unrolling").unwrap();
        let (f, b) = bta_of(src, &cfg);
        let i = named(&f, "i");
        let n = named(&f, "n");
        let h = *b.loop_assigned.keys().next().unwrap();
        // i is assigned in the loop: demoted. n is invariant: stays.
        assert!(b.loop_assigned[&h].contains(&i));
        // After the loop the set no longer includes i.
        let exit_sets: Vec<_> = (0..f.blocks.len())
            .filter(|bi| b.static_in[*bi].contains(&i))
            .collect();
        // i may be static before the loop; but inside the loop's header it
        // must have been demoted before the transfer.
        assert!(b.static_in[h.index()].contains(&n));
        let _ = exit_sets;
    }

    #[test]
    fn dynamic_assignment_kills_staticness() {
        let src = "int f(int x, int y) { make_static(x); x = y; return x; }";
        let (f, b) = bta_of(src, &OptConfig::all());
        let x = named(&f, "x");
        // x is reassigned from dynamic y in the entry block; successor
        // blocks (the return path, if any) must not list x static.
        for (bi, set) in b.static_in.iter().enumerate() {
            if bi != f.entry.index() {
                assert!(!set.contains(&x));
            }
        }
    }

    #[test]
    fn merge_intersects_divisions() {
        // x static only on the then-path; at the merge the monovariant set
        // drops it.
        let src = "int f(int c, int x) { if (c) { make_static(x); } return x + 1; }";
        let (f, b) = bta_of(src, &OptConfig::all());
        let x = named(&f, "x");
        // The merge block (containing the return) must not have x static.
        for (bi, block) in f.blocks.iter().enumerate() {
            if matches!(block.term, dyc_ir::inst::Term::Ret(Some(_))) {
                assert!(!b.static_in[bi].contains(&x));
            }
        }
    }

    #[test]
    fn region_blocks_nonempty_for_annotated_function() {
        let (_, b) = bta_of(
            "int f(int x) { make_static(x); return x * 2; }",
            &OptConfig::all(),
        );
        assert!(!b.region_blocks.is_empty());
    }

    #[test]
    fn make_dynamic_ends_the_region() {
        let src = "int f(int x, int y) { make_static(x); int a = x + 1; make_dynamic(x, a); return a + y; }";
        let (f, b) = bta_of(src, &OptConfig::all());
        let x = named(&f, "x");
        // No block after the make_dynamic has x in its entry set; here the
        // whole body is one block, so just re-run the transfer and check
        // the final state via a downstream block if present.
        let mut s = b.static_in[f.entry.index()].clone();
        super::transfer_block(&f, f.entry, &mut s, &OptConfig::all());
        assert!(!s.contains(&x));
    }
}

#[cfg(test)]
mod unroll_tests {
    use super::*;
    use dyc_ir::lower::lower_program;
    use dyc_lang::parse_program;

    fn bta_of(src: &str) -> (FuncIr, Bta) {
        let mut ir = lower_program(&parse_program(src).unwrap()).unwrap();
        let f = ir.funcs.remove(0);
        let b = analyze(&f, &OptConfig::all());
        (f, b)
    }

    fn named(f: &FuncIr, name: &str) -> VReg {
        *f.vreg_names
            .iter()
            .find(|(_, n)| n.as_str() == name)
            .unwrap()
            .0
    }

    #[test]
    fn static_bound_loop_is_an_unroll_candidate() {
        let src = "int f(int n, int d) { make_static(n); int s = 0; int i = 0; while (i < n) { s += d; i += 1; } return s; }";
        let (f, b) = bta_of(src);
        assert_eq!(b.unroll_exit_deps.len(), 1);
        let (h, deps) = b.unroll_exit_deps.iter().next().unwrap();
        // The exit depends (at the header) on i and n.
        let i = named(&f, "i");
        let n = named(&f, "n");
        assert!(
            deps.iter().any(|d| d.contains(&i) && d.contains(&n)),
            "{deps:?}"
        );
        assert!(
            b.unroll_keep_opt[h].contains(&i),
            "i is the induction variable"
        );
    }

    #[test]
    fn dynamic_bound_loop_has_unsatisfiable_deps() {
        // n is never static: the dep set mentions it, so no store can
        // satisfy it and the loop never unrolls.
        let src = "int f(int n, int k) { make_static(k); int s = 0; int i = 0; while (i < n) { s += k; i += 1; } return s; }";
        let (f, b) = bta_of(src);
        let n = named(&f, "n");
        for deps in b.unroll_exit_deps.values() {
            for d in deps {
                assert!(
                    d.contains(&n),
                    "every exit dep set must mention the dynamic bound"
                );
            }
        }
    }

    #[test]
    fn accumulator_under_dynamic_guard_is_not_an_induction_variable() {
        // steps feeds only a dynamic comparison: not kept.
        let src = r#"
            int f(int n, int fuel) {
                make_static(n);
                int steps = 0;
                int i = 0;
                while (i < n) {
                    if (steps >= fuel) { return -1; }
                    steps = steps + 1;
                    i = i + 1;
                }
                return steps;
            }
        "#;
        let (f, b) = bta_of(src);
        let steps = named(&f, "steps");
        let i = named(&f, "i");
        for keep in b.unroll_keep_opt.values() {
            assert!(!keep.contains(&steps), "steps must not drive unrolling");
        }
        assert!(b.unroll_keep_opt.values().any(|k| k.contains(&i)));
    }

    #[test]
    fn promotion_boundary_cuts_the_dependency_closure() {
        // pc is dynamically reassigned then promoted; the exit deps must
        // not leak through the dynamic assignment into regs.
        let src = r#"
            int f(int regs[nr], int nr, int n) {
                make_static(n);
                int pc = 0;
                int s = 0;
                while (pc >= 0) {
                    s = s + 1;
                    if (s > 100) { return s; }
                    pc = regs[iabs(pc) % nr];
                    promote(pc);
                    if (pc >= n) { pc = 0 - 1; }
                }
                return s;
            }
        "#;
        let (f, b) = bta_of(src);
        let regs = named(&f, "regs");
        for deps in b.unroll_exit_deps.values() {
            for d in deps {
                assert!(
                    !d.contains(&regs),
                    "the register file is behind a promotion boundary: {d:?}"
                );
            }
        }
    }

    #[test]
    fn guarded_annotation_keeps_candidates_optimistic() {
        // n static only on the guarded path; pessimistic analysis kills it
        // at the merge, but the optimistic exit deps survive, enabling
        // conditional specialization (§2.2.5).
        let src = r#"
            int f(int a[n], int n, int lim) {
                if (n <= lim) { make_static(a, n); }
                int s = 0;
                int i = 0;
                while (i < n) { s = s + a[i]; i = i + 1; }
                return s;
            }
        "#;
        let (f, b) = bta_of(src);
        let n = named(&f, "n");
        let i = named(&f, "i");
        assert!(!b.unroll_exit_deps.is_empty(), "the loop is a candidate");
        let deps: Vec<_> = b.unroll_exit_deps.values().flatten().collect();
        assert!(deps.iter().any(|d| d.contains(&n) && d.contains(&i)));
        // Yet the pessimistic (merged) analysis correctly refuses.
        assert!(b.unrollable.is_empty());
    }
}
