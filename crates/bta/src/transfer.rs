//! The binding-time transfer function.
//!
//! Shared between the offline fixpoint ([`crate::analysis`]) and the online
//! specializer in `dyc-rt`, so the plan and the generating extension agree
//! instruction by instruction on what is a *static computation* (executed
//! once at dynamic compile time) versus a *dynamic computation* (code is
//! emitted for it), per §2.1.

use crate::config::OptConfig;
use dyc_ir::inst::{Callee, Inst};
use dyc_ir::VReg;
use std::collections::BTreeSet;

/// The binding-time of one instruction under a given static store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binding {
    /// Executed at dynamic compile time; its destination (if any) becomes
    /// static.
    Static,
    /// Emitted as run-time code; its destination (if any) becomes dynamic.
    Dynamic,
    /// Annotation pseudo-instruction — handled by the caller (changes the
    /// division / promotes variables), never emitted.
    Annotation,
}

/// Classify `inst` given a predicate describing which registers are
/// currently static.
pub fn inst_binding(inst: &Inst, is_static: &dyn Fn(VReg) -> bool, cfg: &OptConfig) -> Binding {
    match inst {
        Inst::MakeStatic { .. } | Inst::MakeDynamic { .. } | Inst::Promote { .. } => {
            Binding::Annotation
        }
        Inst::ConstI { .. } | Inst::ConstF { .. } => Binding::Static,
        Inst::Copy { src, .. } | Inst::Un { src, .. } => {
            if is_static(*src) {
                Binding::Static
            } else {
                Binding::Dynamic
            }
        }
        Inst::IBin { a, b, .. }
        | Inst::FBin { a, b, .. }
        | Inst::ICmp { a, b, .. }
        | Inst::FCmp { a, b, .. } => {
            if is_static(*a) && is_static(*b) {
                Binding::Static
            } else {
                Binding::Dynamic
            }
        }
        Inst::Load {
            base,
            idx,
            is_static: annotated,
            ..
        } => {
            // By default memory contents are dynamic even at constant
            // addresses; only annotated loads of invariant structure parts
            // are static computations (§2.2.6).
            if cfg.static_loads && *annotated && is_static(*base) && is_static(*idx) {
                Binding::Static
            } else {
                Binding::Dynamic
            }
        }
        Inst::Call { callee, args, .. } => {
            let pure = match callee {
                Callee::Func { is_static, .. } => *is_static,
                Callee::Host(h) => h.is_pure(),
            };
            if cfg.static_calls && pure && args.iter().all(|a| is_static(*a)) {
                Binding::Static
            } else {
                Binding::Dynamic
            }
        }
        // Memory writes are always dynamic computations.
        Inst::Store { .. } => Binding::Dynamic,
    }
}

/// Classify `inst` against an explicit static-variable *set* — the
/// entry point the stage-time GE lowering uses. The classification only
/// depends on the set (never on the values it will hold at run time),
/// which is exactly what makes binding times precomputable per division.
pub fn binding_with_set(inst: &Inst, statics: &BTreeSet<VReg>, cfg: &OptConfig) -> Binding {
    inst_binding(inst, &|v| statics.contains(&v), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyc_ir::IrTy;
    use dyc_vm::{HostFn, IAluOp};

    fn statics(list: &[u32]) -> impl Fn(VReg) -> bool + '_ {
        move |v: VReg| list.contains(&v.0)
    }

    #[test]
    fn constants_are_static() {
        let cfg = OptConfig::all();
        let i = Inst::ConstI { dst: VReg(0), v: 5 };
        assert_eq!(inst_binding(&i, &statics(&[]), &cfg), Binding::Static);
    }

    #[test]
    fn alu_needs_both_operands_static() {
        let cfg = OptConfig::all();
        let i = Inst::IBin {
            op: IAluOp::Add,
            dst: VReg(2),
            a: VReg(0),
            b: VReg(1),
        };
        assert_eq!(inst_binding(&i, &statics(&[0, 1]), &cfg), Binding::Static);
        assert_eq!(inst_binding(&i, &statics(&[0]), &cfg), Binding::Dynamic);
    }

    #[test]
    fn unannotated_load_is_dynamic_even_with_static_address() {
        let cfg = OptConfig::all();
        let i = Inst::Load {
            ty: IrTy::Int,
            dst: VReg(2),
            base: VReg(0),
            idx: VReg(1),
            is_static: false,
        };
        assert_eq!(inst_binding(&i, &statics(&[0, 1]), &cfg), Binding::Dynamic);
    }

    #[test]
    fn annotated_load_respects_config() {
        let on = OptConfig::all();
        let off = on.without("static_loads").unwrap();
        let i = Inst::Load {
            ty: IrTy::Int,
            dst: VReg(2),
            base: VReg(0),
            idx: VReg(1),
            is_static: true,
        };
        assert_eq!(inst_binding(&i, &statics(&[0, 1]), &on), Binding::Static);
        assert_eq!(inst_binding(&i, &statics(&[0, 1]), &off), Binding::Dynamic);
    }

    #[test]
    fn pure_call_with_static_args_is_a_static_call() {
        let on = OptConfig::all();
        let off = on.without("static_calls").unwrap();
        let i = Inst::Call {
            callee: Callee::Host(HostFn::Cos),
            dst: Some(VReg(1)),
            args: vec![VReg(0)],
        };
        assert_eq!(inst_binding(&i, &statics(&[0]), &on), Binding::Static);
        assert_eq!(inst_binding(&i, &statics(&[0]), &off), Binding::Dynamic);
        // Impure calls never become static.
        let p = Inst::Call {
            callee: Callee::Host(HostFn::PrintI),
            dst: None,
            args: vec![VReg(0)],
        };
        assert_eq!(inst_binding(&p, &statics(&[0]), &on), Binding::Dynamic);
    }

    #[test]
    fn stores_and_annotations_classified() {
        let cfg = OptConfig::all();
        let s = Inst::Store {
            ty: IrTy::Int,
            base: VReg(0),
            idx: VReg(1),
            src: VReg(2),
        };
        assert_eq!(
            inst_binding(&s, &statics(&[0, 1, 2]), &cfg),
            Binding::Dynamic
        );
        let a = Inst::Promote { var: VReg(0) };
        assert_eq!(inst_binding(&a, &statics(&[]), &cfg), Binding::Annotation);
    }
}
