//! A direct AST interpreter for DyCL — the reference semantics.
//!
//! Entirely independent of the compilation pipeline (no IR, no VM): used
//! by the property-test suite as a third oracle, so a bug shared by the
//! static and dynamic builds (e.g. in lowering or the traditional
//! optimizations) still gets caught. Annotations are no-ops here, exactly
//! as they are in the paper's statically compiled builds.

use crate::ast::*;
use std::collections::HashMap;
use std::fmt;

/// A run-time value of the reference interpreter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvalValue {
    /// 64-bit integer.
    I(i64),
    /// 64-bit float.
    F(f64),
}

impl EvalValue {
    fn as_i(self) -> i64 {
        match self {
            EvalValue::I(v) => v,
            EvalValue::F(v) => v as i64,
        }
    }

    fn as_f(self) -> f64 {
        match self {
            EvalValue::I(v) => v as f64,
            EvalValue::F(v) => v,
        }
    }

    fn truthy(self) -> bool {
        match self {
            EvalValue::I(v) => v != 0,
            EvalValue::F(v) => v != 0.0,
        }
    }
}

/// Errors of the reference interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Integer division or remainder by zero.
    DivideByZero,
    /// Step budget exhausted.
    StepLimit,
    /// Unknown name or arity/type misuse (programs are expected to be
    /// checked by the real front end first).
    Invalid(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::DivideByZero => write!(f, "division by zero"),
            EvalError::StepLimit => write!(f, "step limit exceeded"),
            EvalError::Invalid(m) => write!(f, "invalid program: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The interpreter: a program, a word-addressed memory, an output log.
#[derive(Debug)]
pub struct Evaluator<'p> {
    program: &'p Program,
    /// Word-addressed memory, as in the VM.
    pub mem: Vec<Word>,
    /// Values printed by `print_int` / `print_float`.
    pub output: Vec<EvalValue>,
    steps: u64,
    max_steps: u64,
}

/// A raw memory word (same encoding as the VM's).
pub type Word = u64;

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Option<EvalValue>),
}

type Scope = HashMap<String, EvalValue>;

impl<'p> Evaluator<'p> {
    /// A fresh evaluator over `program` with `mem_words` of zeroed memory.
    pub fn new(program: &'p Program, mem_words: usize) -> Evaluator<'p> {
        Evaluator {
            program,
            mem: vec![0; mem_words],
            output: Vec::new(),
            steps: 0,
            max_steps: 10_000_000,
        }
    }

    /// Limit interpretation steps.
    pub fn set_step_limit(&mut self, n: u64) {
        self.max_steps = n;
    }

    /// Write integers into memory (harness setup).
    pub fn write_ints(&mut self, base: i64, vals: &[i64]) {
        for (i, v) in vals.iter().enumerate() {
            self.mem[base as usize + i] = *v as u64;
        }
    }

    /// Read integers back.
    pub fn read_ints(&self, base: i64, n: usize) -> Vec<i64> {
        (0..n).map(|i| self.mem[base as usize + i] as i64).collect()
    }

    /// Call a function by name.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] on guest faults or malformed programs.
    pub fn call(&mut self, name: &str, args: &[EvalValue]) -> Result<Option<EvalValue>, EvalError> {
        let f = self
            .program
            .function(name)
            .ok_or_else(|| EvalError::Invalid(format!("unknown function '{name}'")))?;
        if args.len() != f.params.len() {
            return Err(EvalError::Invalid(format!(
                "arity mismatch calling '{name}'"
            )));
        }
        let mut scopes: Vec<Scope> = vec![Scope::new()];
        for (p, a) in f.params.iter().zip(args) {
            // Coerce to the declared scalar type (arrays hold addresses).
            let v = if p.is_array() || matches!(p.ty, Type::Int | Type::Ptr(_)) {
                EvalValue::I(a.as_i())
            } else {
                EvalValue::F(a.as_f())
            };
            scopes
                .last_mut()
                .expect("nonempty")
                .insert(p.name.clone(), v);
        }
        let mut flow = Flow::Normal;
        for st in &f.body {
            flow = self.stmt(f, st, &mut scopes)?;
            if let Flow::Return(_) = flow {
                break;
            }
        }
        Ok(match flow {
            Flow::Return(v) => v,
            // Falling off the end of a non-void function returns a
            // defined zero, matching the lowered builds (the region-entry
            // dispatch stub always forwards a return register, so the
            // fall-off value must be defined for all builds to agree).
            _ => match f.ret {
                Type::Void => None,
                Type::Float => Some(EvalValue::F(0.0)),
                _ => Some(EvalValue::I(0)),
            },
        })
    }

    fn tick(&mut self) -> Result<(), EvalError> {
        self.steps += 1;
        if self.steps > self.max_steps {
            Err(EvalError::StepLimit)
        } else {
            Ok(())
        }
    }

    fn lookup(scopes: &[Scope], name: &str) -> Option<EvalValue> {
        scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn assign_var(scopes: &mut [Scope], name: &str, v: EvalValue) -> Result<(), EvalError> {
        for s in scopes.iter_mut().rev() {
            if let Some(slot) = s.get_mut(name) {
                // Keep the declared type: coerce like the compiled builds.
                *slot = match *slot {
                    EvalValue::I(_) => EvalValue::I(v.as_i()),
                    EvalValue::F(_) => EvalValue::F(v.as_f()),
                };
                return Ok(());
            }
        }
        Err(EvalError::Invalid(format!(
            "assignment to unknown '{name}'"
        )))
    }

    fn elem_addr(
        &mut self,
        f: &Function,
        scopes: &mut Vec<Scope>,
        base: &str,
        indices: &[Expr],
    ) -> Result<(usize, bool), EvalError> {
        let b = Self::lookup(scopes, base)
            .ok_or_else(|| EvalError::Invalid(format!("unknown array '{base}'")))?
            .as_i();
        let param = f
            .params
            .iter()
            .find(|p| p.name == base)
            .ok_or_else(|| EvalError::Invalid(format!("'{base}' is not an array parameter")))?;
        let is_float = matches!(param.ty, Type::Float);
        let flat = match indices.len() {
            1 => self.expr(f, &indices[0], scopes)?.as_i(),
            2 => {
                let ncols_e = param.dims[1]
                    .clone()
                    .ok_or_else(|| EvalError::Invalid("missing column dim".into()))?;
                let i = self.expr(f, &indices[0], scopes)?.as_i();
                let n = self.expr(f, &ncols_e, scopes)?.as_i();
                let j = self.expr(f, &indices[1], scopes)?.as_i();
                i.wrapping_mul(n).wrapping_add(j)
            }
            _ => return Err(EvalError::Invalid("bad dimensionality".into())),
        };
        let addr = b.wrapping_add(flat);
        if addr < 0 || addr as usize >= self.mem.len() {
            return Err(EvalError::Invalid(format!("address {addr} out of bounds")));
        }
        Ok((addr as usize, is_float))
    }

    #[allow(clippy::too_many_lines)]
    fn stmt(
        &mut self,
        f: &Function,
        st: &Stmt,
        scopes: &mut Vec<Scope>,
    ) -> Result<Flow, EvalError> {
        self.tick()?;
        match st {
            Stmt::Block(body) => {
                scopes.push(Scope::new());
                for s in body {
                    match self.stmt(f, s, scopes)? {
                        Flow::Normal => {}
                        other => {
                            scopes.pop();
                            return Ok(other);
                        }
                    }
                }
                scopes.pop();
                Ok(Flow::Normal)
            }
            Stmt::Decl { ty, inits } => {
                for (name, init) in inits {
                    let v = match init {
                        Some(e) => self.expr(f, e, scopes)?,
                        None => EvalValue::I(0),
                    };
                    let v = match ty {
                        Type::Float => EvalValue::F(v.as_f()),
                        _ => EvalValue::I(v.as_i()),
                    };
                    scopes.last_mut().expect("nonempty").insert(name.clone(), v);
                }
                Ok(Flow::Normal)
            }
            Stmt::Assign { lv, op, rhs } => {
                let rhs_value = |this: &mut Self, scopes: &mut Vec<Scope>, cur: EvalValue| {
                    let r = this.expr(f, rhs, scopes)?;
                    Ok::<EvalValue, EvalError>(match op {
                        AssignOp::Set => r,
                        AssignOp::Add => num_bin(BinOp::Add, cur, r)?,
                        AssignOp::Sub => num_bin(BinOp::Sub, cur, r)?,
                        AssignOp::Mul => num_bin(BinOp::Mul, cur, r)?,
                        AssignOp::Div => num_bin(BinOp::Div, cur, r)?,
                    })
                };
                match lv {
                    LValue::Var(name) => {
                        let cur = Self::lookup(scopes, name)
                            .ok_or_else(|| EvalError::Invalid(format!("unknown '{name}'")))?;
                        let v = rhs_value(self, scopes, cur)?;
                        Self::assign_var(scopes, name, v)?;
                    }
                    LValue::Elem { base, indices } => {
                        let (addr, is_float) = self.elem_addr(f, scopes, base, indices)?;
                        let cur = if is_float {
                            EvalValue::F(f64::from_bits(self.mem[addr]))
                        } else {
                            EvalValue::I(self.mem[addr] as i64)
                        };
                        let v = rhs_value(self, scopes, cur)?;
                        self.mem[addr] = if is_float {
                            v.as_f().to_bits()
                        } else {
                            v.as_i() as u64
                        };
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.expr(f, cond, scopes)?.truthy() {
                    self.stmt(f, then_branch, scopes)
                } else if let Some(e) = else_branch {
                    self.stmt(f, e, scopes)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body } => {
                while self.expr(f, cond, scopes)?.truthy() {
                    self.tick()?;
                    match self.stmt(f, body, scopes)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                scopes.push(Scope::new());
                if let Some(i) = init {
                    if let Flow::Return(v) = self.stmt(f, i, scopes)? {
                        scopes.pop();
                        return Ok(Flow::Return(v));
                    }
                }
                loop {
                    if let Some(c) = cond {
                        if !self.expr(f, c, scopes)?.truthy() {
                            break;
                        }
                    }
                    self.tick()?;
                    match self.stmt(f, body, scopes)? {
                        Flow::Break => break,
                        Flow::Return(v) => {
                            scopes.pop();
                            return Ok(Flow::Return(v));
                        }
                        _ => {}
                    }
                    if let Some(s) = step {
                        self.stmt(f, s, scopes)?;
                    }
                }
                scopes.pop();
                Ok(Flow::Normal)
            }
            Stmt::Switch {
                scrutinee,
                cases,
                default,
            } => {
                let v = self.expr(f, scrutinee, scopes)?.as_i();
                let body = cases
                    .iter()
                    .find_map(|(k, b)| (*k == v).then_some(b))
                    .unwrap_or(default);
                scopes.push(Scope::new());
                for s in body {
                    match self.stmt(f, s, scopes)? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        other => {
                            scopes.pop();
                            return Ok(other);
                        }
                    }
                }
                scopes.pop();
                Ok(Flow::Normal)
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => {
                        let raw = self.expr(f, e, scopes)?;
                        Some(match f.ret {
                            Type::Float => EvalValue::F(raw.as_f()),
                            _ => EvalValue::I(raw.as_i()),
                        })
                    }
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Expr(e) => {
                self.expr(f, e, scopes)?;
                Ok(Flow::Normal)
            }
            // Annotations direct the dynamic compiler; semantically no-ops.
            Stmt::MakeStatic(_) | Stmt::MakeDynamic(_) | Stmt::Promote(_) => Ok(Flow::Normal),
        }
    }

    fn expr(
        &mut self,
        f: &Function,
        e: &Expr,
        scopes: &mut Vec<Scope>,
    ) -> Result<EvalValue, EvalError> {
        self.tick()?;
        match e {
            Expr::IntLit(v) => Ok(EvalValue::I(*v)),
            Expr::FloatLit(v) => Ok(EvalValue::F(*v)),
            Expr::Var(name) => Self::lookup(scopes, name)
                .ok_or_else(|| EvalError::Invalid(format!("unknown variable '{name}'"))),
            Expr::Unary(op, inner) => {
                let v = self.expr(f, inner, scopes)?;
                Ok(match op {
                    UnaryOp::Neg => match v {
                        EvalValue::I(i) => EvalValue::I(i.wrapping_neg()),
                        EvalValue::F(x) => EvalValue::F(-x),
                    },
                    UnaryOp::Not => EvalValue::I(i64::from(!v.truthy())),
                    UnaryOp::BitNot => EvalValue::I(!v.as_i()),
                    UnaryOp::CastInt => EvalValue::I(v.as_i()),
                    UnaryOp::CastFloat => EvalValue::F(v.as_f()),
                })
            }
            Expr::Binary(op, l, r) => {
                if op.is_logical() {
                    let lv = self.expr(f, l, scopes)?.truthy();
                    return Ok(EvalValue::I(i64::from(match op {
                        BinOp::And => lv && self.expr(f, r, scopes)?.truthy(),
                        BinOp::Or => lv || self.expr(f, r, scopes)?.truthy(),
                        _ => unreachable!(),
                    })));
                }
                let lv = self.expr(f, l, scopes)?;
                let rv = self.expr(f, r, scopes)?;
                num_bin(*op, lv, rv)
            }
            Expr::Index { base, indices, .. } => {
                let (addr, is_float) = self.elem_addr(f, scopes, base, indices)?;
                Ok(if is_float {
                    EvalValue::F(f64::from_bits(self.mem[addr]))
                } else {
                    EvalValue::I(self.mem[addr] as i64)
                })
            }
            Expr::Call { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.expr(f, a, scopes)?);
                }
                // User functions shadow host functions, as in lowering.
                if self.program.function(name).is_some() {
                    let out = self.call(name, &vals)?;
                    return out.ok_or_else(|| {
                        EvalError::Invalid(format!("void call '{name}' used as value"))
                    });
                }
                host_call(name, &vals, &mut self.output)
            }
        }
    }
}

fn num_bin(op: BinOp, l: EvalValue, r: EvalValue) -> Result<EvalValue, EvalError> {
    use EvalValue::{F, I};
    let both_int = matches!((l, r), (I(_), I(_)));
    if op.is_comparison() {
        let b = if both_int {
            let (a, b) = (l.as_i(), r.as_i());
            match op {
                BinOp::Eq => a == b,
                BinOp::Ne => a != b,
                BinOp::Lt => a < b,
                BinOp::Le => a <= b,
                BinOp::Gt => a > b,
                BinOp::Ge => a >= b,
                _ => unreachable!(),
            }
        } else {
            let (a, b) = (l.as_f(), r.as_f());
            match op {
                BinOp::Eq => a == b,
                BinOp::Ne => a != b,
                BinOp::Lt => a < b,
                BinOp::Le => a <= b,
                BinOp::Gt => a > b,
                BinOp::Ge => a >= b,
                _ => unreachable!(),
            }
        };
        return Ok(I(i64::from(b)));
    }
    Ok(match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div if both_int => {
            let (a, b) = (l.as_i(), r.as_i());
            I(match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(EvalError::DivideByZero);
                    }
                    a.wrapping_div(b)
                }
                _ => unreachable!(),
            })
        }
        BinOp::Add => F(l.as_f() + r.as_f()),
        BinOp::Sub => F(l.as_f() - r.as_f()),
        BinOp::Mul => F(l.as_f() * r.as_f()),
        BinOp::Div => F(l.as_f() / r.as_f()),
        BinOp::Rem => {
            let (a, b) = (l.as_i(), r.as_i());
            if b == 0 {
                return Err(EvalError::DivideByZero);
            }
            I(a.wrapping_rem(b))
        }
        BinOp::BitAnd => I(l.as_i() & r.as_i()),
        BinOp::BitOr => I(l.as_i() | r.as_i()),
        BinOp::BitXor => I(l.as_i() ^ r.as_i()),
        BinOp::Shl => I(l.as_i().wrapping_shl(r.as_i() as u32 & 63)),
        BinOp::Shr => I(l.as_i().wrapping_shr(r.as_i() as u32 & 63)),
        _ => unreachable!("logical handled above"),
    })
}

fn host_call(
    name: &str,
    args: &[EvalValue],
    output: &mut Vec<EvalValue>,
) -> Result<EvalValue, EvalError> {
    let f1 = |f: fn(f64) -> f64| {
        args.first()
            .map(|a| EvalValue::F(f(a.as_f())))
            .ok_or_else(|| EvalError::Invalid(format!("arity of '{name}'")))
    };
    match name {
        "cos" => f1(f64::cos),
        "sin" => f1(f64::sin),
        "sqrt" => f1(f64::sqrt),
        "fabs" => f1(f64::abs),
        "exp" => f1(f64::exp),
        "log" => f1(f64::ln),
        "floor" => f1(f64::floor),
        "pow" => Ok(EvalValue::F(args[0].as_f().powf(args[1].as_f()))),
        "iabs" => Ok(EvalValue::I(args[0].as_i().wrapping_abs())),
        "print_int" => {
            output.push(EvalValue::I(args[0].as_i()));
            Ok(EvalValue::I(0))
        }
        "print_float" => {
            output.push(EvalValue::F(args[0].as_f()));
            Ok(EvalValue::I(0))
        }
        _ => Err(EvalError::Invalid(format!("unknown function '{name}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn eval_int(src: &str, fname: &str, args: &[i64]) -> i64 {
        let p = parse_program(src).unwrap();
        let mut ev = Evaluator::new(&p, 64);
        let vals: Vec<EvalValue> = args.iter().map(|v| EvalValue::I(*v)).collect();
        ev.call(fname, &vals).unwrap().unwrap().as_i()
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let src = "int f(int n) { int s = 0; for (int i = 1; i <= n; ++i) { s += i; } return s; }";
        assert_eq!(eval_int(src, "f", &[100]), 5050);
    }

    #[test]
    fn annotations_are_no_ops() {
        let src = "int f(int x) { make_static(x); promote(x); make_dynamic(x); return x * 2; }";
        assert_eq!(eval_int(src, "f", &[21]), 42);
    }

    #[test]
    fn memory_and_arrays() {
        let src = "int f(int a[n], int n) { int s = 0; for (int i = 0; i < n; ++i) { s += a@[i]; a[i] = i; } return s; }";
        let p = parse_program(src).unwrap();
        let mut ev = Evaluator::new(&p, 16);
        ev.write_ints(0, &[5, 6, 7]);
        let out = ev.call("f", &[EvalValue::I(0), EvalValue::I(3)]).unwrap();
        assert_eq!(out, Some(EvalValue::I(18)));
        assert_eq!(ev.read_ints(0, 3), vec![0, 1, 2]);
    }

    #[test]
    fn switch_and_break_semantics() {
        let src = r#"
            int f(int x) {
                int r = 0;
                switch (x) {
                    case 1: r = 10; break;
                    case 2: r = 20; break;
                    default: r = 30;
                }
                return r;
            }
        "#;
        assert_eq!(eval_int(src, "f", &[1]), 10);
        assert_eq!(eval_int(src, "f", &[2]), 20);
        assert_eq!(eval_int(src, "f", &[3]), 30);
    }

    #[test]
    fn division_by_zero_faults() {
        let p = parse_program("int f(int x) { return 1 / x; }").unwrap();
        let mut ev = Evaluator::new(&p, 0);
        assert_eq!(
            ev.call("f", &[EvalValue::I(0)]).unwrap_err(),
            EvalError::DivideByZero
        );
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let p = parse_program("int f() { while (1) { } return 0; }").unwrap();
        let mut ev = Evaluator::new(&p, 0);
        ev.set_step_limit(1000);
        assert_eq!(ev.call("f", &[]).unwrap_err(), EvalError::StepLimit);
    }

    #[test]
    fn calls_and_recursion() {
        let src = r#"
            int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
            int f(int n) { return fib(n); }
        "#;
        assert_eq!(eval_int(src, "f", &[10]), 55);
    }

    #[test]
    fn short_circuit_in_reference_semantics() {
        let src = "int f(int a, int b) { return b != 0 && a / b > 1; }";
        assert_eq!(eval_int(src, "f", &[10, 0]), 0);
        assert_eq!(eval_int(src, "f", &[10, 4]), 1);
    }
}
