//! The DyCL abstract syntax tree.
//!
//! Untyped at this level; the lowering pass in `dyc-ir` type-checks while
//! building the CFG. Annotations ([`Stmt::MakeStatic`] and friends) are
//! ordinary statements so the binding-time analysis can be program-point
//! specific, as in DyC.

/// Scalar and pointer types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// No value (function returns only).
    Void,
    /// Pointer to element type; used for array parameters.
    Ptr(Box<Type>),
}

impl Type {
    /// The element type behind a pointer, if any.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            _ => None,
        }
    }
}

/// Caching policy for a specialized variable (§2.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Policy {
    /// Hash-table lookup at each dispatch; safe default.
    #[default]
    CacheAll,
    /// Hash-table lookup with at most `k` retained specializations
    /// (`cache_all(k)`); second-chance eviction reclaims the coldest
    /// entry when the site overflows. Bounds the §2.2.3 cache-all policy
    /// for long-running servers where key populations grow without bound.
    CacheAllBounded(u32),
    /// Single cached version, dispatched with an unchecked load+jump.
    /// Unsafe if the variable's value actually varies.
    CacheOneUnchecked,
    /// Array-indexed lookup for keys from a small integer range — the
    /// §3.1 extension that would make byte-dispatch programs (grep, a
    /// decompressor) profitable. Safe: out-of-range keys fall back to the
    /// hashed cache.
    CacheIndexed,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl BinOp {
    /// True for comparison operators (result is int regardless of operands).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for short-circuiting logical operators.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
    /// Bitwise not.
    BitNot,
    /// Cast to int.
    CastInt,
    /// Cast to float.
    CastFloat,
}

/// Compound-assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Variable reference.
    Var(String),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Array element read: `base[i]` or `base[i][j]`; `is_static` marks the
    /// `@` annotation (a static load, §2.2.6).
    Index {
        base: String,
        indices: Vec<Expr>,
        is_static: bool,
    },
    /// Function call (user or host function).
    Call { name: String, args: Vec<Expr> },
}

/// Assignable places.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar variable.
    Var(String),
    /// An array element: `base[i]` or `base[i][j]`.
    Elem { base: String, indices: Vec<Expr> },
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// Variable declarations with optional initializers.
    Decl {
        ty: Type,
        inits: Vec<(String, Option<Expr>)>,
    },
    /// Assignment (including compound forms).
    Assign { lv: LValue, op: AssignOp, rhs: Expr },
    /// `if (cond) then else`
    If {
        cond: Expr,
        then_branch: Box<Stmt>,
        else_branch: Option<Box<Stmt>>,
    },
    /// `while (cond) body`
    While { cond: Expr, body: Box<Stmt> },
    /// `for (init; cond; step) body` — any of the three may be absent.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Box<Stmt>,
    },
    /// `switch (scrutinee) { case k: ...; default: ... }`. Cases do not
    /// fall through (every benchmark in the paper breaks at case end, so
    /// DyCL makes that the semantics).
    Switch {
        scrutinee: Expr,
        cases: Vec<(i64, Vec<Stmt>)>,
        default: Vec<Stmt>,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return e?;`
    Return(Option<Expr>),
    /// Expression evaluated for effect (calls).
    Expr(Expr),
    /// `make_static(v: policy, ...)` — begin specialization (promotion).
    MakeStatic(Vec<(String, Policy)>),
    /// `make_dynamic(v, ...)` — end specialization on these variables.
    MakeDynamic(Vec<String>),
    /// `promote(v)` — internal dynamic-to-static promotion point.
    Promote(String),
}

/// Function parameter. Array parameters carry their dimension expressions:
/// `float image[][icols]` has `dims = [None, Some(icols)]`; scalars have an
/// empty `dims`.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Element type for arrays, scalar type otherwise.
    pub ty: Type,
    /// Dimension expressions; only the non-leading dims are needed for
    /// addressing, so the first may be `None`.
    pub dims: Vec<Option<Expr>>,
}

impl Param {
    /// True if this parameter is an array (pointer into VM memory).
    pub fn is_array(&self) -> bool {
        !self.dims.is_empty()
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// `static` qualifier: pure, callable at dynamic compile time.
    pub is_static: bool,
    /// Return type.
    pub ret: Type,
    /// Parameters.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

impl Function {
    /// True if any statement in the body (recursively) is an annotation,
    /// i.e. the function contains a dynamic region.
    pub fn has_annotations(&self) -> bool {
        fn stmt_has(s: &Stmt) -> bool {
            match s {
                Stmt::MakeStatic(_) | Stmt::MakeDynamic(_) | Stmt::Promote(_) => true,
                Stmt::Block(b) => b.iter().any(stmt_has),
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => stmt_has(then_branch) || else_branch.as_deref().is_some_and(stmt_has),
                Stmt::While { body, .. } => stmt_has(body),
                Stmt::For {
                    init, step, body, ..
                } => {
                    init.as_deref().is_some_and(stmt_has)
                        || step.as_deref().is_some_and(stmt_has)
                        || stmt_has(body)
                }
                Stmt::Switch { cases, default, .. } => {
                    cases.iter().any(|(_, b)| b.iter().any(stmt_has))
                        || default.iter().any(stmt_has)
                }
                _ => false,
            }
        }
        self.body.iter().any(stmt_has)
    }
}

/// A whole program: a list of functions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// The functions, in source order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annotation_detection_recurses() {
        let f = Function {
            name: "f".into(),
            is_static: false,
            ret: Type::Void,
            params: vec![],
            body: vec![Stmt::While {
                cond: Expr::IntLit(1),
                body: Box::new(Stmt::Block(vec![Stmt::MakeStatic(vec![(
                    "x".into(),
                    Policy::CacheAll,
                )])])),
            }],
        };
        assert!(f.has_annotations());
        let g = Function {
            name: "g".into(),
            body: vec![Stmt::Break],
            ..f.clone()
        };
        assert!(!g.has_annotations());
    }

    #[test]
    fn param_classification() {
        let scalar = Param {
            name: "n".into(),
            ty: Type::Int,
            dims: vec![],
        };
        let arr = Param {
            name: "a".into(),
            ty: Type::Float,
            dims: vec![None, Some(Expr::Var("n".into()))],
        };
        assert!(!scalar.is_array());
        assert!(arr.is_array());
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::BitAnd.is_logical());
    }
}
