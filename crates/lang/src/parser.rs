//! Recursive-descent parser for DyCL.

use crate::ast::*;
use crate::lexer::{lex, LexError};
use crate::token::{Token, TokenKind};
use std::error::Error;
use std::fmt;

/// A parse error with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Parse a complete DyCL program.
///
/// # Errors
///
/// Returns a [`ParseError`] (with source line) on malformed input.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut functions = Vec::new();
    while p.peek() != &TokenKind::Eof {
        functions.push(p.function()?);
    }
    Ok(Program { functions })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        k
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            line: self.line(),
        })
    }

    fn expect(&mut self, k: &TokenKind) -> Result<(), ParseError> {
        if self.peek() == k {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected '{k}', found '{}'", self.peek()))
        }
    }

    fn eat(&mut self, k: &TokenKind) -> bool {
        if self.peek() == k {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found '{other}'")),
        }
    }

    fn is_type_start(&self) -> bool {
        matches!(
            self.peek(),
            TokenKind::KwInt | TokenKind::KwFloat | TokenKind::KwVoid
        )
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        let mut t = match self.bump() {
            TokenKind::KwInt => Type::Int,
            TokenKind::KwFloat => Type::Float,
            TokenKind::KwVoid => Type::Void,
            other => return self.err(format!("expected type, found '{other}'")),
        };
        while self.eat(&TokenKind::Star) {
            t = Type::Ptr(Box::new(t));
        }
        Ok(t)
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        let is_static = self.eat(&TokenKind::KwStatic);
        let ret = self.ty()?;
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                params.push(self.param()?);
                if !self.eat(&TokenKind::Comma) {
                    self.expect(&TokenKind::RParen)?;
                    break;
                }
            }
        }
        self.expect(&TokenKind::LBrace)?;
        let body = self.block_body()?;
        Ok(Function {
            name,
            is_static,
            ret,
            params,
            body,
        })
    }

    fn param(&mut self) -> Result<Param, ParseError> {
        let ty = self.ty()?;
        let name = self.ident()?;
        let mut dims = Vec::new();
        while self.eat(&TokenKind::LBracket) {
            if self.eat(&TokenKind::RBracket) {
                dims.push(None);
            } else {
                dims.push(Some(self.expr()?));
                self.expect(&TokenKind::RBracket)?;
            }
        }
        if dims.len() > 2 {
            return self.err("arrays of more than two dimensions are not supported");
        }
        Ok(Param { name, ty, dims })
    }

    fn block_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut out = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.peek() == &TokenKind::Eof {
                return self.err("unexpected end of input inside block");
            }
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            TokenKind::LBrace => {
                self.bump();
                Ok(Stmt::Block(self.block_body()?))
            }
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwWhile => self.while_stmt(),
            TokenKind::KwFor => self.for_stmt(),
            TokenKind::KwSwitch => self.switch_stmt(),
            TokenKind::KwBreak => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Break)
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Continue)
            }
            TokenKind::KwReturn => {
                self.bump();
                let e = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return(e))
            }
            TokenKind::KwMakeStatic => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let mut vars = Vec::new();
                loop {
                    let name = self.ident()?;
                    let policy = if self.eat(&TokenKind::Colon) {
                        match self.ident()?.as_str() {
                            // `cache_all` optionally takes a capacity:
                            // `cache_all(k)` bounds the site to k retained
                            // specializations (second-chance eviction).
                            "cache_all" => {
                                if self.eat(&TokenKind::LParen) {
                                    let k =
                                        match self.peek().clone() {
                                            TokenKind::Int(k) if k >= 1 => {
                                                self.bump();
                                                k
                                            }
                                            _ => return self.err(
                                                "cache_all(k) requires an integer capacity >= 1",
                                            ),
                                        };
                                    self.expect(&TokenKind::RParen)?;
                                    Policy::CacheAllBounded(k as u32)
                                } else {
                                    Policy::CacheAll
                                }
                            }
                            "cache_one_unchecked" => Policy::CacheOneUnchecked,
                            "cache_indexed" => Policy::CacheIndexed,
                            other => return self.err(format!("unknown caching policy '{other}'")),
                        }
                    } else {
                        Policy::CacheAll
                    };
                    vars.push((name, policy));
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::MakeStatic(vars))
            }
            TokenKind::KwMakeDynamic => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let mut vars = Vec::new();
                loop {
                    vars.push(self.ident()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::MakeDynamic(vars))
            }
            TokenKind::KwPromote => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let v = self.ident()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Promote(v))
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(&TokenKind::Semi)?;
                Ok(s)
            }
        }
    }

    /// A declaration, assignment, increment, or expression — the statement
    /// forms legal in `for` headers (no trailing `;` consumed).
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.is_type_start() {
            return self.decl();
        }
        // Prefix increment/decrement.
        if matches!(self.peek(), TokenKind::PlusPlus | TokenKind::MinusMinus) {
            let op = self.bump();
            let lv = self.lvalue()?;
            let delta = if op == TokenKind::PlusPlus {
                AssignOp::Add
            } else {
                AssignOp::Sub
            };
            return Ok(Stmt::Assign {
                lv,
                op: delta,
                rhs: Expr::IntLit(1),
            });
        }
        let e = self.expr()?;
        let assign_op = match self.peek() {
            TokenKind::Assign => Some(AssignOp::Set),
            TokenKind::PlusAssign => Some(AssignOp::Add),
            TokenKind::MinusAssign => Some(AssignOp::Sub),
            TokenKind::StarAssign => Some(AssignOp::Mul),
            TokenKind::SlashAssign => Some(AssignOp::Div),
            TokenKind::PlusPlus => {
                self.bump();
                let lv = self.expr_to_lvalue(e)?;
                return Ok(Stmt::Assign {
                    lv,
                    op: AssignOp::Add,
                    rhs: Expr::IntLit(1),
                });
            }
            TokenKind::MinusMinus => {
                self.bump();
                let lv = self.expr_to_lvalue(e)?;
                return Ok(Stmt::Assign {
                    lv,
                    op: AssignOp::Sub,
                    rhs: Expr::IntLit(1),
                });
            }
            _ => None,
        };
        match assign_op {
            Some(op) => {
                self.bump();
                let rhs = self.expr()?;
                let lv = self.expr_to_lvalue(e)?;
                Ok(Stmt::Assign { lv, op, rhs })
            }
            None => Ok(Stmt::Expr(e)),
        }
    }

    fn expr_to_lvalue(&self, e: Expr) -> Result<LValue, ParseError> {
        match e {
            Expr::Var(name) => Ok(LValue::Var(name)),
            Expr::Index {
                base,
                indices,
                is_static: false,
            } => Ok(LValue::Elem { base, indices }),
            Expr::Index {
                is_static: true, ..
            } => Err(ParseError {
                message: "a static load (@) cannot be assigned to".into(),
                line: self.line(),
            }),
            _ => Err(ParseError {
                message: "expression is not assignable".into(),
                line: self.line(),
            }),
        }
    }

    fn lvalue(&mut self) -> Result<LValue, ParseError> {
        let e = self.postfix()?;
        self.expr_to_lvalue(e)
    }

    fn decl(&mut self) -> Result<Stmt, ParseError> {
        let ty = self.ty()?;
        let mut inits = Vec::new();
        loop {
            let name = self.ident()?;
            let init = if self.eat(&TokenKind::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            inits.push((name, init));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Stmt::Decl { ty, inits })
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&TokenKind::KwIf)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_branch = Box::new(self.stmt()?);
        let else_branch = if self.eat(&TokenKind::KwElse) {
            Some(Box::new(self.stmt()?))
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&TokenKind::KwWhile)?;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let body = Box::new(self.stmt()?);
        Ok(Stmt::While { cond, body })
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&TokenKind::KwFor)?;
        self.expect(&TokenKind::LParen)?;
        let init = if self.peek() == &TokenKind::Semi {
            None
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.expect(&TokenKind::Semi)?;
        let cond = if self.peek() == &TokenKind::Semi {
            None
        } else {
            Some(self.expr()?)
        };
        self.expect(&TokenKind::Semi)?;
        let step = if self.peek() == &TokenKind::RParen {
            None
        } else {
            Some(Box::new(self.simple_stmt()?))
        };
        self.expect(&TokenKind::RParen)?;
        let body = Box::new(self.stmt()?);
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
        })
    }

    fn switch_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&TokenKind::KwSwitch)?;
        self.expect(&TokenKind::LParen)?;
        let scrutinee = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::LBrace)?;
        let mut cases: Vec<(i64, Vec<Stmt>)> = Vec::new();
        let mut default: Vec<Stmt> = Vec::new();
        let mut saw_default = false;
        while !self.eat(&TokenKind::RBrace) {
            if self.eat(&TokenKind::KwCase) {
                let neg = self.eat(&TokenKind::Minus);
                let k = match self.bump() {
                    TokenKind::Int(v) => {
                        if neg {
                            -v
                        } else {
                            v
                        }
                    }
                    other => {
                        return self.err(format!("expected integer case label, found '{other}'"))
                    }
                };
                self.expect(&TokenKind::Colon)?;
                let body = self.case_body()?;
                if cases.iter().any(|(c, _)| *c == k) {
                    return self.err(format!("duplicate case label {k}"));
                }
                cases.push((k, body));
            } else if self.eat(&TokenKind::KwDefault) {
                self.expect(&TokenKind::Colon)?;
                if saw_default {
                    return self.err("duplicate default label");
                }
                saw_default = true;
                default = self.case_body()?;
            } else {
                return self.err(format!(
                    "expected 'case' or 'default' in switch, found '{}'",
                    self.peek()
                ));
            }
        }
        Ok(Stmt::Switch {
            scrutinee,
            cases,
            default,
        })
    }

    fn case_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut body = Vec::new();
        loop {
            match self.peek() {
                TokenKind::KwCase | TokenKind::KwDefault | TokenKind::RBrace => break,
                TokenKind::KwBreak => {
                    // `break;` ends the case (cases never fall through).
                    self.bump();
                    self.expect(&TokenKind::Semi)?;
                    break;
                }
                _ => body.push(self.stmt()?),
            }
        }
        Ok(body)
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.logic_or()
    }

    fn logic_or(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.logic_and()?;
        while self.eat(&TokenKind::OrOr) {
            let r = self.logic_and()?;
            e = Expr::Binary(BinOp::Or, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn logic_and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bit_or()?;
        while self.eat(&TokenKind::AndAnd) {
            let r = self.bit_or()?;
            e = Expr::Binary(BinOp::And, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bit_or(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bit_xor()?;
        while self.eat(&TokenKind::Pipe) {
            let r = self.bit_xor()?;
            e = Expr::Binary(BinOp::BitOr, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bit_xor(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.bit_and()?;
        while self.eat(&TokenKind::Caret) {
            let r = self.bit_and()?;
            e = Expr::Binary(BinOp::BitXor, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn bit_and(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.equality()?;
        while self.eat(&TokenKind::Amp) {
            let r = self.equality()?;
            e = Expr::Binary(BinOp::BitAnd, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.relational()?;
        loop {
            let op = match self.peek() {
                TokenKind::Eq => BinOp::Eq,
                TokenKind::Ne => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let r = self.relational()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.shift()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let r = self.shift()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::Shl => BinOp::Shl,
                TokenKind::Shr => BinOp::Shr,
                _ => break,
            };
            self.bump();
            let r = self.additive()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let r = self.multiplicative()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let r = self.unary()?;
            e = Expr::Binary(op, Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Unary(UnaryOp::Neg, Box::new(self.unary()?)))
            }
            TokenKind::Bang => {
                self.bump();
                Ok(Expr::Unary(UnaryOp::Not, Box::new(self.unary()?)))
            }
            TokenKind::Tilde => {
                self.bump();
                Ok(Expr::Unary(UnaryOp::BitNot, Box::new(self.unary()?)))
            }
            // Cast: `(int) e` or `(float) e`.
            TokenKind::LParen if matches!(self.peek2(), TokenKind::KwInt | TokenKind::KwFloat) => {
                self.bump();
                let op = match self.bump() {
                    TokenKind::KwInt => UnaryOp::CastInt,
                    TokenKind::KwFloat => UnaryOp::CastFloat,
                    _ => unreachable!(),
                };
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Unary(op, Box::new(self.unary()?)))
            }
            _ => self.postfix(),
        }
    }

    // The loop grows as postfix forms are added; keep the match form.
    #[allow(clippy::while_let_loop)]
    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                TokenKind::LBracket | TokenKind::At => {
                    let is_static = self.eat(&TokenKind::At);
                    self.expect(&TokenKind::LBracket)?;
                    let idx = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    e = match e {
                        Expr::Var(base) => Expr::Index {
                            base,
                            indices: vec![idx],
                            is_static,
                        },
                        Expr::Index {
                            base,
                            mut indices,
                            is_static: was_static,
                        } => {
                            if indices.len() >= 2 {
                                return self
                                    .err("arrays of more than two dimensions are not supported");
                            }
                            // Either all dims of an access are static (@) or
                            // none are; mixed forms like `a[i]@[j]` follow
                            // the last annotation, matching the paper's
                            // `cmatrix @[crow] @[ccol]` usage.
                            indices.push(idx);
                            Expr::Index {
                                base,
                                indices,
                                is_static: was_static || is_static,
                            }
                        }
                        _ => return self.err("only named arrays can be indexed"),
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::IntLit(v)),
            TokenKind::Float(v) => Ok(Expr::FloatLit(v)),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                self.expect(&TokenKind::RParen)?;
                                break;
                            }
                        }
                    }
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => self.err(format!("expected expression, found '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_function() {
        let p = parse_program("int f() { return 1; }").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].ret, Type::Int);
        assert_eq!(
            p.functions[0].body,
            vec![Stmt::Return(Some(Expr::IntLit(1)))]
        );
    }

    #[test]
    fn parses_params_with_dims() {
        let p = parse_program("void f(float image[][icols], int icols) {}").unwrap();
        let f = &p.functions[0];
        assert!(f.params[0].is_array());
        assert_eq!(f.params[0].dims.len(), 2);
        assert_eq!(f.params[0].dims[0], None);
        assert_eq!(f.params[0].dims[1], Some(Expr::Var("icols".into())));
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p = parse_program("int f() { return 1 + 2 * 3; }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::Return(Some(Expr::Binary(BinOp::Add, l, r))) => {
                assert_eq!(**l, Expr::IntLit(1));
                assert!(matches!(**r, Expr::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_make_static_with_policy() {
        let p = parse_program("void f(int x, int y) { make_static(x: cache_one_unchecked, y); }")
            .unwrap();
        assert_eq!(
            p.functions[0].body[0],
            Stmt::MakeStatic(vec![
                ("x".into(), Policy::CacheOneUnchecked),
                ("y".into(), Policy::CacheAll)
            ])
        );
    }

    #[test]
    fn parses_static_load() {
        let p = parse_program("float f(float m[][c], int c, int i, int j) { return m@[i]@[j]; }")
            .unwrap();
        match &p.functions[0].body[0] {
            Stmt::Return(Some(Expr::Index {
                base,
                indices,
                is_static,
            })) => {
                assert_eq!(base, "m");
                assert_eq!(indices.len(), 2);
                assert!(is_static);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_for_loop_with_increment() {
        let p = parse_program("void f(int n) { for (int i = 0; i < n; ++i) { } }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::For {
                init, cond, step, ..
            } => {
                assert!(init.is_some());
                assert!(cond.is_some());
                assert_eq!(
                    **step.as_ref().unwrap(),
                    Stmt::Assign {
                        lv: LValue::Var("i".into()),
                        op: AssignOp::Add,
                        rhs: Expr::IntLit(1)
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_postfix_increment_statement() {
        let p = parse_program("void f(int i) { i++; i--; }").unwrap();
        assert_eq!(
            p.functions[0].body[0],
            Stmt::Assign {
                lv: LValue::Var("i".into()),
                op: AssignOp::Add,
                rhs: Expr::IntLit(1)
            }
        );
    }

    #[test]
    fn parses_switch_without_fallthrough() {
        let p = parse_program(
            "int f(int x) { switch (x) { case 0: return 10; case 1: return 11; break; default: return -1; } return 0; }",
        )
        .unwrap();
        match &p.functions[0].body[0] {
            Stmt::Switch { cases, default, .. } => {
                assert_eq!(cases.len(), 2);
                assert_eq!(default.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_array_element_assignment() {
        let p = parse_program("void f(float a[n], int n) { a[0] = 1.0; a[1] += 2.0; }").unwrap();
        assert!(matches!(
            &p.functions[0].body[0],
            Stmt::Assign {
                lv: LValue::Elem { .. },
                op: AssignOp::Set,
                ..
            }
        ));
        assert!(matches!(
            &p.functions[0].body[1],
            Stmt::Assign {
                lv: LValue::Elem { .. },
                op: AssignOp::Add,
                ..
            }
        ));
    }

    #[test]
    fn parses_casts() {
        let p = parse_program("float f(int x) { return (float) x / 2.0; }").unwrap();
        match &p.functions[0].body[0] {
            Stmt::Return(Some(Expr::Binary(BinOp::Div, l, _))) => {
                assert!(matches!(**l, Expr::Unary(UnaryOp::CastFloat, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_assignment_to_static_load() {
        let err = parse_program("void f(float a[n], int n) { a@[0] = 1.0; }").unwrap_err();
        assert!(err.message.contains("static load"));
    }

    #[test]
    fn rejects_duplicate_case() {
        let err =
            parse_program("int f(int x) { switch (x) { case 1: case 1: } return 0; }").unwrap_err();
        assert!(err.message.contains("duplicate case"));
    }

    #[test]
    fn rejects_three_dimensional_access() {
        let err = parse_program("void f(float a[n], int n) { a[0][1][2] = 1.0; }").unwrap_err();
        assert!(err.message.contains("two dimensions"));
    }

    #[test]
    fn static_function_qualifier() {
        let p = parse_program("static float cost(float x) { return x * 2.0; }").unwrap();
        assert!(p.functions[0].is_static);
    }

    #[test]
    fn short_circuit_operators_parse() {
        let p = parse_program("int f(int a, int b) { return a && b || !a; }").unwrap();
        assert!(matches!(
            &p.functions[0].body[0],
            Stmt::Return(Some(Expr::Binary(BinOp::Or, _, _)))
        ));
    }

    #[test]
    fn error_carries_line_number() {
        let err = parse_program("int f() {\n  return $;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
