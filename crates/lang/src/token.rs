//! Tokens of the DyCL language.

use std::fmt;

/// A lexical token with its source line (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// The kinds of DyCL tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Identifier.
    Ident(String),

    // Keywords.
    KwInt,
    KwFloat,
    KwVoid,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwSwitch,
    KwCase,
    KwDefault,
    KwBreak,
    KwContinue,
    KwReturn,
    KwStatic,
    KwMakeStatic,
    KwMakeDynamic,
    KwPromote,

    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    At,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PlusPlus,
    MinusMinus,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(s: &str) -> Option<TokenKind> {
        Some(match s {
            "int" => TokenKind::KwInt,
            "float" | "double" => TokenKind::KwFloat,
            "void" => TokenKind::KwVoid,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "for" => TokenKind::KwFor,
            "switch" => TokenKind::KwSwitch,
            "case" => TokenKind::KwCase,
            "default" => TokenKind::KwDefault,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "return" => TokenKind::KwReturn,
            "static" => TokenKind::KwStatic,
            "make_static" => TokenKind::KwMakeStatic,
            "make_dynamic" => TokenKind::KwMakeDynamic,
            "promote" => TokenKind::KwPromote,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::KwInt => write!(f, "int"),
            TokenKind::KwFloat => write!(f, "float"),
            TokenKind::KwVoid => write!(f, "void"),
            TokenKind::KwIf => write!(f, "if"),
            TokenKind::KwElse => write!(f, "else"),
            TokenKind::KwWhile => write!(f, "while"),
            TokenKind::KwFor => write!(f, "for"),
            TokenKind::KwSwitch => write!(f, "switch"),
            TokenKind::KwCase => write!(f, "case"),
            TokenKind::KwDefault => write!(f, "default"),
            TokenKind::KwBreak => write!(f, "break"),
            TokenKind::KwContinue => write!(f, "continue"),
            TokenKind::KwReturn => write!(f, "return"),
            TokenKind::KwStatic => write!(f, "static"),
            TokenKind::KwMakeStatic => write!(f, "make_static"),
            TokenKind::KwMakeDynamic => write!(f, "make_dynamic"),
            TokenKind::KwPromote => write!(f, "promote"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Semi => write!(f, ";"),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::At => write!(f, "@"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::Assign => write!(f, "="),
            TokenKind::PlusAssign => write!(f, "+="),
            TokenKind::MinusAssign => write!(f, "-="),
            TokenKind::StarAssign => write!(f, "*="),
            TokenKind::SlashAssign => write!(f, "/="),
            TokenKind::PlusPlus => write!(f, "++"),
            TokenKind::MinusMinus => write!(f, "--"),
            TokenKind::Eq => write!(f, "=="),
            TokenKind::Ne => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::AndAnd => write!(f, "&&"),
            TokenKind::OrOr => write!(f, "||"),
            TokenKind::Bang => write!(f, "!"),
            TokenKind::Amp => write!(f, "&"),
            TokenKind::Pipe => write!(f, "|"),
            TokenKind::Caret => write!(f, "^"),
            TokenKind::Tilde => write!(f, "~"),
            TokenKind::Shl => write!(f, "<<"),
            TokenKind::Shr => write!(f, ">>"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("while"), Some(TokenKind::KwWhile));
        assert_eq!(
            TokenKind::keyword("make_static"),
            Some(TokenKind::KwMakeStatic)
        );
        assert_eq!(TokenKind::keyword("double"), Some(TokenKind::KwFloat));
        assert_eq!(TokenKind::keyword("banana"), None);
    }

    #[test]
    fn display_round_trips_punct() {
        assert_eq!(TokenKind::Shl.to_string(), "<<");
        assert_eq!(TokenKind::PlusAssign.to_string(), "+=");
    }
}
