//! # dyc-lang — the DyCL source language
//!
//! DyC annotated C programs. We reproduce that interface with **DyCL**, a
//! C-like language covering exactly the constructs the paper's benchmarks
//! use, plus DyC's annotations:
//!
//! * `make_static(v, ...)` — begin specializing on `v` downstream (§2.1).
//!   Each variable may carry a caching policy: `make_static(v:
//!   cache_one_unchecked, w)` (§2.2.3). The default is `cache_all`.
//! * `make_dynamic(v, ...)` — end specialization on `v`.
//! * `a@[i]` — a *static load* from an invariant part of a data structure
//!   (§2.2.6; the paper's `cmatrix @[crow] @[ccol]`).
//! * `static` on a function — a pure function whose calls with all-static
//!   arguments are executed at dynamic compile time (*static calls*).
//! * `promote(v)` — an *internal dynamic-to-static promotion* point
//!   (§2.2.2).
//!
//! ## Example
//!
//! ```
//! use dyc_lang::parse_program;
//!
//! let src = r#"
//!     int power(int base, int exp) {
//!         make_static(exp);
//!         int r = 1;
//!         while (exp > 0) { r = r * base; exp = exp - 1; }
//!         return r;
//!     }
//! "#;
//! let program = parse_program(src).unwrap();
//! assert_eq!(program.functions[0].name, "power");
//! ```

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;

pub use ast::{
    AssignOp, BinOp, Expr, Function, LValue, Param, Policy, Program, Stmt, Type, UnaryOp,
};
pub use eval::{EvalError, EvalValue, Evaluator};
pub use lexer::{lex, LexError};
pub use parser::{parse_program, ParseError};
pub use token::{Token, TokenKind};
