//! The DyCL lexer.

use crate::token::{Token, TokenKind};
use std::error::Error;
use std::fmt;

/// A lexical error with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description of the problem.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl Error for LexError {}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

/// Tokenize DyCL source. The token stream always ends with
/// [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`LexError`] on malformed numbers or unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    loop {
        lx.skip_trivia()?;
        let line = lx.line;
        match lx.next_kind()? {
            TokenKind::Eof => {
                out.push(Token {
                    kind: TokenKind::Eof,
                    line,
                });
                return Ok(out);
            }
            kind => out.push(Token { kind, line }),
        }
    }
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> LexError {
        LexError {
            message: msg.into(),
            line: self.line,
        }
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            None => {
                                return Err(LexError {
                                    message: "unterminated block comment".into(),
                                    line: start,
                                })
                            }
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_kind(&mut self) -> Result<TokenKind, LexError> {
        let Some(c) = self.peek() else {
            return Ok(TokenKind::Eof);
        };
        if c.is_ascii_digit() || (c == b'.' && self.peek2().is_some_and(|d| d.is_ascii_digit())) {
            return self.number();
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            return Ok(self.ident());
        }
        self.bump();
        let two = |lx: &mut Lexer<'a>, second: u8, yes: TokenKind, no: TokenKind| {
            if lx.peek() == Some(second) {
                lx.bump();
                yes
            } else {
                no
            }
        };
        Ok(match c {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semi,
            b':' => TokenKind::Colon,
            b'@' => TokenKind::At,
            b'~' => TokenKind::Tilde,
            b'^' => TokenKind::Caret,
            b'+' => match self.peek() {
                Some(b'+') => {
                    self.bump();
                    TokenKind::PlusPlus
                }
                Some(b'=') => {
                    self.bump();
                    TokenKind::PlusAssign
                }
                _ => TokenKind::Plus,
            },
            b'-' => match self.peek() {
                Some(b'-') => {
                    self.bump();
                    TokenKind::MinusMinus
                }
                Some(b'=') => {
                    self.bump();
                    TokenKind::MinusAssign
                }
                _ => TokenKind::Minus,
            },
            b'*' => two(self, b'=', TokenKind::StarAssign, TokenKind::Star),
            b'/' => two(self, b'=', TokenKind::SlashAssign, TokenKind::Slash),
            b'%' => TokenKind::Percent,
            b'=' => two(self, b'=', TokenKind::Eq, TokenKind::Assign),
            b'!' => two(self, b'=', TokenKind::Ne, TokenKind::Bang),
            b'<' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    TokenKind::Le
                }
                Some(b'<') => {
                    self.bump();
                    TokenKind::Shl
                }
                _ => TokenKind::Lt,
            },
            b'>' => match self.peek() {
                Some(b'=') => {
                    self.bump();
                    TokenKind::Ge
                }
                Some(b'>') => {
                    self.bump();
                    TokenKind::Shr
                }
                _ => TokenKind::Gt,
            },
            b'&' => two(self, b'&', TokenKind::AndAnd, TokenKind::Amp),
            b'|' => two(self, b'|', TokenKind::OrOr, TokenKind::Pipe),
            other => return Err(self.err(format!("unexpected character '{}'", other as char))),
        })
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        TokenKind::keyword(s).unwrap_or_else(|| TokenKind::Ident(s.to_string()))
    }

    fn number(&mut self) -> Result<TokenKind, LexError> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' if !is_float => {
                    is_float = true;
                    self.bump();
                }
                b'e' | b'E' => {
                    is_float = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii number");
        if is_float {
            s.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|_| self.err(format!("malformed float literal '{s}'")))
        } else {
            s.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|_| self.err(format!("malformed integer literal '{s}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                TokenKind::KwInt,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(42),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_floats_and_exponents() {
        assert_eq!(kinds("1.5")[0], TokenKind::Float(1.5));
        assert_eq!(kinds("2e3")[0], TokenKind::Float(2000.0));
        assert_eq!(kinds("1.5e-2")[0], TokenKind::Float(0.015));
        assert_eq!(kinds(".5")[0], TokenKind::Float(0.5));
    }

    #[test]
    fn lexes_compound_operators() {
        assert_eq!(
            kinds("a += b << 2 && c++")[1..6],
            [
                TokenKind::PlusAssign,
                TokenKind::Ident("b".into()),
                TokenKind::Shl,
                TokenKind::Int(2),
                TokenKind::AndAnd,
            ]
        );
    }

    #[test]
    fn lexes_static_load_annotation() {
        assert_eq!(
            kinds("cmatrix @[crow]")[0..3],
            [
                TokenKind::Ident("cmatrix".into()),
                TokenKind::At,
                TokenKind::LBracket,
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let toks = lex("// line comment\n/* block\ncomment */ x").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("x".into()));
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        let err = lex("/* oops").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn rejects_stray_character() {
        assert!(lex("int $x;").is_err());
    }

    #[test]
    fn minus_minus_and_minus_assign() {
        assert_eq!(kinds("x-- -= -")[1], TokenKind::MinusMinus);
        assert_eq!(kinds("x-- -= -")[2], TokenKind::MinusAssign);
        assert_eq!(kinds("x-- -= -")[3], TokenKind::Minus);
    }
}
