//! Pretty printer for DyCL ASTs.
//!
//! Emits parseable DyCL source; `parse(pretty(ast)) == ast` is checked by a
//! property test in the integration suite. Also used by the `figures`
//! harness to show the annotated benchmark sources (the paper's Figure 2).

use crate::ast::*;
use std::fmt::Write as _;

/// Render a whole program.
pub fn program_to_string(p: &Program) -> String {
    let mut s = String::new();
    for f in &p.functions {
        s.push_str(&function_to_string(f));
        s.push('\n');
    }
    s
}

/// Render one function.
pub fn function_to_string(f: &Function) -> String {
    let mut s = String::new();
    if f.is_static {
        s.push_str("static ");
    }
    let _ = write!(s, "{} {}(", type_str(&f.ret), f.name);
    let params: Vec<String> = f.params.iter().map(param_str).collect();
    let _ = write!(s, "{}", params.join(", "));
    s.push_str(") {\n");
    for st in &f.body {
        stmt_to(&mut s, st, 1);
    }
    s.push_str("}\n");
    s
}

fn indent(s: &mut String, n: usize) {
    for _ in 0..n {
        s.push_str("    ");
    }
}

fn type_str(t: &Type) -> String {
    match t {
        Type::Int => "int".into(),
        Type::Float => "float".into(),
        Type::Void => "void".into(),
        Type::Ptr(inner) => format!("{}*", type_str(inner)),
    }
}

fn param_str(p: &Param) -> String {
    let mut s = format!("{} {}", type_str(&p.ty), p.name);
    for d in &p.dims {
        match d {
            None => s.push_str("[]"),
            Some(e) => {
                let _ = write!(s, "[{}]", expr_str(e));
            }
        }
    }
    s
}

fn stmt_to(s: &mut String, st: &Stmt, depth: usize) {
    match st {
        Stmt::Block(body) => {
            indent(s, depth);
            s.push_str("{\n");
            for inner in body {
                stmt_to(s, inner, depth + 1);
            }
            indent(s, depth);
            s.push_str("}\n");
        }
        Stmt::Decl { ty, inits } => {
            indent(s, depth);
            let parts: Vec<String> = inits
                .iter()
                .map(|(n, e)| match e {
                    Some(e) => format!("{n} = {}", expr_str(e)),
                    None => n.clone(),
                })
                .collect();
            let _ = writeln!(s, "{} {};", type_str(ty), parts.join(", "));
        }
        Stmt::Assign { lv, op, rhs } => {
            indent(s, depth);
            let ops = match op {
                AssignOp::Set => "=",
                AssignOp::Add => "+=",
                AssignOp::Sub => "-=",
                AssignOp::Mul => "*=",
                AssignOp::Div => "/=",
            };
            let _ = writeln!(s, "{} {} {};", lvalue_str(lv), ops, expr_str(rhs));
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            indent(s, depth);
            let _ = writeln!(s, "if ({})", expr_str(cond));
            stmt_to(s, &braced(then_branch), depth);
            if let Some(e) = else_branch {
                indent(s, depth);
                s.push_str("else\n");
                stmt_to(s, &braced(e), depth);
            }
        }
        Stmt::While { cond, body } => {
            indent(s, depth);
            let _ = writeln!(s, "while ({})", expr_str(cond));
            stmt_to(s, &braced(body), depth);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            indent(s, depth);
            let init_s = init.as_deref().map(simple_str).unwrap_or_default();
            let cond_s = cond.as_ref().map(expr_str).unwrap_or_default();
            let step_s = step.as_deref().map(simple_str).unwrap_or_default();
            let _ = writeln!(s, "for ({init_s}; {cond_s}; {step_s})");
            stmt_to(s, &braced(body), depth);
        }
        Stmt::Switch {
            scrutinee,
            cases,
            default,
        } => {
            indent(s, depth);
            let _ = writeln!(s, "switch ({}) {{", expr_str(scrutinee));
            for (k, body) in cases {
                indent(s, depth);
                let _ = writeln!(s, "case {k}:");
                for inner in body {
                    stmt_to(s, inner, depth + 1);
                }
                indent(s, depth + 1);
                s.push_str("break;\n");
            }
            if !default.is_empty() {
                indent(s, depth);
                s.push_str("default:\n");
                for inner in default {
                    stmt_to(s, inner, depth + 1);
                }
            }
            indent(s, depth);
            s.push_str("}\n");
        }
        Stmt::Break => {
            indent(s, depth);
            s.push_str("break;\n");
        }
        Stmt::Continue => {
            indent(s, depth);
            s.push_str("continue;\n");
        }
        Stmt::Return(e) => {
            indent(s, depth);
            match e {
                Some(e) => {
                    let _ = writeln!(s, "return {};", expr_str(e));
                }
                None => s.push_str("return;\n"),
            }
        }
        Stmt::Expr(e) => {
            indent(s, depth);
            let _ = writeln!(s, "{};", expr_str(e));
        }
        Stmt::MakeStatic(vars) => {
            indent(s, depth);
            let parts: Vec<String> = vars
                .iter()
                .map(|(n, p)| match p {
                    Policy::CacheAll => n.clone(),
                    Policy::CacheAllBounded(k) => format!("{n}: cache_all({k})"),
                    Policy::CacheOneUnchecked => format!("{n}: cache_one_unchecked"),
                    Policy::CacheIndexed => format!("{n}: cache_indexed"),
                })
                .collect();
            let _ = writeln!(s, "make_static({});", parts.join(", "));
        }
        Stmt::MakeDynamic(vars) => {
            indent(s, depth);
            let _ = writeln!(s, "make_dynamic({});", vars.join(", "));
        }
        Stmt::Promote(v) => {
            indent(s, depth);
            let _ = writeln!(s, "promote({v});");
        }
    }
}

/// Wrap a non-block statement in a block so the printed form is
/// unambiguous regardless of nesting (dangling else, etc.).
fn braced(st: &Stmt) -> Stmt {
    match st {
        Stmt::Block(_) => st.clone(),
        other => Stmt::Block(vec![other.clone()]),
    }
}

fn simple_str(st: &Stmt) -> String {
    let mut s = String::new();
    stmt_to(&mut s, st, 0);
    s.trim_end().trim_end_matches(';').to_string()
}

fn lvalue_str(lv: &LValue) -> String {
    match lv {
        LValue::Var(n) => n.clone(),
        LValue::Elem { base, indices } => {
            let mut s = base.clone();
            for i in indices {
                let _ = write!(s, "[{}]", expr_str(i));
            }
            s
        }
    }
}

/// Render an expression (fully parenthesized to keep it unambiguous).
pub fn expr_str(e: &Expr) -> String {
    match e {
        Expr::IntLit(v) => v.to_string(),
        Expr::FloatLit(v) => {
            let s = format!("{v}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Expr::Var(n) => n.clone(),
        Expr::Unary(op, inner) => {
            let o = match op {
                UnaryOp::Neg => "-",
                UnaryOp::Not => "!",
                UnaryOp::BitNot => "~",
                UnaryOp::CastInt => "(int) ",
                UnaryOp::CastFloat => "(float) ",
            };
            // A nested unary must be parenthesized: `-(-x)` lexes, `--x`
            // does not (and the parser has no `--` token).
            let inner_s = match inner.as_ref() {
                Expr::Unary(..) => format!("({})", expr_str(inner)),
                _ => wrap(inner),
            };
            format!("{o}{inner_s}")
        }
        Expr::Binary(op, l, r) => {
            let o = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "&&",
                BinOp::Or => "||",
                BinOp::BitAnd => "&",
                BinOp::BitOr => "|",
                BinOp::BitXor => "^",
                BinOp::Shl => "<<",
                BinOp::Shr => ">>",
            };
            format!("{} {o} {}", wrap(l), wrap(r))
        }
        Expr::Index {
            base,
            indices,
            is_static,
        } => {
            let mut s = base.clone();
            for i in indices {
                if *is_static {
                    s.push('@');
                }
                let _ = write!(s, "[{}]", expr_str(i));
            }
            s
        }
        Expr::Call { name, args } => {
            let parts: Vec<String> = args.iter().map(expr_str).collect();
            format!("{name}({})", parts.join(", "))
        }
    }
}

fn wrap(e: &Expr) -> String {
    match e {
        Expr::Binary(..) => format!("({})", expr_str(e)),
        _ => expr_str(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn round_trip(src: &str) {
        let p1 = parse_program(src).unwrap();
        let printed = program_to_string(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n---\n{printed}"));
        assert_eq!(p1, p2, "round trip changed the AST:\n{printed}");
    }

    #[test]
    fn round_trips_annotated_convolution_style_code() {
        round_trip(
            r#"
            void do_convol(float image[][icols], int irows, int icols,
                           float cmatrix[][ccols], int crows, int ccols,
                           float outbuf[][icols]) {
                float x, sum, weighted_x, weight;
                int crow, ccol, irow, icol;
                make_static(cmatrix, crows, ccols, crow, ccol);
                for (irow = 0; irow < irows; ++irow) {
                    for (icol = 0; icol < icols; ++icol) {
                        sum = 0.0;
                        for (crow = 0; crow < crows; ++crow) {
                            for (ccol = 0; ccol < ccols; ++ccol) {
                                weight = cmatrix@[crow]@[ccol];
                                x = image[irow + crow][icol + ccol];
                                weighted_x = x * weight;
                                sum = sum + weighted_x;
                            }
                        }
                        outbuf[irow][icol] = sum;
                    }
                }
            }
            "#,
        );
    }

    #[test]
    fn round_trips_control_flow_zoo() {
        round_trip(
            r#"
            int f(int a, int b) {
                int r = 0;
                if (a > b) { r = 1; } else { r = 2; }
                while (a > 0) { a -= 1; if (a == 3) { break; } continue; }
                switch (b) {
                    case 0:
                        r = 5;
                        break;
                    case -2:
                        r = 6;
                        break;
                    default:
                        r = 7;
                }
                promote(r);
                make_dynamic(r);
                return r;
            }
            "#,
        );
    }

    #[test]
    fn float_literals_keep_a_decimal_point() {
        assert_eq!(expr_str(&Expr::FloatLit(1.0)), "1.0");
        assert_eq!(expr_str(&Expr::FloatLit(0.25)), "0.25");
    }

    #[test]
    fn binary_printing_parenthesizes() {
        let e = Expr::Binary(
            BinOp::Mul,
            Box::new(Expr::Binary(
                BinOp::Add,
                Box::new(Expr::Var("a".into())),
                Box::new(Expr::Var("b".into())),
            )),
            Box::new(Expr::Var("c".into())),
        );
        assert_eq!(expr_str(&e), "(a + b) * c");
    }
}
