//! # dyc-vm — the target machine for DyC-RS
//!
//! The paper ran on a DEC Alpha 21164. We substitute a deterministic
//! register-based virtual machine with a cycle cost model calibrated to that
//! machine (see [`cost`]) and a direct-mapped L1 instruction-cache simulator
//! (see [`icache`]). All performance results in the reproduction are reported
//! in *modeled cycles*, mirroring the paper's cycle-based metrics
//! (asymptotic speedup `s/d`, break-even `o/(s-d)`).
//!
//! The VM is the code-generation target of both the static compiler and the
//! run-time dynamic compiler. Dynamically generated code is installed as
//! additional [`module::CodeFunc`]s at run time; the [`isa::Instr::Dispatch`]
//! instruction is the hook through which running code re-enters the run-time
//! system (code-cache lookup, lazy specialization, internal
//! dynamic-to-static promotion).
//!
//! ## Example
//!
//! ```
//! use dyc_vm::prelude::*;
//!
//! let mut module = Module::new();
//! let mut f = CodeFunc::new("answer", 1, 2);
//! f.push(Instr::MovI { dst: 1, imm: 40 });
//! f.push(Instr::IAlu { op: IAluOp::Add, dst: 0, a: 1, b: Operand::Imm(2) });
//! f.push(Instr::Ret { src: Some(0) });
//! let id = module.add_func(f);
//!
//! let mut vm = Vm::new(CostModel::alpha21164());
//! let out = vm.call(&mut module.clone(), id, &[Value::I(0)]).unwrap();
//! assert_eq!(out, Some(Value::I(42)));
//! ```

pub mod cost;
pub mod host;
pub mod icache;
pub mod interp;
pub mod isa;
pub mod mem;
pub mod module;
pub mod pretty;
pub mod stats;
pub mod value;

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::cost::CostModel;
    pub use crate::host::HostFn;
    pub use crate::icache::ICache;
    pub use crate::interp::{DispatchHandler, DispatchOutcome, Vm, VmError};
    pub use crate::isa::{instr_shape, Cc, FAluOp, IAluOp, Instr, Operand, Reg, Ty, UnOp};
    pub use crate::mem::Mem;
    pub use crate::module::{CodeFunc, FuncId, Module};
    pub use crate::stats::ExecStats;
    pub use crate::value::Value;
}

pub use prelude::*;
