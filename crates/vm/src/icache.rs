//! Direct-mapped L1 instruction-cache simulator.
//!
//! The 21164's L1 I-cache is 8KB, direct-mapped, with 32-byte lines. The
//! paper's pnmconvol result hinges on it: without dynamic dead-assignment
//! elimination "the amount of generated code exceeded the size of the L1
//! cache by a factor of 2.7, causing slowdowns relative to the static code"
//! (§4.4.4). Each VM instruction occupies one 4-byte slot, so a line holds 8
//! instructions.
//!
//! Code placement: every function (static or dynamically generated) is
//! assigned a distinct address range by the [`Module`](crate::module::Module)
//! so that different code bodies genuinely compete for cache lines.

/// Direct-mapped I-cache model.
#[derive(Debug, Clone)]
pub struct ICache {
    /// log2(line size in bytes).
    line_shift: u32,
    /// Tag store, one entry per line; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Number of accesses.
    accesses: u64,
    /// Number of misses.
    misses: u64,
}

/// Bytes occupied by one VM instruction for cache-addressing purposes.
pub const INSTR_BYTES: u64 = 4;

impl ICache {
    /// Create a direct-mapped cache of `size_bytes` with `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics unless both sizes are powers of two and
    /// `size_bytes >= line_bytes`.
    pub fn new(size_bytes: u64, line_bytes: u64) -> ICache {
        assert!(
            size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(size_bytes >= line_bytes);
        let lines = (size_bytes / line_bytes) as usize;
        ICache {
            line_shift: line_bytes.trailing_zeros(),
            tags: vec![u64::MAX; lines],
            accesses: 0,
            misses: 0,
        }
    }

    /// The 21164 configuration: 8KB, direct-mapped, 32-byte lines.
    pub fn alpha21164() -> ICache {
        ICache::new(8 * 1024, 32)
    }

    /// Simulate a fetch of the instruction at byte address `addr`.
    /// Returns `true` on a miss.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let line = addr >> self.line_shift;
        let idx = (line as usize) % self.tags.len();
        if self.tags[idx] == line {
            false
        } else {
            self.tags[idx] = line;
            self.misses += 1;
            true
        }
    }

    /// Number of fetches simulated.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio (0 if no accesses yet).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Capacity in instructions (how much straight-line code fits).
    pub fn capacity_instrs(&self) -> u64 {
        (self.tags.len() as u64) << self.line_shift >> INSTR_BYTES.trailing_zeros()
    }

    /// Invalidate all lines, preserving statistics. The run-time system
    /// calls this after installing new code ("operations to ensure
    /// instruction-cache coherence" are one of the overhead sources listed
    /// in §4.2).
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
    }

    /// Reset statistics and contents.
    pub fn reset(&mut self) {
        self.flush();
        self.accesses = 0;
        self.misses = 0;
    }
}

impl Default for ICache {
    fn default() -> Self {
        ICache::alpha21164()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_fetch_misses_once_per_line() {
        let mut c = ICache::new(1024, 32);
        // 64 instructions = 256 bytes = 8 lines.
        for i in 0..64u64 {
            c.access(i * INSTR_BYTES);
        }
        assert_eq!(c.accesses(), 64);
        assert_eq!(c.misses(), 8);
    }

    #[test]
    fn loop_that_fits_hits_after_warmup() {
        let mut c = ICache::new(1024, 32);
        for _round in 0..10 {
            for i in 0..16u64 {
                c.access(i * INSTR_BYTES);
            }
        }
        // 16 instructions = 2 lines; only the first round misses.
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn loop_larger_than_cache_thrashes() {
        let mut c = ICache::new(256, 32); // 8 lines, 64 instructions capacity
        let body = 128u64; // 2x capacity
        for _round in 0..4 {
            for i in 0..body {
                c.access(i * INSTR_BYTES);
            }
        }
        // Every line conflicts with its alias: all accesses at line
        // granularity miss in every round.
        assert_eq!(c.misses(), 4 * body / 8);
        assert!(c.miss_ratio() > 0.12);
    }

    #[test]
    fn capacity_matches_config() {
        assert_eq!(ICache::alpha21164().capacity_instrs(), 2048);
    }

    #[test]
    fn flush_preserves_stats() {
        let mut c = ICache::new(256, 32);
        c.access(0);
        c.flush();
        assert_eq!(c.accesses(), 1);
        assert_eq!(c.misses(), 1);
        assert!(c.access(0)); // misses again after flush
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = ICache::new(1000, 32);
    }
}
