//! Execution statistics: cycles, instruction counts, dispatch accounting.
//!
//! The cycle counters are the reproduction's analogue of the paper's
//! `getrusage`/hardware-cycle-counter measurements (§3.3). Dispatch and
//! dynamic-compilation cycles are tracked separately so Table 3's overhead
//! column (`cycles per dynamically generated instruction`) and break-even
//! points (`o/(s-d)`) can be computed exactly as in the paper.

/// Counters accumulated by a [`Vm`](crate::interp::Vm) run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Cycles spent executing ordinary instructions (cost model).
    pub exec_cycles: u64,
    /// Cycles added by I-cache misses.
    pub icache_miss_cycles: u64,
    /// Cycles charged by dispatch policies (cache lookups, indirect jumps).
    pub dispatch_cycles: u64,
    /// Cycles charged to run-time (dynamic) compilation.
    pub dyncomp_cycles: u64,
    /// Dynamic instruction count (instructions executed).
    pub instrs_executed: u64,
    /// Number of dispatches performed.
    pub dispatches: u64,
    /// Number of dispatch misses (specializations triggered).
    pub dispatch_misses: u64,
}

impl ExecStats {
    /// Fresh, zeroed counters.
    pub fn new() -> ExecStats {
        ExecStats::default()
    }

    /// Cycles attributable to *running* code (execution + I-cache +
    /// dispatch), i.e. excluding dynamic compilation. This is the `d` (or
    /// `s`) of the paper's speedup formula.
    pub fn run_cycles(&self) -> u64 {
        self.exec_cycles + self.icache_miss_cycles + self.dispatch_cycles
    }

    /// Total cycles including dynamic-compilation overhead.
    pub fn total_cycles(&self) -> u64 {
        self.run_cycles() + self.dyncomp_cycles
    }

    /// Difference since an earlier snapshot (counters only grow).
    pub fn delta_since(&self, earlier: &ExecStats) -> ExecStats {
        ExecStats {
            exec_cycles: self.exec_cycles - earlier.exec_cycles,
            icache_miss_cycles: self.icache_miss_cycles - earlier.icache_miss_cycles,
            dispatch_cycles: self.dispatch_cycles - earlier.dispatch_cycles,
            dyncomp_cycles: self.dyncomp_cycles - earlier.dyncomp_cycles,
            instrs_executed: self.instrs_executed - earlier.instrs_executed,
            dispatches: self.dispatches - earlier.dispatches,
            dispatch_misses: self.dispatch_misses - earlier.dispatch_misses,
        }
    }

    /// Merge another stats block into this one.
    pub fn absorb(&mut self, other: &ExecStats) {
        self.exec_cycles += other.exec_cycles;
        self.icache_miss_cycles += other.icache_miss_cycles;
        self.dispatch_cycles += other.dispatch_cycles;
        self.dyncomp_cycles += other.dyncomp_cycles;
        self.instrs_executed += other.instrs_executed;
        self.dispatches += other.dispatches;
        self.dispatch_misses += other.dispatch_misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_cycles_exclude_dyncomp() {
        let s = ExecStats {
            exec_cycles: 100,
            icache_miss_cycles: 20,
            dispatch_cycles: 10,
            dyncomp_cycles: 500,
            ..ExecStats::new()
        };
        assert_eq!(s.run_cycles(), 130);
        assert_eq!(s.total_cycles(), 630);
    }

    #[test]
    fn delta_and_absorb_are_inverses() {
        let a = ExecStats {
            exec_cycles: 10,
            instrs_executed: 3,
            ..ExecStats::new()
        };
        let mut b = a.clone();
        let extra = ExecStats {
            exec_cycles: 7,
            instrs_executed: 2,
            ..ExecStats::new()
        };
        b.absorb(&extra);
        assert_eq!(b.delta_since(&a), extra);
    }
}
