//! Host (external) functions callable from VM code.
//!
//! These stand in for the C library functions the paper's benchmarks call
//! (`cos` in chebyshev, math helpers elsewhere) plus the harness I/O the
//! benchmarks need. Pure host functions can be annotated `static` in DyCL
//! source, making calls to them *static calls* (§2.2.6) that are memoized at
//! dynamic compile time.

use crate::value::Value;
use std::fmt;

/// Identifiers of host functions known to the VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostFn {
    /// `cos(x)` — pure.
    Cos,
    /// `sin(x)` — pure.
    Sin,
    /// `sqrt(x)` — pure.
    Sqrt,
    /// `fabs(x)` — pure.
    Fabs,
    /// `pow(x, y)` — pure.
    Pow,
    /// `exp(x)` — pure.
    Exp,
    /// `log(x)` — pure.
    Log,
    /// `floor(x)` — pure.
    Floor,
    /// `abs(i)` on integers — pure.
    IAbs,
    /// Print an integer to the VM output buffer (observable effect).
    PrintI,
    /// Print a float to the VM output buffer (observable effect).
    PrintF,
}

impl HostFn {
    /// Look up a host function by its DyCL source name.
    pub fn by_name(name: &str) -> Option<HostFn> {
        Some(match name {
            "cos" => HostFn::Cos,
            "sin" => HostFn::Sin,
            "sqrt" => HostFn::Sqrt,
            "fabs" => HostFn::Fabs,
            "pow" => HostFn::Pow,
            "exp" => HostFn::Exp,
            "log" => HostFn::Log,
            "floor" => HostFn::Floor,
            "iabs" => HostFn::IAbs,
            "print_int" => HostFn::PrintI,
            "print_float" => HostFn::PrintF,
            _ => return None,
        })
    }

    /// Source-level name.
    pub fn name(self) -> &'static str {
        match self {
            HostFn::Cos => "cos",
            HostFn::Sin => "sin",
            HostFn::Sqrt => "sqrt",
            HostFn::Fabs => "fabs",
            HostFn::Pow => "pow",
            HostFn::Exp => "exp",
            HostFn::Log => "log",
            HostFn::Floor => "floor",
            HostFn::IAbs => "iabs",
            HostFn::PrintI => "print_int",
            HostFn::PrintF => "print_float",
        }
    }

    /// Number of arguments expected.
    pub fn arity(self) -> usize {
        match self {
            HostFn::Pow => 2,
            _ => 1,
        }
    }

    /// True if the function has no side effects — these may be invoked at
    /// dynamic compile time when all arguments are static (static calls).
    pub fn is_pure(self) -> bool {
        !matches!(self, HostFn::PrintI | HostFn::PrintF)
    }

    /// True if the function returns a value.
    pub fn has_result(self) -> bool {
        self.is_pure()
    }

    /// Modeled execution cost in cycles. `cos`/`sin` and friends are the
    /// dominant cost in chebyshev; the Alpha ran them in software at roughly
    /// this many cycles.
    pub fn cost(self) -> u64 {
        match self {
            HostFn::Cos | HostFn::Sin => 90,
            HostFn::Sqrt => 60,
            HostFn::Pow | HostFn::Exp | HostFn::Log => 120,
            HostFn::Fabs | HostFn::Floor | HostFn::IAbs => 4,
            HostFn::PrintI | HostFn::PrintF => 40,
        }
    }

    /// Evaluate the pure host functions; `output` receives printed values.
    ///
    /// # Panics
    ///
    /// Panics if given the wrong number or type of arguments; verified code
    /// never does.
    pub fn eval(self, args: &[Value], output: &mut Vec<Value>) -> Option<Value> {
        match self {
            HostFn::Cos => Some(Value::F(args[0].as_f().cos())),
            HostFn::Sin => Some(Value::F(args[0].as_f().sin())),
            HostFn::Sqrt => Some(Value::F(args[0].as_f().sqrt())),
            HostFn::Fabs => Some(Value::F(args[0].as_f().abs())),
            HostFn::Pow => Some(Value::F(args[0].as_f().powf(args[1].as_f()))),
            HostFn::Exp => Some(Value::F(args[0].as_f().exp())),
            HostFn::Log => Some(Value::F(args[0].as_f().ln())),
            HostFn::Floor => Some(Value::F(args[0].as_f().floor())),
            HostFn::IAbs => Some(Value::I(args[0].as_i().wrapping_abs())),
            HostFn::PrintI => {
                output.push(Value::I(args[0].as_i()));
                None
            }
            HostFn::PrintF => {
                output.push(Value::F(args[0].as_f()));
                None
            }
        }
    }
}

impl fmt::Display for HostFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_round_trip() {
        for f in [
            HostFn::Cos,
            HostFn::Sin,
            HostFn::Sqrt,
            HostFn::Fabs,
            HostFn::Pow,
            HostFn::Exp,
            HostFn::Log,
            HostFn::Floor,
            HostFn::IAbs,
            HostFn::PrintI,
            HostFn::PrintF,
        ] {
            assert_eq!(HostFn::by_name(f.name()), Some(f));
        }
        assert_eq!(HostFn::by_name("no_such_fn"), None);
    }

    #[test]
    fn pure_functions_return_values() {
        let mut out = Vec::new();
        let v = HostFn::Cos.eval(&[Value::F(0.0)], &mut out).unwrap();
        assert_eq!(v, Value::F(1.0));
        assert!(out.is_empty());
    }

    #[test]
    fn print_is_effectful() {
        let mut out = Vec::new();
        assert!(HostFn::PrintI.eval(&[Value::I(7)], &mut out).is_none());
        assert_eq!(out, vec![Value::I(7)]);
        assert!(!HostFn::PrintI.is_pure());
    }

    #[test]
    fn pow_takes_two_args() {
        assert_eq!(HostFn::Pow.arity(), 2);
        let mut out = Vec::new();
        let v = HostFn::Pow
            .eval(&[Value::F(2.0), Value::F(10.0)], &mut out)
            .unwrap();
        assert_eq!(v, Value::F(1024.0));
    }
}
