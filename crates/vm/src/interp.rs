//! The VM interpreter.
//!
//! Executes [`Module`] code under the cycle cost model, optionally
//! simulating the L1 I-cache. The [`DispatchHandler`] trait is the seam
//! between running code and the run-time system: a
//! [`Instr::Dispatch`](crate::isa::Instr) instruction hands
//! control to the handler, which looks up (or generates) specialized code
//! and names the function to invoke. The handler receives `&mut Vm` and
//! `&mut Module`, so a dynamic compiler can execute *static calls* by
//! re-entering [`Vm::call`] and can install freshly generated functions —
//! exactly the capabilities DyC's generating extensions have.

use crate::cost::CostModel;
#[cfg(test)]
use crate::host::HostFn;
use crate::icache::ICache;
use crate::isa::{Cc, FAluOp, IAluOp, Instr, Operand, Reg, UnOp};
use crate::mem::Mem;
use crate::module::{FuncId, Module};
use crate::stats::ExecStats;
use crate::value::Value;
use std::error::Error;
use std::fmt;

/// Errors surfaced while executing guest code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Integer division by zero in guest code.
    DivideByZero,
    /// The step budget was exhausted (runaway guest loop).
    StepLimit,
    /// A `Dispatch` instruction executed but no handler was supplied.
    NoDispatchHandler,
    /// The dispatch handler failed (message from the run-time system).
    Dispatch(String),
    /// `pc` ran off the end of a function (missing terminator).
    PcOutOfRange,
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::DivideByZero => write!(f, "integer division by zero"),
            VmError::StepLimit => write!(f, "step limit exceeded"),
            VmError::NoDispatchHandler => {
                write!(f, "dispatch executed without a run-time system attached")
            }
            VmError::Dispatch(m) => write!(f, "dispatch failed: {m}"),
            VmError::PcOutOfRange => write!(f, "pc out of range (missing terminator)"),
        }
    }
}

impl Error for VmError {}

/// What the run-time system decided at a dispatch point.
#[derive(Debug, Clone, PartialEq)]
pub enum DispatchOutcome {
    /// Invoke this function with the arguments the handler wrote into
    /// `out_args`; its return value becomes the `Dispatch` instruction's
    /// result.
    Invoke { func: FuncId },
    /// The handler already executed the specialized code itself (the
    /// native backend does this) and `value` is what the call returned;
    /// the interpreter writes it to the `Dispatch` destination register
    /// and continues without pushing a frame.
    Completed { value: Option<Value> },
}

/// The run-time system's hook into the interpreter.
pub trait DispatchHandler {
    /// Handle the dispatch at `point` with the given live values.
    ///
    /// `out_args` arrives empty; the handler appends the arguments for
    /// the function it names in the outcome. The buffer is owned and
    /// reused by the interpreter's run loop, so a steady-state dispatch
    /// performs no heap allocation.
    ///
    /// The handler must charge its own cycles into `vm.stats`
    /// (`dispatch_cycles` for the lookup, `dyncomp_cycles` for any
    /// specialization work) and may install new functions into `module`.
    ///
    /// # Errors
    ///
    /// Returns an error if specialization fails; the VM aborts the run.
    fn dispatch(
        &mut self,
        point: u32,
        args: &[Value],
        out_args: &mut Vec<Value>,
        module: &mut Module,
        vm: &mut Vm,
    ) -> Result<DispatchOutcome, VmError>;
}

/// The virtual machine: data memory, cost accounting, I-cache model and
/// output buffer. Code lives in a [`Module`] passed to [`Vm::call`], so the
/// run-time system can grow the module while the VM runs.
#[derive(Debug)]
pub struct Vm {
    cost: CostModel,
    /// Data memory (word addressed).
    pub mem: Mem,
    /// I-cache model; `None` simulates a perfect cache.
    pub icache: Option<ICache>,
    /// Accumulated counters.
    pub stats: ExecStats,
    /// Values printed by the guest (the observable output).
    pub output: Vec<Value>,
    max_steps: u64,
    /// Reusable heavy-instruction argument buffers, persisted across runs
    /// so a steady-state call or dispatch never touches the heap.
    buf_call: Vec<Value>,
    buf_disp: Vec<Value>,
}

struct Frame {
    func: FuncId,
    pc: u32,
    regs: Vec<Value>,
    /// Where the caller wants the return value.
    ret_dst: Option<Reg>,
}

impl Vm {
    /// A VM with the given cost model and the 21164 I-cache.
    pub fn new(cost: CostModel) -> Vm {
        Vm {
            cost,
            mem: Mem::new(),
            icache: Some(ICache::alpha21164()),
            stats: ExecStats::new(),
            output: Vec::new(),
            max_steps: u64::MAX,
            buf_call: Vec::new(),
            buf_disp: Vec::new(),
        }
    }

    /// A VM with a perfect I-cache (unit tests, semantics-only runs).
    pub fn without_icache(cost: CostModel) -> Vm {
        let mut vm = Vm::new(cost);
        vm.icache = None;
        vm
    }

    /// Limit the number of executed instructions (guards tests against
    /// runaway guest loops).
    pub fn set_step_limit(&mut self, steps: u64) {
        self.max_steps = steps;
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Invalidate the I-cache (called by the run-time system after
    /// installing code, modeling `imb` on the Alpha).
    pub fn flush_icache(&mut self) {
        if let Some(c) = &mut self.icache {
            c.flush();
        }
    }

    /// Run `func` with `args`; `Dispatch` instructions are errors.
    ///
    /// # Errors
    ///
    /// Any [`VmError`] raised by guest code.
    pub fn call(
        &mut self,
        module: &mut Module,
        func: FuncId,
        args: &[Value],
    ) -> Result<Option<Value>, VmError> {
        self.run(module, None, func, args)
    }

    /// Run `func` with `args` under a run-time system.
    ///
    /// # Errors
    ///
    /// Any [`VmError`] raised by guest code or the handler.
    pub fn call_with_handler(
        &mut self,
        module: &mut Module,
        handler: &mut dyn DispatchHandler,
        func: FuncId,
        args: &[Value],
    ) -> Result<Option<Value>, VmError> {
        self.run(module, Some(handler), func, args)
    }

    fn new_frame(module: &Module, func: FuncId, args: &[Value], ret_dst: Option<Reg>) -> Frame {
        let f = module.func(func);
        debug_assert_eq!(args.len(), f.n_params, "arity mismatch calling {}", f.name);
        let mut regs = vec![Value::default(); f.n_regs];
        regs[..args.len()].copy_from_slice(args);
        Frame {
            func,
            pc: 0,
            regs,
            ret_dst,
        }
    }

    fn run(
        &mut self,
        module: &mut Module,
        handler: Option<&mut dyn DispatchHandler>,
        func: FuncId,
        args: &[Value],
    ) -> Result<Option<Value>, VmError> {
        // Borrow the persistent argument buffers out of `self` for the
        // duration of the run (the handler needs `&mut Vm` alongside
        // them), then hand them back so their capacity carries over to
        // the next run. A reentrant run sees empty buffers and restores
        // its own on the way out — still allocation-free once warm.
        let mut call_vals = std::mem::take(&mut self.buf_call);
        let mut disp_args = std::mem::take(&mut self.buf_disp);
        let r = self.run_inner(module, handler, func, args, &mut call_vals, &mut disp_args);
        self.buf_call = call_vals;
        self.buf_disp = disp_args;
        r
    }

    #[allow(clippy::too_many_lines)]
    fn run_inner(
        &mut self,
        module: &mut Module,
        mut handler: Option<&mut dyn DispatchHandler>,
        func: FuncId,
        args: &[Value],
        call_vals: &mut Vec<Value>,
        disp_args: &mut Vec<Value>,
    ) -> Result<Option<Value>, VmError> {
        let mut stack: Vec<Frame> = vec![Self::new_frame(module, func, args, None)];
        let mut steps = 0u64;

        'outer: while let Some(frame) = stack.last_mut() {
            let f = module.func(frame.func);
            if frame.pc as usize >= f.code.len() {
                return Err(VmError::PcOutOfRange);
            }
            steps += 1;
            if steps > self.max_steps {
                return Err(VmError::StepLimit);
            }

            // Instruction fetch: cost + I-cache.
            let addr = f.addr_of(frame.pc);
            if let Some(ic) = &mut self.icache {
                if ic.access(addr) {
                    self.stats.icache_miss_cycles += self.cost.icache_miss;
                }
            }
            self.stats.instrs_executed += 1;

            // Decode. Cheap instructions are handled by reference; the two
            // that need `&mut Module` (Call frame setup, Dispatch) read
            // their argument values into the reusable buffer so the borrow
            // of `module` can be released without cloning the register
            // list.
            enum Heavy {
                Call { func: FuncId, dst: Option<Reg> },
                Dispatch { point: u32, dst: Option<Reg> },
            }
            let mut heavy: Option<Heavy> = None;
            {
                let instr = &f.code[frame.pc as usize];
                self.stats.exec_cycles += self.cost.instr_cost(instr);
                match instr {
                    Instr::MovI { dst, imm } => {
                        frame.regs[*dst as usize] = Value::I(*imm);
                    }
                    Instr::MovF { dst, imm } => {
                        frame.regs[*dst as usize] = Value::F(*imm);
                    }
                    Instr::Mov { dst, src } | Instr::FMov { dst, src } => {
                        frame.regs[*dst as usize] = frame.regs[*src as usize];
                    }
                    Instr::IAlu { op, dst, a, b } => {
                        let a = frame.regs[*a as usize].as_i();
                        let b = operand_i(&frame.regs, *b);
                        frame.regs[*dst as usize] = Value::I(ialu(*op, a, b)?);
                    }
                    Instr::FAlu { op, dst, a, b } => {
                        let a = frame.regs[*a as usize].as_f();
                        let b = frame.regs[*b as usize].as_f();
                        frame.regs[*dst as usize] = Value::F(falu(*op, a, b));
                    }
                    Instr::ICmp { cc, dst, a, b } => {
                        let a = frame.regs[*a as usize].as_i();
                        let b = operand_i(&frame.regs, *b);
                        frame.regs[*dst as usize] = Value::I(icmp(*cc, a, b) as i64);
                    }
                    Instr::FCmp { cc, dst, a, b } => {
                        let a = frame.regs[*a as usize].as_f();
                        let b = frame.regs[*b as usize].as_f();
                        frame.regs[*dst as usize] = Value::I(fcmp(*cc, a, b) as i64);
                    }
                    Instr::Un { op, dst, src } => {
                        let v = frame.regs[*src as usize];
                        frame.regs[*dst as usize] = unop(*op, v);
                    }
                    Instr::Load { ty, dst, base, idx } => {
                        let addr = frame.regs[*base as usize].as_i() + operand_i(&frame.regs, *idx);
                        frame.regs[*dst as usize] = self.mem.read(addr, *ty);
                    }
                    Instr::Store { ty, base, idx, src } => {
                        let addr = frame.regs[*base as usize].as_i() + operand_i(&frame.regs, *idx);
                        let _ = ty;
                        self.mem.write(addr, frame.regs[*src as usize]);
                    }
                    Instr::Jmp { target } => {
                        frame.pc = *target;
                        continue 'outer;
                    }
                    Instr::Brz { cond, target } => {
                        if !frame.regs[*cond as usize].is_truthy() {
                            frame.pc = *target;
                            continue 'outer;
                        }
                    }
                    Instr::Brnz { cond, target } => {
                        if frame.regs[*cond as usize].is_truthy() {
                            frame.pc = *target;
                            continue 'outer;
                        }
                    }
                    Instr::Ret { src } => {
                        let rv = src.map(|r| frame.regs[r as usize]);
                        let ret_dst = frame.ret_dst;
                        stack.pop();
                        match stack.last_mut() {
                            None => return Ok(rv),
                            Some(caller) => {
                                if let (Some(dst), Some(v)) = (ret_dst, rv) {
                                    caller.regs[dst as usize] = v;
                                }
                                continue 'outer;
                            }
                        }
                    }
                    Instr::Halt => return Ok(None),
                    Instr::CallHost { f, dst, args } => {
                        let vals: Vec<Value> =
                            args.iter().map(|&r| frame.regs[r as usize]).collect();
                        let rv = f.eval(&vals, &mut self.output);
                        if let (Some(d), Some(v)) = (dst, rv) {
                            frame.regs[*d as usize] = v;
                        }
                    }
                    Instr::Call { func, dst, args } => {
                        call_vals.clear();
                        call_vals.extend(args.iter().map(|&r| frame.regs[r as usize]));
                        heavy = Some(Heavy::Call {
                            func: *func,
                            dst: *dst,
                        });
                    }
                    Instr::Dispatch { point, dst, args } => {
                        call_vals.clear();
                        call_vals.extend(args.iter().map(|&r| frame.regs[r as usize]));
                        heavy = Some(Heavy::Dispatch {
                            point: *point,
                            dst: *dst,
                        });
                    }
                }
                if heavy.is_none() {
                    frame.pc += 1;
                    continue 'outer;
                }
            }

            // Heavy instructions: the borrow of `module` is released here.
            match heavy.unwrap() {
                Heavy::Call { func: callee, dst } => {
                    frame.pc += 1;
                    let new = Self::new_frame(module, callee, call_vals, dst);
                    stack.push(new);
                }
                Heavy::Dispatch { point, dst } => {
                    frame.pc += 1;
                    self.stats.dispatches += 1;
                    disp_args.clear();
                    let outcome = match handler.as_deref_mut() {
                        None => return Err(VmError::NoDispatchHandler),
                        Some(h) => h.dispatch(point, call_vals, disp_args, module, self)?,
                    };
                    match outcome {
                        DispatchOutcome::Invoke { func: callee } => {
                            self.stats.exec_cycles += self.cost.call;
                            let new = Self::new_frame(module, callee, disp_args, dst);
                            stack.push(new);
                        }
                        DispatchOutcome::Completed { value } => {
                            if let (Some(d), Some(v)) = (dst, value) {
                                frame.regs[d as usize] = v;
                            }
                        }
                    }
                }
            }
        }
        Ok(None)
    }
}

#[inline]
fn operand_i(regs: &[Value], op: Operand) -> i64 {
    match op {
        Operand::Reg(r) => regs[r as usize].as_i(),
        Operand::Imm(v) => v,
    }
}

#[inline]
fn ialu(op: IAluOp, a: i64, b: i64) -> Result<i64, VmError> {
    Ok(match op {
        IAluOp::Add => a.wrapping_add(b),
        IAluOp::Sub => a.wrapping_sub(b),
        IAluOp::Mul => a.wrapping_mul(b),
        IAluOp::Div => {
            if b == 0 {
                return Err(VmError::DivideByZero);
            }
            a.wrapping_div(b)
        }
        IAluOp::Rem => {
            if b == 0 {
                return Err(VmError::DivideByZero);
            }
            a.wrapping_rem(b)
        }
        IAluOp::And => a & b,
        IAluOp::Or => a | b,
        IAluOp::Xor => a ^ b,
        IAluOp::Shl => a.wrapping_shl(b as u32 & 63),
        IAluOp::Shr => a.wrapping_shr(b as u32 & 63),
    })
}

#[inline]
fn falu(op: FAluOp, a: f64, b: f64) -> f64 {
    match op {
        FAluOp::Add => a + b,
        FAluOp::Sub => a - b,
        FAluOp::Mul => a * b,
        FAluOp::Div => a / b,
    }
}

#[inline]
fn icmp(cc: Cc, a: i64, b: i64) -> bool {
    match cc {
        Cc::Eq => a == b,
        Cc::Ne => a != b,
        Cc::Lt => a < b,
        Cc::Le => a <= b,
        Cc::Gt => a > b,
        Cc::Ge => a >= b,
    }
}

#[inline]
fn fcmp(cc: Cc, a: f64, b: f64) -> bool {
    match cc {
        Cc::Eq => a == b,
        Cc::Ne => a != b,
        Cc::Lt => a < b,
        Cc::Le => a <= b,
        Cc::Gt => a > b,
        Cc::Ge => a >= b,
    }
}

#[inline]
fn unop(op: UnOp, v: Value) -> Value {
    match op {
        UnOp::NegI => Value::I(v.as_i().wrapping_neg()),
        UnOp::NotI => Value::I(!v.as_i()),
        UnOp::NegF => Value::F(-v.as_f()),
        UnOp::IToF => Value::F(v.as_i() as f64),
        UnOp::FToI => Value::I(v.as_f() as i64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Ty;

    fn run_func(f: CodeFuncSpec) -> (Option<Value>, Vm) {
        let mut m = Module::new();
        let mut cf = crate::module::CodeFunc::new("t", f.n_params, f.n_regs);
        for i in f.code {
            cf.push(i);
        }
        let id = m.add_func(cf);
        let mut vm = Vm::without_icache(CostModel::unit());
        vm.set_step_limit(100_000);
        let out = vm.call(&mut m, id, &f.args).unwrap();
        (out, vm)
    }

    struct CodeFuncSpec {
        n_params: usize,
        n_regs: usize,
        code: Vec<Instr>,
        args: Vec<Value>,
    }

    #[test]
    fn arithmetic_and_return() {
        let (out, _) = run_func(CodeFuncSpec {
            n_params: 2,
            n_regs: 3,
            code: vec![
                Instr::IAlu {
                    op: IAluOp::Mul,
                    dst: 2,
                    a: 0,
                    b: Operand::Reg(1),
                },
                Instr::IAlu {
                    op: IAluOp::Add,
                    dst: 2,
                    a: 2,
                    b: Operand::Imm(1),
                },
                Instr::Ret { src: Some(2) },
            ],
            args: vec![Value::I(6), Value::I(7)],
        });
        assert_eq!(out, Some(Value::I(43)));
    }

    #[test]
    fn float_ops() {
        let (out, _) = run_func(CodeFuncSpec {
            n_params: 2,
            n_regs: 3,
            code: vec![
                Instr::FAlu {
                    op: FAluOp::Div,
                    dst: 2,
                    a: 0,
                    b: 1,
                },
                Instr::Ret { src: Some(2) },
            ],
            args: vec![Value::F(1.0), Value::F(4.0)],
        });
        assert_eq!(out, Some(Value::F(0.25)));
    }

    #[test]
    fn branch_loop_counts() {
        // sum = 0; for (i = 0; i < n; i++) sum += i; return sum
        let (out, _) = run_func(CodeFuncSpec {
            n_params: 1,
            n_regs: 4,
            code: vec![
                Instr::MovI { dst: 1, imm: 0 }, // sum
                Instr::MovI { dst: 2, imm: 0 }, // i
                Instr::ICmp {
                    cc: Cc::Lt,
                    dst: 3,
                    a: 2,
                    b: Operand::Reg(0),
                }, // 2: i<n
                Instr::Brz { cond: 3, target: 7 },
                Instr::IAlu {
                    op: IAluOp::Add,
                    dst: 1,
                    a: 1,
                    b: Operand::Reg(2),
                },
                Instr::IAlu {
                    op: IAluOp::Add,
                    dst: 2,
                    a: 2,
                    b: Operand::Imm(1),
                },
                Instr::Jmp { target: 2 },
                Instr::Ret { src: Some(1) }, // 7
            ],
            args: vec![Value::I(10)],
        });
        assert_eq!(out, Some(Value::I(45)));
    }

    #[test]
    fn memory_round_trip() {
        let mut m = Module::new();
        let mut cf = crate::module::CodeFunc::new("t", 1, 3);
        cf.push(Instr::MovI { dst: 1, imm: 99 });
        cf.push(Instr::Store {
            ty: Ty::Int,
            base: 0,
            idx: Operand::Imm(2),
            src: 1,
        });
        cf.push(Instr::Load {
            ty: Ty::Int,
            dst: 2,
            base: 0,
            idx: Operand::Imm(2),
        });
        cf.push(Instr::Ret { src: Some(2) });
        let id = m.add_func(cf);
        let mut vm = Vm::without_icache(CostModel::unit());
        let base = vm.mem.alloc(4);
        let out = vm.call(&mut m, id, &[Value::I(base)]).unwrap();
        assert_eq!(out, Some(Value::I(99)));
        assert_eq!(vm.mem.read_int(base + 2), 99);
    }

    #[test]
    fn nested_calls() {
        let mut m = Module::new();
        let mut inner = crate::module::CodeFunc::new("inner", 1, 2);
        inner.push(Instr::IAlu {
            op: IAluOp::Mul,
            dst: 1,
            a: 0,
            b: Operand::Imm(2),
        });
        inner.push(Instr::Ret { src: Some(1) });
        let inner_id = m.add_func(inner);
        let mut outer = crate::module::CodeFunc::new("outer", 1, 2);
        outer.push(Instr::Call {
            func: inner_id,
            dst: Some(1),
            args: vec![0],
        });
        outer.push(Instr::IAlu {
            op: IAluOp::Add,
            dst: 1,
            a: 1,
            b: Operand::Imm(1),
        });
        outer.push(Instr::Ret { src: Some(1) });
        let outer_id = m.add_func(outer);
        let mut vm = Vm::without_icache(CostModel::unit());
        assert_eq!(
            vm.call(&mut m, outer_id, &[Value::I(5)]).unwrap(),
            Some(Value::I(11))
        );
    }

    #[test]
    fn host_call_and_output() {
        let (out, vm) = run_func(CodeFuncSpec {
            n_params: 1,
            n_regs: 2,
            code: vec![
                Instr::CallHost {
                    f: HostFn::PrintI,
                    dst: None,
                    args: vec![0],
                },
                Instr::MovF { dst: 1, imm: 0.0 },
                Instr::CallHost {
                    f: HostFn::Cos,
                    dst: Some(1),
                    args: vec![1],
                },
                Instr::Ret { src: None },
            ],
            args: vec![Value::I(5)],
        });
        assert_eq!(out, None);
        assert_eq!(vm.output, vec![Value::I(5)]);
    }

    #[test]
    fn divide_by_zero_is_an_error() {
        let mut m = Module::new();
        let mut cf = crate::module::CodeFunc::new("t", 2, 3);
        cf.push(Instr::IAlu {
            op: IAluOp::Div,
            dst: 2,
            a: 0,
            b: Operand::Reg(1),
        });
        cf.push(Instr::Ret { src: Some(2) });
        let id = m.add_func(cf);
        let mut vm = Vm::without_icache(CostModel::unit());
        let err = vm
            .call(&mut m, id, &[Value::I(1), Value::I(0)])
            .unwrap_err();
        assert_eq!(err, VmError::DivideByZero);
    }

    #[test]
    fn step_limit_catches_infinite_loop() {
        let mut m = Module::new();
        let mut cf = crate::module::CodeFunc::new("t", 0, 1);
        cf.push(Instr::Jmp { target: 0 });
        let id = m.add_func(cf);
        let mut vm = Vm::without_icache(CostModel::unit());
        vm.set_step_limit(1000);
        assert_eq!(vm.call(&mut m, id, &[]).unwrap_err(), VmError::StepLimit);
    }

    #[test]
    fn dispatch_without_handler_errors() {
        let mut m = Module::new();
        let mut cf = crate::module::CodeFunc::new("t", 0, 1);
        cf.push(Instr::Dispatch {
            point: 0,
            dst: None,
            args: vec![],
        });
        cf.push(Instr::Ret { src: None });
        let id = m.add_func(cf);
        let mut vm = Vm::without_icache(CostModel::unit());
        assert_eq!(
            vm.call(&mut m, id, &[]).unwrap_err(),
            VmError::NoDispatchHandler
        );
    }

    #[test]
    fn dispatch_invokes_handler_supplied_code() {
        struct H;
        impl DispatchHandler for H {
            fn dispatch(
                &mut self,
                point: u32,
                args: &[Value],
                out_args: &mut Vec<Value>,
                module: &mut Module,
                vm: &mut Vm,
            ) -> Result<DispatchOutcome, VmError> {
                assert_eq!(point, 7);
                vm.stats.dispatch_cycles += 10;
                // Generate code on the fly: returns args[0] + 100.
                let mut g = crate::module::CodeFunc::new("gen", 1, 2);
                g.push(Instr::IAlu {
                    op: IAluOp::Add,
                    dst: 1,
                    a: 0,
                    b: Operand::Imm(100),
                });
                g.push(Instr::Ret { src: Some(1) });
                let gid = module.add_func(g);
                out_args.extend_from_slice(args);
                Ok(DispatchOutcome::Invoke { func: gid })
            }
        }
        let mut m = Module::new();
        let mut cf = crate::module::CodeFunc::new("t", 1, 2);
        cf.push(Instr::Dispatch {
            point: 7,
            dst: Some(1),
            args: vec![0],
        });
        cf.push(Instr::Ret { src: Some(1) });
        let id = m.add_func(cf);
        let mut vm = Vm::without_icache(CostModel::unit());
        let out = vm
            .call_with_handler(&mut m, &mut H, id, &[Value::I(1)])
            .unwrap();
        assert_eq!(out, Some(Value::I(101)));
        assert_eq!(vm.stats.dispatches, 1);
        assert_eq!(vm.stats.dispatch_cycles, 10);
    }

    #[test]
    fn handler_may_reenter_the_vm() {
        // The run-time system executes *static calls* by re-entering
        // Vm::call from inside a dispatch; the interpreter must support
        // that reentrancy.
        struct H;
        impl DispatchHandler for H {
            fn dispatch(
                &mut self,
                _point: u32,
                args: &[Value],
                _out_args: &mut Vec<Value>,
                module: &mut Module,
                vm: &mut Vm,
            ) -> Result<DispatchOutcome, VmError> {
                // Evaluate a helper function during "specialization".
                let helper = module.func_by_name("helper").unwrap();
                let v = vm.call(module, helper, &[args[0]])?.unwrap();
                // Generate code returning that precomputed value.
                let mut g = crate::module::CodeFunc::new("gen", 0, 1);
                g.push(Instr::MovI {
                    dst: 0,
                    imm: v.as_i(),
                });
                g.push(Instr::Ret { src: Some(0) });
                let gid = module.add_func(g);
                Ok(DispatchOutcome::Invoke { func: gid })
            }
        }
        let mut m = Module::new();
        let mut helper = crate::module::CodeFunc::new("helper", 1, 2);
        helper.push(Instr::IAlu {
            op: IAluOp::Mul,
            dst: 1,
            a: 0,
            b: Operand::Imm(7),
        });
        helper.push(Instr::Ret { src: Some(1) });
        m.add_func(helper);
        let mut region = crate::module::CodeFunc::new("region", 1, 2);
        region.push(Instr::Dispatch {
            point: 0,
            dst: Some(1),
            args: vec![0],
        });
        region.push(Instr::Ret { src: Some(1) });
        let rid = m.add_func(region);
        let mut vm = Vm::without_icache(CostModel::unit());
        let out = vm
            .call_with_handler(&mut m, &mut H, rid, &[Value::I(6)])
            .unwrap();
        assert_eq!(out, Some(Value::I(42)));
    }

    #[test]
    fn cycle_accounting_uses_cost_model() {
        let mut m = Module::new();
        let mut cf = crate::module::CodeFunc::new("t", 0, 2);
        cf.push(Instr::MovF { dst: 0, imm: 2.0 });
        cf.push(Instr::FAlu {
            op: FAluOp::Mul,
            dst: 1,
            a: 0,
            b: 0,
        });
        cf.push(Instr::Ret { src: Some(1) });
        let id = m.add_func(cf);
        let mut vm = Vm::without_icache(CostModel::alpha21164());
        vm.call(&mut m, id, &[]).unwrap();
        let c = CostModel::alpha21164();
        assert_eq!(vm.stats.exec_cycles, c.mov_imm + c.fp_mul + c.call);
        assert_eq!(vm.stats.instrs_executed, 3);
    }

    #[test]
    fn icache_charged_on_misses() {
        let mut m = Module::new();
        let mut cf = crate::module::CodeFunc::new("t", 0, 1);
        for _ in 0..15 {
            cf.push(Instr::MovI { dst: 0, imm: 1 });
        }
        cf.push(Instr::Ret { src: None });
        let id = m.add_func(cf);
        let mut vm = Vm::new(CostModel::alpha21164());
        vm.call(&mut m, id, &[]).unwrap();
        // 16 instructions = 64 bytes = 2 lines -> 2 misses.
        assert_eq!(vm.stats.icache_miss_cycles, 2 * vm.cost_model().icache_miss);
    }
}
