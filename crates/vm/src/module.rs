//! Code containers: functions and modules.
//!
//! A [`Module`] holds every function in a program — statically compiled code
//! plus any code the dynamic compiler installs at run time. Each function is
//! laid out at a distinct byte address so the I-cache model sees realistic
//! competition between code bodies.

use crate::icache::INSTR_BYTES;
use crate::isa::Instr;

/// Index of a function within its [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl std::fmt::Display for FuncId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// A compiled function body.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeFunc {
    /// Human-readable name (for diagnostics and pretty printing).
    pub name: String,
    /// Number of parameters; arguments are copied into registers `0..n_params`.
    pub n_params: usize,
    /// Frame size in registers.
    pub n_regs: usize,
    /// The instructions. Control flow targets are indices into this vector.
    pub code: Vec<Instr>,
    /// Base byte address assigned by the module (for the I-cache model).
    pub base_addr: u64,
}

impl CodeFunc {
    /// A new, empty function.
    pub fn new(name: impl Into<String>, n_params: usize, n_regs: usize) -> CodeFunc {
        assert!(n_regs >= n_params, "frame must hold the parameters");
        CodeFunc {
            name: name.into(),
            n_params,
            n_regs,
            code: Vec::new(),
            base_addr: 0,
        }
    }

    /// Append an instruction; returns its index.
    pub fn push(&mut self, i: Instr) -> u32 {
        self.code.push(i);
        (self.code.len() - 1) as u32
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// True if the body is empty.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Byte address of instruction `idx` (for the I-cache model).
    #[inline]
    pub fn addr_of(&self, idx: u32) -> u64 {
        self.base_addr + idx as u64 * INSTR_BYTES
    }
}

/// A program: a collection of functions sharing an address space.
#[derive(Debug, Clone, Default)]
pub struct Module {
    funcs: Vec<CodeFunc>,
    next_addr: u64,
}

impl Module {
    /// An empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Install a function, assigning it a fresh address range (aligned to an
    /// I-cache line). Dynamically generated code is installed through this
    /// same path at run time.
    pub fn add_func(&mut self, mut f: CodeFunc) -> FuncId {
        f.base_addr = self.next_addr;
        let bytes = (f.code.len() as u64).max(1) * INSTR_BYTES;
        // Round up to a 32-byte line so functions never share a line.
        self.next_addr += (bytes + 31) & !31;
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(f);
        id
    }

    /// Look up a function.
    ///
    /// # Panics
    ///
    /// Panics if the id is from another module.
    pub fn func(&self, id: FuncId) -> &CodeFunc {
        &self.funcs[id.0 as usize]
    }

    /// Mutable lookup (used by the dynamic compiler for branch patching).
    pub fn func_mut(&mut self, id: FuncId) -> &mut CodeFunc {
        &mut self.funcs[id.0 as usize]
    }

    /// Find a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// True if the module has no functions.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// Iterate over `(id, func)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &CodeFunc)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functions_get_disjoint_line_aligned_addresses() {
        let mut m = Module::new();
        let mut f1 = CodeFunc::new("a", 0, 1);
        for _ in 0..10 {
            f1.push(Instr::Halt);
        }
        let mut f2 = CodeFunc::new("b", 0, 1);
        f2.push(Instr::Halt);
        let id1 = m.add_func(f1);
        let id2 = m.add_func(f2);
        let (a, b) = (m.func(id1), m.func(id2));
        assert_eq!(a.base_addr % 32, 0);
        assert_eq!(b.base_addr % 32, 0);
        // 10 instructions = 40 bytes -> rounds to 64.
        assert_eq!(b.base_addr, 64);
        assert_eq!(a.addr_of(3), 12);
    }

    #[test]
    fn lookup_by_name() {
        let mut m = Module::new();
        let id = m.add_func(CodeFunc::new("main", 0, 1));
        assert_eq!(m.func_by_name("main"), Some(id));
        assert_eq!(m.func_by_name("nope"), None);
    }

    #[test]
    #[should_panic(expected = "frame must hold")]
    fn frame_must_cover_params() {
        let _ = CodeFunc::new("bad", 3, 2);
    }
}
