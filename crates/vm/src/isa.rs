//! The VM instruction set.
//!
//! A small RISC-flavoured register machine. Design points that matter for
//! reproducing the paper:
//!
//! * Integer ALU instructions have a register/immediate second operand,
//!   modeling the Alpha's literal field — the dynamic compiler tries to fold
//!   run-time-constant operands into immediates ("attempt to fit integer
//!   static operands into instruction immediate fields", §2.2.7).
//! * Every instruction occupies one 4-byte slot for the purposes of the
//!   instruction-cache model, as on a real RISC.
//! * [`Instr::Dispatch`] re-enters the run-time system: it implements both
//!   dynamic-region entry dispatching and *internal dynamic-to-static
//!   promotion* points (§2.2.2–2.2.3).

use crate::host::HostFn;
use crate::module::FuncId;

/// A register index within a function's frame.
///
/// The VM allows large frames; register allocation pressure is not part of
/// the performance model (the paper's results are driven by instruction
/// counts and the I-cache, not spills).
pub type Reg = u32;

/// Scalar types, as carried by memory-access instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ty {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
}

/// Second operand of an integer ALU instruction: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// An immediate operand (the Alpha literal field holds 8 bits; we are
    /// more generous but the cost model is unaffected either way).
    Imm(i64),
}

impl Operand {
    /// True if this operand is an immediate.
    pub fn is_imm(self) -> bool {
        matches!(self, Operand::Imm(_))
    }
}

/// Integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IAluOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

/// Floating-point ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FAluOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Comparison condition codes (produce 0/1 in an integer register).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cc {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cc {
    /// The condition with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> Cc {
        match self {
            Cc::Eq => Cc::Eq,
            Cc::Ne => Cc::Ne,
            Cc::Lt => Cc::Gt,
            Cc::Le => Cc::Ge,
            Cc::Gt => Cc::Lt,
            Cc::Ge => Cc::Le,
        }
    }

    /// The negated condition (`!(a < b)` ⇔ `a >= b`).
    pub fn negated(self) -> Cc {
        match self {
            Cc::Eq => Cc::Ne,
            Cc::Ne => Cc::Eq,
            Cc::Lt => Cc::Ge,
            Cc::Le => Cc::Gt,
            Cc::Gt => Cc::Le,
            Cc::Ge => Cc::Lt,
        }
    }
}

/// Unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation.
    NegI,
    /// Bitwise not.
    NotI,
    /// Float negation.
    NegF,
    /// Convert int to float.
    IToF,
    /// Convert float to int (truncating, like a C cast).
    FToI,
}

/// A single VM instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Load an integer constant into a register.
    MovI { dst: Reg, imm: i64 },
    /// Load a float constant into a register.
    MovF { dst: Reg, imm: f64 },
    /// Register-to-register move.
    Mov { dst: Reg, src: Reg },
    /// Floating-point register move. Semantically identical to [`Instr::Mov`]
    /// but costed like an FP ALU operation: on the 21164 "a floating-point
    /// move takes the same time as a floating-point multiply" (§2.2.7) —
    /// the fact that makes dynamic zero/copy propagation and
    /// dead-assignment elimination necessary beyond strength reduction.
    FMov { dst: Reg, src: Reg },
    /// Integer ALU: `dst = a op b`.
    IAlu {
        op: IAluOp,
        dst: Reg,
        a: Reg,
        b: Operand,
    },
    /// Float ALU: `dst = a op b`.
    FAlu {
        op: FAluOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// Integer compare producing 0/1.
    ICmp {
        cc: Cc,
        dst: Reg,
        a: Reg,
        b: Operand,
    },
    /// Float compare producing 0/1.
    FCmp { cc: Cc, dst: Reg, a: Reg, b: Reg },
    /// Unary operation.
    Un { op: UnOp, dst: Reg, src: Reg },
    /// Typed load: `dst = mem[base + idx]` (word addressed).
    Load {
        ty: Ty,
        dst: Reg,
        base: Reg,
        idx: Operand,
    },
    /// Typed store: `mem[base + idx] = src`.
    Store {
        ty: Ty,
        base: Reg,
        idx: Operand,
        src: Reg,
    },
    /// Unconditional jump to an instruction index within this function.
    Jmp { target: u32 },
    /// Branch to `target` if `cond` is zero.
    Brz { cond: Reg, target: u32 },
    /// Branch to `target` if `cond` is nonzero.
    Brnz { cond: Reg, target: u32 },
    /// Call a host (external) function.
    CallHost {
        f: HostFn,
        dst: Option<Reg>,
        args: Vec<Reg>,
    },
    /// Call another VM function.
    Call {
        func: FuncId,
        dst: Option<Reg>,
        args: Vec<Reg>,
    },
    /// Return, optionally with a value.
    Ret { src: Option<Reg> },
    /// Re-enter the run-time system at dispatch point `point` (a dynamic
    /// region entry or an internal promotion point). The handler inspects
    /// `args` (which include the promoted key values), finds or generates
    /// specialized code, and the VM transfers to it tail-call style: the
    /// specialized code's return value becomes this function's return value
    /// via `dst` (the emitter always places `Ret` right after `Dispatch`).
    Dispatch {
        point: u32,
        dst: Option<Reg>,
        args: Vec<Reg>,
    },
    /// Stop the machine (only valid in a top-level harness function).
    Halt,
}

impl Instr {
    /// The destination register written by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Instr::MovI { dst, .. }
            | Instr::MovF { dst, .. }
            | Instr::Mov { dst, .. }
            | Instr::FMov { dst, .. }
            | Instr::IAlu { dst, .. }
            | Instr::FAlu { dst, .. }
            | Instr::ICmp { dst, .. }
            | Instr::FCmp { dst, .. }
            | Instr::Un { dst, .. }
            | Instr::Load { dst, .. } => Some(dst),
            Instr::CallHost { dst, .. } | Instr::Call { dst, .. } | Instr::Dispatch { dst, .. } => {
                dst
            }
            _ => None,
        }
    }

    /// Registers read by this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        fn op(out: &mut Vec<Reg>, o: &Operand) {
            if let Operand::Reg(r) = *o {
                out.push(r);
            }
        }
        let mut out = Vec::new();
        match self {
            Instr::Mov { src, .. } | Instr::FMov { src, .. } => out.push(*src),
            Instr::IAlu { a, b, .. } | Instr::ICmp { a, b, .. } => {
                out.push(*a);
                op(&mut out, b);
            }
            Instr::FAlu { a, b, .. } | Instr::FCmp { a, b, .. } => {
                out.push(*a);
                out.push(*b);
            }
            Instr::Un { src, .. } => out.push(*src),
            Instr::Load { base, idx, .. } => {
                out.push(*base);
                op(&mut out, idx);
            }
            Instr::Store { base, idx, src, .. } => {
                out.push(*base);
                op(&mut out, idx);
                out.push(*src);
            }
            Instr::Brz { cond, .. } | Instr::Brnz { cond, .. } => out.push(*cond),
            Instr::CallHost { args, .. }
            | Instr::Call { args, .. }
            | Instr::Dispatch { args, .. } => out.extend(args.iter().copied()),
            Instr::Ret { src } => out.extend(src.iter().copied()),
            _ => {}
        }
        out
    }

    /// True for instructions with no side effects other than writing `dst`
    /// (candidates for dead-assignment elimination). Loads are included:
    /// memory in the VM has no volatile locations.
    pub fn is_pure(&self) -> bool {
        matches!(
            self,
            Instr::MovI { .. }
                | Instr::MovF { .. }
                | Instr::Mov { .. }
                | Instr::FMov { .. }
                | Instr::IAlu { .. }
                | Instr::FAlu { .. }
                | Instr::ICmp { .. }
                | Instr::FCmp { .. }
                | Instr::Un { .. }
                | Instr::Load { .. }
        )
    }

    /// True for control-transfer instructions.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Jmp { .. } | Instr::Ret { .. } | Instr::Halt | Instr::Dispatch { .. }
        )
    }
}

/// The instruction's *encoding shape* for the native copy-and-patch
/// backend: two instructions share a shape iff their machine-code
/// encodings are byte-identical except for register-slot displacements
/// and 64-bit immediates (the "holes"). `0` means the instruction has no
/// fixed-layout encoding (branches are position-dependent, calls carry
/// variable-length argument lists) and must be lowered individually.
///
/// The stage-time template builder records one shape per template
/// instruction so the native sink can instantiate prebuilt byte
/// sequences with a hole-patch loop instead of re-encoding.
pub fn instr_shape(ins: &Instr) -> u16 {
    fn ialu_idx(op: IAluOp) -> u16 {
        match op {
            IAluOp::Add => 0,
            IAluOp::Sub => 1,
            IAluOp::Mul => 2,
            IAluOp::Div => 3,
            IAluOp::Rem => 4,
            IAluOp::And => 5,
            IAluOp::Or => 6,
            IAluOp::Xor => 7,
            IAluOp::Shl => 8,
            IAluOp::Shr => 9,
        }
    }
    fn falu_idx(op: FAluOp) -> u16 {
        match op {
            FAluOp::Add => 0,
            FAluOp::Sub => 1,
            FAluOp::Mul => 2,
            FAluOp::Div => 3,
        }
    }
    fn cc_idx(cc: Cc) -> u16 {
        match cc {
            Cc::Eq => 0,
            Cc::Ne => 1,
            Cc::Lt => 2,
            Cc::Le => 3,
            Cc::Gt => 4,
            Cc::Ge => 5,
        }
    }
    fn un_idx(op: UnOp) -> u16 {
        match op {
            UnOp::NegI => 0,
            UnOp::NotI => 1,
            UnOp::NegF => 2,
            UnOp::IToF => 3,
            UnOp::FToI => 4,
        }
    }
    fn ty_idx(ty: Ty) -> u16 {
        match ty {
            Ty::Int => 0,
            Ty::Float => 1,
        }
    }
    match ins {
        Instr::MovI { .. } => 1,
        Instr::MovF { .. } => 2,
        Instr::Mov { .. } => 3,
        Instr::FMov { .. } => 4,
        Instr::IAlu { op, b, .. } => 8 + ialu_idx(*op) * 2 + u16::from(b.is_imm()),
        Instr::FAlu { op, .. } => 28 + falu_idx(*op),
        Instr::ICmp { cc, b, .. } => 32 + cc_idx(*cc) * 2 + u16::from(b.is_imm()),
        Instr::FCmp { cc, .. } => 44 + cc_idx(*cc),
        Instr::Un { op, .. } => 50 + un_idx(*op),
        Instr::Load { ty, idx, .. } => 56 + ty_idx(*ty) * 2 + u16::from(idx.is_imm()),
        Instr::Store { ty, idx, .. } => 60 + ty_idx(*ty) * 2 + u16::from(idx.is_imm()),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc_negation_is_involutive() {
        for cc in [Cc::Eq, Cc::Ne, Cc::Lt, Cc::Le, Cc::Gt, Cc::Ge] {
            assert_eq!(cc.negated().negated(), cc);
            assert_eq!(cc.swapped().swapped(), cc);
        }
    }

    #[test]
    fn defs_and_uses() {
        let i = Instr::IAlu {
            op: IAluOp::Add,
            dst: 3,
            a: 1,
            b: Operand::Reg(2),
        };
        assert_eq!(i.def(), Some(3));
        assert_eq!(i.uses(), vec![1, 2]);

        let s = Instr::Store {
            ty: Ty::Int,
            base: 4,
            idx: Operand::Imm(0),
            src: 5,
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![4, 5]);
    }

    #[test]
    fn purity_classification() {
        assert!(Instr::Load {
            ty: Ty::Int,
            dst: 0,
            base: 1,
            idx: Operand::Imm(0)
        }
        .is_pure());
        assert!(!Instr::Store {
            ty: Ty::Int,
            base: 1,
            idx: Operand::Imm(0),
            src: 0
        }
        .is_pure());
        assert!(!Instr::CallHost {
            f: HostFn::Cos,
            dst: Some(0),
            args: vec![1]
        }
        .is_pure());
    }

    #[test]
    fn imm_operands_have_no_uses() {
        let i = Instr::IAlu {
            op: IAluOp::Mul,
            dst: 0,
            a: 1,
            b: Operand::Imm(8),
        };
        assert_eq!(i.uses(), vec![1]);
        assert!(Operand::Imm(8).is_imm());
        assert!(!Operand::Reg(1).is_imm());
    }
}
