//! Run-time values.
//!
//! DyCL (like the subset of C the paper's benchmarks use) has two scalar
//! types: 64-bit integers and 64-bit floats. Registers and memory words hold
//! either.

use std::fmt;

/// A scalar value held in a VM register or memory word.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A 64-bit signed integer (also used for addresses and booleans).
    I(i64),
    /// A 64-bit IEEE float.
    F(f64),
}

impl Value {
    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is a float; the IR type checker guarantees this
    /// cannot happen for verified code.
    #[inline]
    pub fn as_i(self) -> i64 {
        match self {
            Value::I(v) => v,
            Value::F(v) => panic!("expected int value, found float {v}"),
        }
    }

    /// The float payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is an integer.
    #[inline]
    pub fn as_f(self) -> f64 {
        match self {
            Value::F(v) => v,
            Value::I(v) => panic!("expected float value, found int {v}"),
        }
    }

    /// True if this is an integer value.
    #[inline]
    pub fn is_int(self) -> bool {
        matches!(self, Value::I(_))
    }

    /// Raw 64-bit encoding, used by the word-addressed memory.
    #[inline]
    pub fn to_bits(self) -> u64 {
        match self {
            Value::I(v) => v as u64,
            Value::F(v) => v.to_bits(),
        }
    }

    /// Decode a raw word as an integer value.
    #[inline]
    pub fn int_from_bits(bits: u64) -> Value {
        Value::I(bits as i64)
    }

    /// Decode a raw word as a float value.
    #[inline]
    pub fn float_from_bits(bits: u64) -> Value {
        Value::F(f64::from_bits(bits))
    }

    /// Truthiness, matching C: nonzero is true.
    #[inline]
    pub fn is_truthy(self) -> bool {
        match self {
            Value::I(v) => v != 0,
            Value::F(v) => v != 0.0,
        }
    }

    /// A stable hash key for specialization caches. Floats key on their bit
    /// pattern so `-0.0` and `0.0` are distinct keys (value-specific code
    /// for them is identical anyway, just cached twice — same choice DyC's
    /// word-based hashing makes).
    #[inline]
    pub fn key_bits(self) -> u64 {
        match self {
            Value::I(v) => v as u64,
            Value::F(v) => v.to_bits() ^ 0x8000_0000_0000_0000,
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::I(0)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::I(v as i64)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I(v) => write!(f, "{v}"),
            Value::F(v) => write!(f, "{v:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trip() {
        let v = Value::I(-42);
        assert_eq!(Value::int_from_bits(v.to_bits()), v);
        assert_eq!(v.as_i(), -42);
        assert!(v.is_int());
    }

    #[test]
    fn float_round_trip() {
        let v = Value::F(3.25);
        assert_eq!(Value::float_from_bits(v.to_bits()), v);
        assert_eq!(v.as_f(), 3.25);
        assert!(!v.is_int());
    }

    #[test]
    fn truthiness_matches_c() {
        assert!(Value::I(1).is_truthy());
        assert!(!Value::I(0).is_truthy());
        assert!(Value::F(0.5).is_truthy());
        assert!(!Value::F(0.0).is_truthy());
        assert!(!Value::F(-0.0).is_truthy());
    }

    #[test]
    fn key_bits_distinguish_int_and_float_zero() {
        assert_ne!(Value::I(0).key_bits(), Value::F(0.0).key_bits());
    }

    #[test]
    #[should_panic(expected = "expected int")]
    fn as_i_panics_on_float() {
        let _ = Value::F(1.0).as_i();
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::I(7).to_string(), "7");
        assert_eq!(Value::F(1.5).to_string(), "1.5");
    }
}
