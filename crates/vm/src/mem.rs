//! The VM's word-addressed data memory.
//!
//! Every array element of the benchmarks occupies one 64-bit word; addresses
//! are word indices. A simple bump allocator hands out regions — the
//! benchmarks (like the paper's) allocate their arrays up front, so nothing
//! fancier is needed.

use crate::value::Value;

/// Word-addressed data memory with a bump allocator.
#[derive(Debug, Clone, Default)]
pub struct Mem {
    words: Vec<u64>,
}

impl Mem {
    /// An empty memory.
    pub fn new() -> Mem {
        Mem::default()
    }

    /// Allocate `n` zeroed words; returns the base address.
    pub fn alloc(&mut self, n: usize) -> i64 {
        let base = self.words.len() as i64;
        self.words.resize(self.words.len() + n, 0);
        base
    }

    /// Total words allocated.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Raw pointer to the word array, for the native backend's context
    /// struct. Valid until the next allocation; generated code pairs it
    /// with [`Mem::len`] for bounds checks.
    pub fn as_mut_ptr(&mut self) -> *mut u64 {
        self.words.as_mut_ptr()
    }

    /// True if nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Read an integer word.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access (the VM treats this as a guest crash).
    #[inline]
    pub fn read_int(&self, addr: i64) -> i64 {
        self.words[Self::index(addr)] as i64
    }

    /// Read a float word.
    #[inline]
    pub fn read_float(&self, addr: i64) -> f64 {
        f64::from_bits(self.words[Self::index(addr)])
    }

    /// Read a word as a typed [`Value`].
    #[inline]
    pub fn read(&self, addr: i64, ty: crate::isa::Ty) -> Value {
        match ty {
            crate::isa::Ty::Int => Value::I(self.read_int(addr)),
            crate::isa::Ty::Float => Value::F(self.read_float(addr)),
        }
    }

    /// Write an integer word.
    #[inline]
    pub fn write_int(&mut self, addr: i64, v: i64) {
        let i = Self::index(addr);
        self.words[i] = v as u64;
    }

    /// Write a float word.
    #[inline]
    pub fn write_float(&mut self, addr: i64, v: f64) {
        let i = Self::index(addr);
        self.words[i] = v.to_bits();
    }

    /// Write a typed [`Value`].
    #[inline]
    pub fn write(&mut self, addr: i64, v: Value) {
        let i = Self::index(addr);
        self.words[i] = v.to_bits();
    }

    /// Bulk-fill a region with integer values (harness convenience).
    pub fn write_ints(&mut self, base: i64, vals: &[i64]) {
        for (i, &v) in vals.iter().enumerate() {
            self.write_int(base + i as i64, v);
        }
    }

    /// Bulk-fill a region with float values (harness convenience).
    pub fn write_floats(&mut self, base: i64, vals: &[f64]) {
        for (i, &v) in vals.iter().enumerate() {
            self.write_float(base + i as i64, v);
        }
    }

    /// Bulk-read integers (harness convenience).
    pub fn read_ints(&self, base: i64, n: usize) -> Vec<i64> {
        (0..n).map(|i| self.read_int(base + i as i64)).collect()
    }

    /// Bulk-read floats (harness convenience).
    pub fn read_floats(&self, base: i64, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.read_float(base + i as i64)).collect()
    }

    #[inline]
    fn index(addr: i64) -> usize {
        debug_assert!(addr >= 0, "negative address {addr}");
        addr as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Ty;

    #[test]
    fn alloc_is_zeroed_and_contiguous() {
        let mut m = Mem::new();
        let a = m.alloc(4);
        let b = m.alloc(2);
        assert_eq!(a, 0);
        assert_eq!(b, 4);
        assert_eq!(m.len(), 6);
        for i in 0..6 {
            assert_eq!(m.read_int(i), 0);
        }
    }

    #[test]
    fn typed_read_write() {
        let mut m = Mem::new();
        let a = m.alloc(2);
        m.write_int(a, -9);
        m.write_float(a + 1, 2.5);
        assert_eq!(m.read(a, Ty::Int), Value::I(-9));
        assert_eq!(m.read(a + 1, Ty::Float), Value::F(2.5));
    }

    #[test]
    fn bulk_helpers_round_trip() {
        let mut m = Mem::new();
        let a = m.alloc(3);
        m.write_ints(a, &[1, 2, 3]);
        assert_eq!(m.read_ints(a, 3), vec![1, 2, 3]);
        let b = m.alloc(2);
        m.write_floats(b, &[0.5, -0.5]);
        assert_eq!(m.read_floats(b, 2), vec![0.5, -0.5]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let m = Mem::new();
        let _ = m.read_int(0);
    }
}
