//! The cycle cost model.
//!
//! Calibrated to the DEC Alpha 21164 the paper measured on. Two facts from
//! the paper constrain the model directly:
//!
//! * "On some architectures, such as the DEC Alpha 21164 …, a floating-point
//!   move takes the same time as a floating-point multiply" (§2.2.7) — so
//!   `fp_mov == fp_alu`. This is why dynamic *zero/copy propagation and
//!   dead-assignment elimination* (not mere strength reduction to a move)
//!   are needed to profit from `x * 1.0`.
//! * Unchecked dispatch ≈ 10 cycles; hash-based dispatch ≈ 90 cycles
//!   (§4.4.3). Those costs live in `dyc-rt`'s dispatch accounting, not here,
//!   but the per-operation constants below are chosen on the same scale.
//!
//! The model is deliberately simple — fixed cost per operation class plus an
//! I-cache miss penalty — because the paper's headline numbers are ratios of
//! instruction work, with the one strong microarchitectural effect being
//! pnmconvol's I-cache blow-up without dead-assignment elimination (§4.4.4).

use crate::host::HostFn;
use crate::isa::{IAluOp, Instr};

/// Per-operation-class cycle costs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Integer add/sub/logic/shift/compare.
    pub int_alu: u64,
    /// Integer multiply (the 21164's `MULQ` latency is 8–16 cycles).
    pub int_mul: u64,
    /// Integer divide/remainder (software on Alpha; tens of cycles).
    pub int_div: u64,
    /// FP add/sub/compare/convert *and moves* (see module docs).
    pub fp_alu: u64,
    /// FP multiply — equal to `fp_alu` on the 21164.
    pub fp_mul: u64,
    /// FP divide.
    pub fp_div: u64,
    /// Constant materialization (LDA-style).
    pub mov_imm: u64,
    /// Register move (integer).
    pub int_mov: u64,
    /// Load (D-cache hit; the D-cache is not simulated).
    pub load: u64,
    /// Store.
    pub store: u64,
    /// Unconditional jump.
    pub jmp: u64,
    /// Conditional branch.
    pub branch: u64,
    /// VM-function call/return overhead.
    pub call: u64,
    /// I-cache miss penalty (fill from L2).
    pub icache_miss: u64,
}

impl CostModel {
    /// The Alpha-21164-calibrated model used for all experiments.
    pub fn alpha21164() -> CostModel {
        CostModel {
            int_alu: 1,
            int_mul: 8,
            int_div: 40,
            fp_alu: 4,
            fp_mul: 4,
            fp_div: 15,
            mov_imm: 1,
            int_mov: 1,
            load: 2,
            store: 1,
            jmp: 1,
            branch: 2,
            call: 6,
            icache_miss: 18,
        }
    }

    /// A uniform unit-cost model, useful in tests where only instruction
    /// counts matter.
    pub fn unit() -> CostModel {
        CostModel {
            int_alu: 1,
            int_mul: 1,
            int_div: 1,
            fp_alu: 1,
            fp_mul: 1,
            fp_div: 1,
            mov_imm: 1,
            int_mov: 1,
            load: 1,
            store: 1,
            jmp: 1,
            branch: 1,
            call: 1,
            icache_miss: 0,
        }
    }

    /// The execution cost of one instruction (host-call cost comes from
    /// [`HostFn::cost`]; dispatch cost is charged by the run-time system's
    /// dispatch policy, not here).
    pub fn instr_cost(&self, i: &Instr) -> u64 {
        match i {
            Instr::MovI { .. } | Instr::MovF { .. } => self.mov_imm,
            Instr::Mov { .. } => self.int_mov,
            Instr::FMov { .. } => self.fp_alu,
            Instr::IAlu { op, .. } => match op {
                IAluOp::Mul => self.int_mul,
                IAluOp::Div | IAluOp::Rem => self.int_div,
                _ => self.int_alu,
            },
            Instr::FAlu { op, .. } => match op {
                crate::isa::FAluOp::Mul => self.fp_mul,
                crate::isa::FAluOp::Div => self.fp_div,
                _ => self.fp_alu,
            },
            Instr::ICmp { .. } => self.int_alu,
            Instr::FCmp { .. } => self.fp_alu,
            Instr::Un { op, .. } => match op {
                crate::isa::UnOp::NegI | crate::isa::UnOp::NotI => self.int_alu,
                _ => self.fp_alu,
            },
            Instr::Load { .. } => self.load,
            Instr::Store { .. } => self.store,
            Instr::Jmp { .. } => self.jmp,
            Instr::Brz { .. } | Instr::Brnz { .. } => self.branch,
            Instr::CallHost { f, .. } => self.call + f.cost(),
            Instr::Call { .. } => self.call,
            Instr::Ret { .. } => self.call,
            // Dispatch cost is policy-dependent; the handler charges it.
            Instr::Dispatch { .. } => 0,
            Instr::Halt => 0,
        }
    }

    /// Cost of a host function, exposed for overhead accounting when the
    /// dynamic compiler executes a *static call* at specialization time.
    pub fn host_cost(&self, f: HostFn) -> u64 {
        self.call + f.cost()
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::alpha21164()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{FAluOp, Operand};

    #[test]
    fn fp_move_costs_same_as_fp_multiply() {
        // The paper's motivating microarchitectural fact (§2.2.7).
        let m = CostModel::alpha21164();
        let mul = Instr::FAlu {
            op: FAluOp::Mul,
            dst: 0,
            a: 1,
            b: 2,
        };
        assert_eq!(m.instr_cost(&mul), m.fp_mul);
        assert_eq!(m.fp_alu, m.fp_mul);
    }

    #[test]
    fn int_multiply_dearer_than_shift() {
        // Makes dynamic strength reduction profitable (§2.2.7).
        let m = CostModel::alpha21164();
        let mul = Instr::IAlu {
            op: IAluOp::Mul,
            dst: 0,
            a: 1,
            b: Operand::Imm(8),
        };
        let shl = Instr::IAlu {
            op: IAluOp::Shl,
            dst: 0,
            a: 1,
            b: Operand::Imm(3),
        };
        assert!(m.instr_cost(&mul) > m.instr_cost(&shl));
    }

    #[test]
    fn unit_model_counts_instructions() {
        let m = CostModel::unit();
        let i = Instr::IAlu {
            op: IAluOp::Div,
            dst: 0,
            a: 1,
            b: Operand::Reg(2),
        };
        assert_eq!(m.instr_cost(&i), 1);
        assert_eq!(m.icache_miss, 0);
    }

    #[test]
    fn dispatch_is_charged_by_the_runtime_not_the_model() {
        let m = CostModel::alpha21164();
        assert_eq!(
            m.instr_cost(&Instr::Dispatch {
                point: 0,
                dst: None,
                args: vec![]
            }),
            0
        );
    }
}
