//! Disassembler for VM code.
//!
//! Used by the `figures` harness to render dynamically generated code, the
//! reproduction of the paper's Figures 3 and 4 (the partially and fully
//! optimized pnmconvol dynamic region).

use crate::isa::{Cc, FAluOp, IAluOp, Instr, Operand, Ty, UnOp};
use crate::module::{CodeFunc, Module};
use std::fmt::Write as _;

fn op_str(o: Operand) -> String {
    match o {
        Operand::Reg(r) => format!("r{r}"),
        Operand::Imm(v) => format!("#{v}"),
    }
}

fn ialu_str(op: IAluOp) -> &'static str {
    match op {
        IAluOp::Add => "add",
        IAluOp::Sub => "sub",
        IAluOp::Mul => "mul",
        IAluOp::Div => "div",
        IAluOp::Rem => "rem",
        IAluOp::And => "and",
        IAluOp::Or => "or",
        IAluOp::Xor => "xor",
        IAluOp::Shl => "shl",
        IAluOp::Shr => "shr",
    }
}

fn falu_str(op: FAluOp) -> &'static str {
    match op {
        FAluOp::Add => "fadd",
        FAluOp::Sub => "fsub",
        FAluOp::Mul => "fmul",
        FAluOp::Div => "fdiv",
    }
}

fn cc_str(cc: Cc) -> &'static str {
    match cc {
        Cc::Eq => "eq",
        Cc::Ne => "ne",
        Cc::Lt => "lt",
        Cc::Le => "le",
        Cc::Gt => "gt",
        Cc::Ge => "ge",
    }
}

/// Render a single instruction.
pub fn instr_to_string(i: &Instr) -> String {
    match i {
        Instr::MovI { dst, imm } => format!("movi  r{dst}, #{imm}"),
        Instr::MovF { dst, imm } => format!("movf  r{dst}, #{imm:?}"),
        Instr::Mov { dst, src } => format!("mov   r{dst}, r{src}"),
        Instr::FMov { dst, src } => format!("fmov  r{dst}, r{src}"),
        Instr::IAlu { op, dst, a, b } => {
            format!("{:<5} r{dst}, r{a}, {}", ialu_str(*op), op_str(*b))
        }
        Instr::FAlu { op, dst, a, b } => format!("{:<5} r{dst}, r{a}, r{b}", falu_str(*op)),
        Instr::ICmp { cc, dst, a, b } => {
            format!("icmp{} r{dst}, r{a}, {}", cc_str(*cc), op_str(*b))
        }
        Instr::FCmp { cc, dst, a, b } => format!("fcmp{} r{dst}, r{a}, r{b}", cc_str(*cc)),
        Instr::Un { op, dst, src } => {
            let n = match op {
                UnOp::NegI => "negi",
                UnOp::NotI => "noti",
                UnOp::NegF => "negf",
                UnOp::IToF => "itof",
                UnOp::FToI => "ftoi",
            };
            format!("{n:<5} r{dst}, r{src}")
        }
        Instr::Load { ty, dst, base, idx } => {
            let t = if *ty == Ty::Int { "i" } else { "f" };
            format!("ld{t}   r{dst}, [r{base} + {}]", op_str(*idx))
        }
        Instr::Store { ty, base, idx, src } => {
            let t = if *ty == Ty::Int { "i" } else { "f" };
            format!("st{t}   [r{base} + {}], r{src}", op_str(*idx))
        }
        Instr::Jmp { target } => format!("jmp   @{target}"),
        Instr::Brz { cond, target } => format!("brz   r{cond}, @{target}"),
        Instr::Brnz { cond, target } => format!("brnz  r{cond}, @{target}"),
        Instr::CallHost { f, dst, args } => {
            let args: Vec<String> = args.iter().map(|r| format!("r{r}")).collect();
            match dst {
                Some(d) => format!("hcall r{d}, {f}({})", args.join(", ")),
                None => format!("hcall {f}({})", args.join(", ")),
            }
        }
        Instr::Call { func, dst, args } => {
            let args: Vec<String> = args.iter().map(|r| format!("r{r}")).collect();
            match dst {
                Some(d) => format!("call  r{d}, {func}({})", args.join(", ")),
                None => format!("call  {func}({})", args.join(", ")),
            }
        }
        Instr::Ret { src } => match src {
            Some(r) => format!("ret   r{r}"),
            None => "ret".to_string(),
        },
        Instr::Dispatch { point, dst, args } => {
            let args: Vec<String> = args.iter().map(|r| format!("r{r}")).collect();
            match dst {
                Some(d) => format!("dysp  r{d}, point#{point}({})", args.join(", ")),
                None => format!("dysp  point#{point}({})", args.join(", ")),
            }
        }
        Instr::Halt => "halt".to_string(),
    }
}

/// Render a whole function with instruction indices.
pub fn func_to_string(f: &CodeFunc) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{} (params={}, regs={}, {} instrs):",
        f.name,
        f.n_params,
        f.n_regs,
        f.len()
    );
    for (i, instr) in f.code.iter().enumerate() {
        let _ = writeln!(s, "  {i:>4}: {}", instr_to_string(instr));
    }
    s
}

/// Render an entire module.
pub fn module_to_string(m: &Module) -> String {
    let mut s = String::new();
    for (_, f) in m.iter() {
        s.push_str(&func_to_string(f));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::CodeFunc;

    #[test]
    fn renders_representative_instructions() {
        assert_eq!(
            instr_to_string(&Instr::MovI { dst: 1, imm: -3 }),
            "movi  r1, #-3"
        );
        assert_eq!(
            instr_to_string(&Instr::IAlu {
                op: IAluOp::Shl,
                dst: 0,
                a: 1,
                b: Operand::Imm(3)
            }),
            "shl   r0, r1, #3"
        );
        assert_eq!(
            instr_to_string(&Instr::Load {
                ty: Ty::Float,
                dst: 2,
                base: 3,
                idx: Operand::Reg(4)
            }),
            "ldf   r2, [r3 + r4]"
        );
        assert_eq!(instr_to_string(&Instr::Ret { src: None }), "ret");
    }

    #[test]
    fn function_listing_includes_indices() {
        let mut f = CodeFunc::new("demo", 0, 1);
        f.push(Instr::MovI { dst: 0, imm: 1 });
        f.push(Instr::Ret { src: Some(0) });
        let s = func_to_string(&f);
        assert!(s.contains("demo"));
        assert!(s.contains("0: movi"));
        assert!(s.contains("1: ret"));
    }
}
